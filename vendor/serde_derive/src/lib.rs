//! Offline stand-in for `serde_derive`.
//!
//! The sibling `serde` stub provides blanket implementations of its
//! `Serialize`/`Deserialize` marker traits, so the derive macros here only
//! need to exist and expand to nothing. This keeps `#[derive(Serialize,
//! Deserialize)]` annotations compiling without network access to the real
//! crates.io packages.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the trait is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the trait is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

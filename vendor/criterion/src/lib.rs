//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::{benchmark_group,
//! bench_function}`, `BenchmarkGroup::{sample_size, bench_with_input,
//! finish}`, `Bencher::{iter, iter_batched}`, `BenchmarkId` and
//! `BatchSize` — as a small wall-clock harness: each benchmark runs a
//! short warm-up plus a fixed number of timed samples and prints the mean
//! and best time per iteration. No statistics, plots or baselines; the
//! point is that `cargo bench` (and `cargo build --benches`) keep working
//! offline and report plausible numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup outputs are grouped; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made from a function name and a parameter.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs closures and records wall-clock time.
pub struct Bencher {
    samples: usize,
    total: Duration,
    best: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            best: Duration::MAX,
            iters: 0,
        }
    }

    fn record(&mut self, elapsed: Duration) {
        self.total += elapsed;
        self.best = self.best.min(elapsed);
        self.iters += 1;
    }

    /// Times `routine` over warm-up plus sample iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.record(start.elapsed());
        }
    }

    /// Times `routine` over inputs built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<40} (no samples)");
            return;
        }
        let mean = self.total / self.iters as u32;
        println!(
            "{id:<40} mean {mean:>12?}   best {best:>12?}   ({n} samples)",
            best = self.best,
            n = self.iters
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
    smoke: bool,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark (ignored in
    /// `--test` smoke mode, which always runs one sample).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; we honour small numbers since each
        // sample is one timed run here.
        if !self.smoke {
            self.samples = n.clamp(1, 20);
        }
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.samples);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Finishes the group (prints nothing extra).
    pub fn finish(self) {}
}

/// The harness entry point handed to each benchmark function.
pub struct Criterion {
    samples: usize,
    smoke: bool,
}

impl Default for Criterion {
    /// Ten timed samples normally; one when the process was invoked with
    /// `--test` (i.e. `cargo bench -- --test`), mirroring real criterion's
    /// smoke mode so CI can check every bench runs without paying for
    /// statistics.
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            samples: if smoke { 1 } else { 10 },
            smoke,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            smoke: self.smoke,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        b.report(name);
        self
    }
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        for &n in &[4usize, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter_batched(
                    || (0..n).collect::<Vec<usize>>(),
                    |v| v.iter().sum::<usize>(),
                    BatchSize::SmallInput,
                );
            });
        }
        group.finish();
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}

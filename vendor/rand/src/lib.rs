//! Offline stand-in for `rand`.
//!
//! The container building this workspace has no crates.io access, so the
//! real `rand` cannot be fetched. This stub implements exactly the API
//! surface the workspace uses — `Rng::{gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64` and `seq::SliceRandom::shuffle` — over a
//! caller-supplied [`RngCore`]. The distribution code (uniform ranges,
//! Bernoulli, Fisher–Yates) is real; only the trait surface is reduced.
//!
//! Determinism matters more than statistical quality here: every generator
//! and adversary in the workspace is seeded, and experiment tables only
//! need reproducible, plausibly-uniform draws.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range by an [`RngCore`].
pub trait SampleUniform: Copy {
    /// A uniform draw from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// A uniform draw from `[lo, hi]`. Callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = ((hi as $wide).wrapping_sub(lo as $wide) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The user-facing sampling interface; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators; the workspace only uses [`SeedableRng::seed_from_u64`].
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::{Rng, SampleUniform};

    /// Slice shuffling, as in the real `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high index downward.
            for i in (1..self.len()).rev() {
                let j = usize::sample_half_open(rng, 0, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // A weak but adequate mixing step for tests of the trait layer.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

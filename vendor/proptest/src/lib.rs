//! Offline stand-in for `proptest`.
//!
//! The workspace's property tests use a small slice of proptest:
//! the `proptest!` macro (with an optional `#![proptest_config(...)]`
//! header), integer-range and `any::<T>()` strategies,
//! `prop::collection::vec`, and the `prop_assert!`/`prop_assert_eq!`
//! macros returning [`TestCaseError`]. This crate implements exactly that
//! surface as a deterministic runner: each test samples a fixed number of
//! cases from a per-test seeded generator and reports the first failing
//! input. There is no shrinking — failing inputs are printed verbatim,
//! which for the sizes used here (vectors of a few dozen bytes) is enough
//! to reproduce and debug.

use std::fmt;

/// Deterministic generator driving the samplers (xorshift-multiply mix).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test's name, so every test gets a
    /// distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 step.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The input was rejected (unused by this workspace, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest runs 256; 48 keeps the workspace's heavier
        // engine properties fast while still sweeping the input space.
        ProptestConfig { cases: 48 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Uniformly samplable primitive types (used by ranges and [`any`]).
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Samples uniformly from `[lo, hi)`.
    fn in_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            fn in_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                assert!(span > 0, "cannot sample from an empty range");
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn in_range(_rng: &mut TestRng, lo: Self, _hi: Self) -> Self {
        lo
    }
}

impl<T: Arbitrary + Copy + PartialOrd> Strategy for core::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::in_range(rng, self.start, self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// The `any::<T>()` strategy: unconstrained values of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Builds the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing vectors with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `element` samples with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestCaseError};
}

/// Asserts a condition inside a proptest body, returning
/// [`TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (`{:?}` != `{:?}`)",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// The test-defining macro: wraps each `fn name(arg in strategy, ...)`
/// in a deterministic multi-case runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let inputs = format!("{:?}", ($(&$arg,)*));
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || { { $body } ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = super::TestRng::deterministic("x");
        let mut b = super::TestRng::deterministic("x");
        let mut c = super::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(b.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = super::TestRng::deterministic("bounds");
        for _ in 0..500 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = super::TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(any::<u8>(), 1..24), &mut rng);
            assert!((1..24).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_passes(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 1..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len(), "lengths agree");
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn macro_reports_failures() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}

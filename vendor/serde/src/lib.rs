//! Offline stand-in for `serde`.
//!
//! This workspace builds in a container with no access to crates.io, so the
//! real `serde` cannot be fetched. The codebase only uses serde as a
//! *capability marker* (types derive `Serialize`/`Deserialize`, and one test
//! asserts the bounds hold); nothing actually serializes bytes yet. This
//! stub therefore provides the two trait names with blanket implementations
//! and re-exports no-op derive macros, preserving source compatibility so
//! the real crate can be dropped in unchanged once a registry is available.

/// Marker for serializable types. Blanket-implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for every sized
/// type, matching the `for<'de> Deserialize<'de>` bounds used in tests.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};

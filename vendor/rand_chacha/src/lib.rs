//! Offline stand-in for `rand_chacha`.
//!
//! Provides a deterministic, seedable generator under the [`ChaCha8Rng`]
//! name so the workspace's seeded experiments compile and reproduce without
//! crates.io access. The core is xoshiro256** (Blackman–Vigna) seeded via
//! SplitMix64 — not the ChaCha stream cipher, but every use in this
//! workspace needs only a deterministic, well-mixed sequence per seed, not
//! cryptographic output. Swapping the real crate back in changes the
//! concrete sequences but no API.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256** under the hood).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [0x9E3779B97F4A7C15, 1, 2, 3];
        }
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn plausibly_uniform_bits() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut heads = 0u32;
        for _ in 0..10_000 {
            if r.gen_bool(0.5) {
                heads += 1;
            }
        }
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}

//! # forgiving-graph — umbrella crate
//!
//! A full reproduction of *The Forgiving Graph: a distributed data
//! structure for low stretch under adversarial attack* (Hayes, Saia,
//! Trehan; PODC 2009). Re-exports every layer of the workspace; see the
//! README for the guided tour and EXPERIMENTS.md for the reproduced
//! results.
//!
//! ```
//! use forgiving_graph::core::ForgivingGraph;
//! use forgiving_graph::graph::generators;
//!
//! let mut fg = ForgivingGraph::from_graph(&generators::star(9))?;
//! fg.delete(forgiving_graph::graph::NodeId::new(0))?;
//! assert!(forgiving_graph::graph::traversal::is_connected(fg.image()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fg_adversary as adversary;
pub use fg_baselines as baselines;
pub use fg_bench as bench;
pub use fg_core as core;
pub use fg_dist as dist;
pub use fg_graph as graph;
pub use fg_haft as haft;
pub use fg_metrics as metrics;

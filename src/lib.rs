//! # forgiving-graph — umbrella crate
//!
//! A full reproduction of *The Forgiving Graph: a distributed data
//! structure for low stretch under adversarial attack* (Hayes, Saia,
//! Trehan; PODC 2009). Re-exports every layer of the workspace; see the
//! README for the guided tour and EXPERIMENTS.md for the reproduced
//! results.
//!
//! ```
//! use forgiving_graph::core::ForgivingGraph;
//! use forgiving_graph::graph::generators;
//!
//! let mut fg = ForgivingGraph::from_graph(&generators::star(9))?;
//! fg.delete(forgiving_graph::graph::NodeId::new(0))?;
//! assert!(forgiving_graph::graph::traversal::is_connected(fg.image()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fg_adversary as adversary;
pub use fg_baselines as baselines;
pub use fg_bench as bench;
pub use fg_core as core;
pub use fg_dist as dist;
pub use fg_graph as graph;
pub use fg_haft as haft;
pub use fg_metrics as metrics;
pub use fg_serve as serve;
pub use fg_store as store;

/// One-stop imports for driving any healer through the typed
/// operation/outcome API — write side *and* read side: every healer
/// hands out epoch-stamped snapshot views (`view()`) answering
/// [`QueryOps`](fg_core::QueryOps) reads, with
/// [`QueryCache`](fg_core::QueryCache) as the landmark-cached serving
/// layer.
///
/// ```
/// use forgiving_graph::prelude::*;
///
/// let g = fg_graph::generators::star(9);
/// let mut engine = ForgivingGraph::from_graph(&g)?;
/// let mut protocol = DistHealer::from_graph(&g, PlacementPolicy::Adjacent);
/// for healer in [&mut engine as &mut dyn SelfHealer, &mut protocol] {
///     let report = healer.delete(NodeId::new(0))?;
///     assert_eq!(report.leaves_created, 8);
///     // The read side: snapshot views answer distance/stretch queries.
///     let view = healer.view();
///     assert!(view.distance(NodeId::new(1), NodeId::new(2)).is_some());
/// }
/// # Ok::<(), fg_core::EngineError>(())
/// ```
pub mod prelude {
    pub use fg_adversary::{replay, run_attack, AttackLog};
    pub use fg_baselines::{
        BinaryTreeHealer, CliqueHealer, CycleHealer, ForgivingTree, NoHealer, StarHealer,
    };
    pub use fg_bench::{
        scenario, MixedRunResult, QueryMix, QueryStats, QueryWorkload, Scenario, ScenarioRunner,
        WORKLOADS,
    };
    pub use fg_core::{
        stretch_ratio, BatchReport, CacheStats, EngineError, ForgivingGraph, FrozenQueryCache,
        GraphView, HealOutcome, HealerObserver, InsertReport, NetworkEvent, NoopObserver,
        PlacementPolicy, QueryCache, QueryOps, RepairReport, SelfHealer, View,
    };
    pub use fg_dist::{DistHealer, Network, RepairCost};
    pub use fg_graph::{Graph, NodeId};
    pub use fg_metrics::{measure, ObserverCounts, StreamingCost, StreamingDegree};
    pub use fg_serve::{
        spawn_writer, Client, Publisher, ReplicaNode, Server, ServerConfig, SnapshotHub,
    };
    pub use fg_store::{
        DurableHealer, DurableOptions, Persistable, RecoveryReport, ReplListener, Replica,
    };
}

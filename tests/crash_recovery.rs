//! Golden crash-injection suite: the durability layer against the golden
//! corpus. For every golden trace, a [`DurableHealer`] runs the full
//! trace with per-event commits, the WAL is then injured at a sweep of
//! byte offsets (truncation — a torn tail — and bit flips), and recovery
//! must reach **exactly** the state the committed prefix describes:
//! the recovered engine's snapshot is bit-identical to the crash-free
//! engine after the same prefix, and completing the trace reproduces the
//! golden digest stream to the last event.
//!
//! This is the integration-level half of the crash story; the byte-level
//! exhaustive sweep over a synthetic store lives in
//! `crates/store/tests/durable_recovery.rs`.

use forgiving_graph::bench::replay::parse_digest_file;
use forgiving_graph::bench::Scenario;
use forgiving_graph::core::{ForgivingGraph, SelfHealer};
use forgiving_graph::store::{
    read_manifest, scan_wal, wal_path, DurableHealer, DurableOptions, RecoveryError, StoreError,
};
use std::path::{Path, PathBuf};

const CORPUS: &[&str] = &["churn", "hub-cascade", "partition-then-heal"];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fg-crash-{tag}-{}", std::process::id()))
}

fn load(name: &str) -> (Scenario, Vec<u64>) {
    let dir = golden_dir();
    let trace = std::fs::read_to_string(dir.join(format!("{name}.trace"))).expect("golden trace");
    let digests =
        std::fs::read_to_string(dir.join(format!("{name}.digests"))).expect("golden digests");
    (
        Scenario::read_trace(name, &trace),
        parse_digest_file(&digests),
    )
}

/// Builds the store by running the whole trace (every event committed),
/// returning the crash-free per-prefix snapshots — `states[k]` is the
/// engine after `k` events — so any recovery point can be certified
/// bit-for-bit.
fn build(sc: &Scenario, dir: &Path, opts: DurableOptions) -> (Vec<Vec<u8>>, u64) {
    let _ = std::fs::remove_dir_all(dir);
    let engine = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
    let base = engine.epoch();
    let mut durable = DurableHealer::create(engine, dir, opts).expect("fresh store");
    let mut states = vec![durable.inner().snapshot_bytes()];
    for event in &sc.events {
        let _ = durable.apply_event(event).expect("legal trace event");
        states.push(durable.inner().snapshot_bytes());
    }
    durable.sync().expect("final sync");
    (states, base)
}

fn clone_store(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("clone dir");
    for entry in std::fs::read_dir(src).expect("source store") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("clone file");
    }
}

/// Record frame boundaries of a WAL segment (cumulative byte offsets of
/// each complete record's end) — the offsets where truncation loses a
/// whole event, plus the interesting neighbourhood around each.
fn record_ends(wal: &Path) -> Vec<usize> {
    let scan = scan_wal(wal).expect("intact segment scans");
    let mut ends = Vec::with_capacity(scan.records.len());
    let mut at = 0usize;
    for record in &scan.records {
        at += record.to_bytes().len();
        ends.push(at);
    }
    ends
}

#[test]
fn truncation_sweep_recovers_certified_prefix_and_completes_to_golden() {
    for name in CORPUS {
        let (sc, golden) = load(name);
        let dir = temp_dir(&format!("trunc-{name}"));
        let opts = DurableOptions {
            checkpoint_every: None,
            sync_every: 1,
        };
        let (states, base) = build(&sc, &dir, opts);
        let wal = wal_path(&dir, read_manifest(&dir).expect("manifest").seq);
        let bytes = std::fs::read(&wal).expect("live segment");
        let ends = record_ends(&wal);

        // The sweep: every record boundary and its ±1 neighbourhood
        // (where a cut straddles the commit point), plus a stride across
        // the interior of every frame.
        let mut cuts: Vec<usize> = vec![0, 1, bytes.len()];
        for &end in &ends {
            cuts.extend([end.saturating_sub(1), end, (end + 1).min(bytes.len())]);
        }
        cuts.extend((0..bytes.len()).step_by(13));
        cuts.sort_unstable();
        cuts.dedup();

        let scratch = temp_dir(&format!("trunc-{name}-cut"));
        for &cut in &cuts {
            clone_store(&dir, &scratch);
            let mut cut_bytes = bytes.clone();
            cut_bytes.truncate(cut);
            std::fs::write(wal_path(&scratch, base), cut_bytes).expect("injected truncation");

            let (recovered, report) = DurableHealer::<ForgivingGraph>::open(&scratch, opts)
                .unwrap_or_else(|e| panic!("{name}: cut at {cut} refused recovery: {e}"));
            // Every fully-written record is committed (sync_every = 1),
            // so the certified prefix is exactly the records the cut
            // left whole.
            let survive = ends.iter().filter(|&&end| end <= cut).count();
            assert_eq!(report.replayed, survive, "{name}: cut at {cut}");
            assert_eq!(
                recovered.inner().snapshot_bytes(),
                states[survive],
                "{name}: cut at {cut} recovered a different state than the \
                 crash-free engine after {survive} events"
            );
            drop(recovered);

            // Completion at record boundaries: re-applying the lost
            // suffix must reproduce the golden digest stream exactly.
            if ends.contains(&cut) || cut == bytes.len() {
                let (mut recovered, _) = DurableHealer::<ForgivingGraph>::open(&scratch, opts)
                    .expect("clean reopen after truncation repair");
                for (i, event) in sc.events.iter().enumerate().skip(survive) {
                    let digest = recovered
                        .apply_event(event)
                        .expect("legal trace event")
                        .digest();
                    assert_eq!(
                        digest, golden[i],
                        "{name}: event {i} drifted from the golden digest after \
                         recovering from a cut at {cut}"
                    );
                }
                assert_eq!(
                    recovered.inner().snapshot_bytes(),
                    states[sc.events.len()],
                    "{name}: completed run diverged from the crash-free final state"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&scratch);
    }
}

#[test]
fn bit_flips_truncate_the_tail_or_refuse_loudly() {
    for name in CORPUS {
        let (sc, _) = load(name);
        let dir = temp_dir(&format!("flip-{name}"));
        let opts = DurableOptions {
            checkpoint_every: None,
            sync_every: 1,
        };
        let (states, base) = build(&sc, &dir, opts);
        let wal = wal_path(&dir, base);
        let bytes = std::fs::read(&wal).expect("live segment");
        let ends = record_ends(&wal);

        let scratch = temp_dir(&format!("flip-{name}-hit"));
        for at in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
            clone_store(&dir, &scratch);
            let mut hit = bytes.clone();
            hit[at] ^= 0x10;
            std::fs::write(wal_path(&scratch, base), hit).expect("injected bit flip");

            match DurableHealer::<ForgivingGraph>::open(&scratch, opts) {
                // A flip in the final frame reads as a torn tail: the
                // certified prefix is every record before it.
                Ok((recovered, report)) => {
                    assert!(
                        report.torn_tail,
                        "{name}: flip at {at} recovered without noticing damage"
                    );
                    let survive = ends.iter().filter(|&&end| end <= at).count();
                    assert_eq!(report.replayed, survive, "{name}: flip at {at}");
                    assert_eq!(
                        recovered.inner().snapshot_bytes(),
                        states[survive],
                        "{name}: flip at {at} certified the wrong prefix"
                    );
                }
                // A flip before the final frame means committed history
                // is damaged: recovery must refuse with the typed error,
                // never silently drop committed events.
                Err(StoreError::Recovery(RecoveryError::CorruptCommitted { .. })) => {
                    assert!(
                        at < ends[ends.len() - 1] - 1,
                        "{name}: flip at {at} in the final frame should be a torn tail"
                    );
                }
                Err(e) => panic!("{name}: flip at {at}: unexpected error {e}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&scratch);
    }
}

#[test]
fn checkpointed_stores_recover_from_the_latest_snapshot() {
    for name in CORPUS {
        let (sc, golden) = load(name);
        let dir = temp_dir(&format!("ckpt-{name}"));
        let opts = DurableOptions {
            checkpoint_every: Some(40),
            sync_every: 1,
        };
        let (states, base) = build(&sc, &dir, opts);
        let manifest = read_manifest(&dir).expect("manifest");
        assert!(
            manifest.seq > base,
            "{name}: checkpoint cadence 40 over {} events never checkpointed",
            sc.events.len()
        );
        let checkpointed = (manifest.seq - base) as usize;

        // Destroy the live segment entirely: recovery must land exactly
        // on the last checkpoint and complete to the golden stream.
        std::fs::write(wal_path(&dir, manifest.seq), []).expect("destroyed segment");
        let (mut recovered, report) =
            DurableHealer::<ForgivingGraph>::open(&dir, opts).expect("recovery from checkpoint");
        assert_eq!(report.replayed, 0, "{name}");
        assert_eq!(report.epoch, manifest.seq, "{name}");
        assert_eq!(
            recovered.inner().snapshot_bytes(),
            states[checkpointed],
            "{name}: checkpoint state drifted from the crash-free engine"
        );
        for (i, event) in sc.events.iter().enumerate().skip(checkpointed) {
            let digest = recovered
                .apply_event(event)
                .expect("legal trace event")
                .digest();
            assert_eq!(
                digest, golden[i],
                "{name}: event {i} drifted from the golden digest after \
                 recovering from the checkpoint"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! End-to-end replication differential: a write-master serving FGQ1
//! (reads + submit ops) while shipping its WAL over FGR1 to a replica
//! that serves the same reads — every replica answer must be
//! **bit-identical** to the master's at the same epoch, stamped with
//! the same `(epoch, digest)` certificate, and the whole digest stream
//! must match an independent in-memory replay on the message-passing
//! backend (the digest chain is backend- and batching-invariant).
//!
//! Also exercised: the master is "kill -9"-ed mid-stream (server,
//! writer, and replication listener dropped with no checkpoint), its
//! store recovered, and the replica reconnects and re-syncs — landing
//! on the identical certificate again.

use forgiving_graph::bench::scenario;
use forgiving_graph::core::{ForgivingGraph, NetworkEvent, PlacementPolicy};
use forgiving_graph::dist::DistHealer;
use forgiving_graph::graph::NodeId;
use forgiving_graph::serve::{
    spawn_writer, Client, Publisher, ReplicaNode, Request, ResponseBody, Server, ServerConfig,
};
use forgiving_graph::store::{DurableHealer, DurableOptions, ReplListener, MAX_REPL_HANDLERS};
use std::fs;
use std::io::Read;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fg-e2e-repl-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts() -> DurableOptions {
    DurableOptions {
        checkpoint_every: None,
        sync_every: 1,
    }
}

/// Seeded SplitMix64 probe pairs over the ghost universe.
fn probe_pairs(nodes_ever: usize, salt: u64, count: usize) -> Vec<(NodeId, NodeId)> {
    let n = nodes_ever.max(1) as u64;
    let mut state = salt ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            (
                NodeId::new((next() % n) as u32),
                NodeId::new((next() % n) as u32),
            )
        })
        .collect()
}

/// All seven wire ops for one probe pair.
fn ops(u: NodeId, v: NodeId) -> [Request; 7] {
    [
        Request::Epoch,
        Request::Distance(u, v),
        Request::Path(u, v),
        Request::Stretch(u, v),
        Request::Degree(u),
        Request::Neighbors(u),
        Request::SameComponent(u, v),
    ]
}

/// Probes every op for every pair against one server, asserting a
/// constant `(epoch, digest)` stamp; returns the stamp and the bodies.
fn probe(
    label: &str,
    client: &mut Client,
    pairs: &[(NodeId, NodeId)],
) -> (u64, u64, Vec<ResponseBody>) {
    let stamp = client.epoch().expect("epoch roundtrip");
    let mut answers = Vec::new();
    for &(u, v) in pairs {
        for request in ops(u, v) {
            let served = client.roundtrip(&request).expect("roundtrip");
            assert_eq!(served.epoch, stamp.epoch, "{label}: ({u},{v}) stamp epoch");
            assert_eq!(
                served.digest, stamp.digest,
                "{label}: ({u},{v}) stamp digest"
            );
            answers.push(served.value);
        }
    }
    (stamp.epoch, stamp.digest, answers)
}

/// Polls `cond` until it holds or `deadline` elapses (handler
/// bookkeeping is asynchronous to the accept loop).
fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A master store directory with `events` applied and committed, plus a
/// replication listener over it. The publisher must stay alive for the
/// WAL to remain the listener's source of truth.
fn master_with_history(
    dir: &std::path::Path,
    sc: &forgiving_graph::bench::Scenario,
) -> (Publisher<DurableHealer<ForgivingGraph>>, ReplListener) {
    let durable = DurableHealer::create(
        ForgivingGraph::from_graph(&sc.initial).unwrap(),
        dir,
        opts(),
    )
    .unwrap();
    let mut publisher = Publisher::from_durable(durable);
    let report = publisher
        .apply_log_publish(&sc.events)
        .expect("legal trace");
    assert_eq!(report.outcomes.len(), sc.events.len());
    let repl = ReplListener::bind("127.0.0.1:0", dir).unwrap();
    (publisher, repl)
}

#[test]
fn stalled_connection_does_not_block_other_replicas() {
    let sc = scenario("churn", 24, 96, 31);
    let master_dir = temp_dir("stall-master");
    let replica_dir = temp_dir("stall-replica");
    let (publisher, repl) = master_with_history(&master_dir, &sc);

    // A peer that connects and never sends a byte occupies one handler…
    let stalled = TcpStream::connect(repl.local_addr()).unwrap();
    wait_until(
        "the stalled handler to register",
        Duration::from_secs(10),
        || repl.active_handlers() == 1,
    );

    // …while a real replica bootstraps and fully catches up past it —
    // the accept loop fans out instead of serving one peer at a time.
    let (mut node, _) =
        ReplicaNode::<ForgivingGraph>::bootstrap(repl.local_addr(), &replica_dir, opts()).unwrap();
    assert_eq!(node.sync_to_caught_up().unwrap(), sc.events.len());
    assert!(repl.active_handlers() >= 1, "stalled handler still held");

    drop(stalled);
    drop(node);
    drop(repl);
    drop(publisher);
    fs::remove_dir_all(&master_dir).unwrap();
    fs::remove_dir_all(&replica_dir).unwrap();
}

#[test]
fn two_replicas_catch_up_concurrently() {
    let sc = scenario("churn", 32, 128, 37);
    let master_dir = temp_dir("conc-master");
    let (publisher, repl) = master_with_history(&master_dir, &sc);
    let addr = repl.local_addr();
    let expected = sc.events.len();

    // Both replicas sync through the same listener at the same time;
    // the barrier makes the overlap real rather than accidental.
    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = [temp_dir("conc-replica-a"), temp_dir("conc-replica-b")]
        .into_iter()
        .map(|dir| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let (mut node, _) =
                    ReplicaNode::<ForgivingGraph>::bootstrap(addr, &dir, opts()).unwrap();
                let applied = node.sync_to_caught_up().unwrap();
                let epoch = node.hub().epoch();
                drop(node);
                (dir, applied, epoch)
            })
        })
        .collect();

    let mut epochs = Vec::new();
    for handle in handles {
        let (dir, applied, epoch) = handle.join().unwrap();
        assert_eq!(applied, expected, "each replica applies the whole history");
        epochs.push(epoch);
        fs::remove_dir_all(&dir).unwrap();
    }
    assert_eq!(epochs[0], epochs[1], "both replicas land on the same epoch");

    drop(repl);
    drop(publisher);
    fs::remove_dir_all(&master_dir).unwrap();
}

#[test]
fn accept_loop_bounds_handler_fan_out() {
    let sc = scenario("churn", 16, 24, 41);
    let master_dir = temp_dir("cap-master");
    let replica_dir = temp_dir("cap-replica");
    let (publisher, repl) = master_with_history(&master_dir, &sc);
    let addr = repl.local_addr();

    // Fill every handler slot with idle connections.
    let conns: Vec<TcpStream> = (0..MAX_REPL_HANDLERS)
        .map(|_| TcpStream::connect(addr).unwrap())
        .collect();
    wait_until(
        "the fleet to fill every slot",
        Duration::from_secs(30),
        || repl.active_handlers() == MAX_REPL_HANDLERS,
    );

    // One past the cap is closed without service, not queued.
    let mut extra = TcpStream::connect(addr).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut byte = [0u8; 1];
    match extra.read(&mut byte) {
        Ok(0) | Err(_) => {} // EOF or reset: refused, as designed.
        Ok(_) => panic!("an over-cap connection must not be served"),
    }
    assert_eq!(repl.active_handlers(), MAX_REPL_HANDLERS);

    // Releasing the fleet frees the slots and service resumes.
    drop(conns);
    wait_until("handlers to drain", Duration::from_secs(30), || {
        repl.active_handlers() == 0
    });
    let (mut node, _) =
        ReplicaNode::<ForgivingGraph>::bootstrap(addr, &replica_dir, opts()).unwrap();
    assert_eq!(node.sync_to_caught_up().unwrap(), sc.events.len());

    drop(node);
    drop(repl);
    drop(publisher);
    fs::remove_dir_all(&master_dir).unwrap();
    fs::remove_dir_all(&replica_dir).unwrap();
}

#[test]
fn replica_serves_bit_identically_to_master_on_both_backends() {
    let sc = scenario("churn", 40, 240, 17);
    let master_dir = temp_dir("diff-master");
    let replica_dir = temp_dir("diff-replica");
    let pairs = probe_pairs(sc.initial.nodes_ever() + sc.events.len(), 0xfeed, 16);

    // The write master: durable store + writer thread + FGQ1 server +
    // FGR1 replication listener over the same store directory.
    let durable = DurableHealer::create(
        ForgivingGraph::from_graph(&sc.initial).unwrap(),
        &master_dir,
        opts(),
    )
    .unwrap();
    let publisher = Publisher::from_durable(durable);
    let hub = publisher.hub();
    let (writer, writer_handle) = spawn_writer(publisher, 16);
    let master = Server::bind_master(
        ("127.0.0.1", 0),
        hub,
        writer.clone(),
        ServerConfig::default(),
    )
    .unwrap();
    let repl = ReplListener::bind("127.0.0.1:0", &master_dir).unwrap();

    // An independent in-memory replay on the OTHER backend, advanced in
    // lockstep: the golden digest stream every ack must match.
    let mut golden = Publisher::new(DistHealer::from_graph(
        &sc.initial,
        PlacementPolicy::Adjacent,
    ));

    // Drive the whole trace through the wire as submit-batches.
    let mut client = Client::connect(master.addr()).unwrap();
    for chunk in sc.events.chunks(32) {
        let ack = client.submit_batch(chunk.to_vec()).expect("legal trace");
        assert_eq!(ack.value as usize, chunk.len());
        let _ = golden.apply_and_publish(chunk).expect("legal trace");
        assert_eq!(
            (ack.epoch, ack.digest),
            (golden.hub().epoch(), golden.digest()),
            "master ack stamp must match the in-memory golden digest stream"
        );
    }

    // The replica bootstraps from the master's checkpoint, streams the
    // WAL, and serves reads from its own published snapshots.
    let (mut node, _) =
        ReplicaNode::<ForgivingGraph>::bootstrap(repl.local_addr(), &replica_dir, opts()).unwrap();
    assert_eq!(node.sync_to_caught_up().unwrap(), sc.events.len());
    let replica = Server::bind(("127.0.0.1", 0), node.hub(), ServerConfig::default()).unwrap();

    // Differential: all seven ops, bit-identical answers, identical
    // certificates, across master / replica / in-memory golden server.
    let mut master_client = Client::connect(master.addr()).unwrap();
    let mut replica_client = Client::connect(replica.addr()).unwrap();
    let golden_server =
        Server::bind(("127.0.0.1", 0), golden.hub(), ServerConfig::default()).unwrap();
    let mut golden_client = Client::connect(golden_server.addr()).unwrap();

    let master_run = probe("master", &mut master_client, &pairs);
    let replica_run = probe("replica", &mut replica_client, &pairs);
    let golden_run = probe("golden", &mut golden_client, &pairs);
    assert_eq!(master_run, replica_run, "replica must be bit-identical");
    assert_eq!(master_run, golden_run, "backends must be bit-identical");

    // A write sent to the replica is refused typed; the master still
    // accepts on the same kind of connection.
    assert!(replica_client
        .submit_event(NetworkEvent::insert([NodeId::new(0)]))
        .is_err());

    drop(client);
    master.shutdown();
    replica.shutdown();
    golden_server.shutdown();
    drop(repl);
    drop(writer);
    writer_handle.join().unwrap();
    fs::remove_dir_all(&master_dir).unwrap();
    fs::remove_dir_all(&replica_dir).unwrap();
}

#[test]
fn replica_resyncs_after_master_kill_and_restart_mid_stream() {
    let sc = scenario("churn", 32, 160, 23);
    let (half, rest) = sc.events.split_at(sc.events.len() / 2);
    let master_dir = temp_dir("kill-master");
    let replica_dir = temp_dir("kill-replica");
    let pairs = probe_pairs(sc.initial.nodes_ever() + sc.events.len(), 0xbeef, 12);

    // First life: apply the first half through the write path, let the
    // replica catch up.
    let durable = DurableHealer::create(
        ForgivingGraph::from_graph(&sc.initial).unwrap(),
        &master_dir,
        opts(),
    )
    .unwrap();
    let publisher = Publisher::from_durable(durable);
    let hub = publisher.hub();
    let (writer, writer_handle) = spawn_writer(publisher, 16);
    let master = Server::bind_master(
        ("127.0.0.1", 0),
        hub,
        writer.clone(),
        ServerConfig::default(),
    )
    .unwrap();
    let repl = ReplListener::bind("127.0.0.1:0", &master_dir).unwrap();
    let mut client = Client::connect(master.addr()).unwrap();
    for chunk in half.chunks(16) {
        let _ = client.submit_batch(chunk.to_vec()).expect("legal trace");
    }
    let (mut node, _) =
        ReplicaNode::<ForgivingGraph>::bootstrap(repl.local_addr(), &replica_dir, opts()).unwrap();
    assert_eq!(node.sync_to_caught_up().unwrap(), half.len());

    // "kill -9": server, writer, and listener all die with no
    // checkpoint; only the fsynced store directory survives.
    drop(client);
    master.shutdown();
    drop(repl);
    drop(writer);
    let publisher = writer_handle.join().unwrap();
    drop(publisher);

    // Second life: recover the store (every acked event replays), serve
    // again on fresh ports, apply the rest.
    let (durable, report) = DurableHealer::<ForgivingGraph>::open(&master_dir, opts()).unwrap();
    assert_eq!(report.replayed, half.len());
    let publisher = Publisher::from_durable(durable);
    let hub = publisher.hub();
    let (writer, writer_handle) = spawn_writer(publisher, 16);
    let master = Server::bind_master(
        ("127.0.0.1", 0),
        hub,
        writer.clone(),
        ServerConfig::default(),
    )
    .unwrap();
    let repl = ReplListener::bind("127.0.0.1:0", &master_dir).unwrap();
    let mut client = Client::connect(master.addr()).unwrap();
    for chunk in rest.chunks(16) {
        let _ = client.submit_batch(chunk.to_vec()).expect("legal trace");
    }

    // The replica's old connection died with the first master; its
    // bootstrap recovered its own store, and a reconnect against the
    // new port re-syncs the remainder.
    let (mut node, report) =
        ReplicaNode::<ForgivingGraph>::bootstrap(repl.local_addr(), &replica_dir, opts()).unwrap();
    assert_eq!(report.replayed, half.len(), "replica recovers its own WAL");
    assert_eq!(node.sync_to_caught_up().unwrap(), rest.len());
    drop(node);

    let (node, _) =
        ReplicaNode::<ForgivingGraph>::bootstrap(repl.local_addr(), &replica_dir, opts()).unwrap();
    let replica = Server::bind(("127.0.0.1", 0), node.hub(), ServerConfig::default()).unwrap();
    let mut master_client = Client::connect(master.addr()).unwrap();
    let mut replica_client = Client::connect(replica.addr()).unwrap();
    let master_run = probe("master", &mut master_client, &pairs);
    let replica_run = probe("replica", &mut replica_client, &pairs);
    assert_eq!(
        master_run, replica_run,
        "post-restart replica must serve bit-identically with the master's certificate"
    );

    drop(client);
    master.shutdown();
    replica.shutdown();
    drop(repl);
    drop(writer);
    writer_handle.join().unwrap();
    fs::remove_dir_all(&master_dir).unwrap();
    fs::remove_dir_all(&replica_dir).unwrap();
}

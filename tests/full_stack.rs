//! Cross-crate integration: adversaries drive the engine, metrics verify
//! the paper contract, and the distributed protocol stays in lockstep.

use forgiving_graph::adversary::{
    replay, run_attack, ChurnAdversary, Composite, CutPointDeleter, MaxDegreeDeleter,
    PreferentialInserter, RandomDeleter, StarSmash,
};
use forgiving_graph::baselines::{CycleHealer, ForgivingTree, NoHealer};
use forgiving_graph::core::{ForgivingGraph, PlacementPolicy, SelfHealer};
use forgiving_graph::dist::DistHealer;
use forgiving_graph::graph::{generators, traversal, NodeId};
use forgiving_graph::metrics::{cost_stats, measure, measure_sampled, stretch_exact};

#[test]
fn paper_contract_under_every_adversary() {
    let g = generators::barabasi_albert(80, 2, 5);
    let mut cases: Vec<(&str, Box<dyn forgiving_graph::adversary::Adversary>)> = vec![
        ("random", Box::new(RandomDeleter::new(1, 30))),
        ("max-degree", Box::new(MaxDegreeDeleter::new(30))),
        ("cut-point", Box::new(CutPointDeleter::new(50))),
        ("star-smash", Box::new(StarSmash::new(2, 10, 3))),
        ("churn", Box::new(ChurnAdversary::new(3, 0.5, 3, 10, 80))),
        (
            "grow-then-smash",
            Box::new(Composite::new(
                "grow-then-smash",
                vec![
                    Box::new(PreferentialInserter::new(4, 2, 20)),
                    Box::new(MaxDegreeDeleter::new(60)),
                ],
            )),
        ),
    ];
    for (name, adversary) in &mut cases {
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        run_attack(&mut fg, adversary.as_mut(), 200).unwrap();
        fg.check_invariants()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let health = measure_sampled(&fg, 24, 9);
        assert!(health.connected, "{name} disconnected the network");
        assert!(
            health.stretch.max <= fg.stretch_bound() as f64,
            "{name}: stretch {} above bound {}",
            health.stretch.max,
            fg.stretch_bound()
        );
        assert!(
            health.degree.max_ratio <= 4.0,
            "{name}: degree ratio {}",
            health.degree.max_ratio
        );
    }
}

#[test]
fn repair_costs_stay_in_theorem_envelope() {
    let g = generators::connected_erdos_renyi(120, 0.07, 11);
    let mut fg = ForgivingGraph::from_graph(&g).unwrap();
    let mut reports = Vec::new();
    loop {
        let alive: Vec<NodeId> = fg.image().iter().collect();
        if alive.len() <= 40 {
            break;
        }
        // Drive deletions directly to collect the per-repair reports.
        let victim = alive[(reports.len() * 7) % alive.len()];
        reports.push(fg.delete(victim).unwrap());
    }
    let stats = cost_stats(&reports, fg.nodes_ever());
    assert_eq!(stats.repairs, 80);
    assert!(
        stats.max_normalized_churn < 8.0,
        "churn not O(d log n): {}",
        stats.max_normalized_churn
    );
    assert!(stats.max_rounds <= 8, "BT_v rounds not logarithmic");
}

#[test]
fn distributed_and_sequential_agree_after_full_campaign() {
    let g = generators::grid(4, 4);
    let mut dist = DistHealer::from_graph(&g, PlacementPolicy::Adjacent);
    let mut fg = ForgivingGraph::from_graph(&g).unwrap();
    // A campaign mixing interior and corner deletions plus insertions,
    // driven through the shared façade; the typed reports must agree.
    for v in [5u32, 10, 0, 15, 6] {
        let a = SelfHealer::delete(&mut dist, NodeId::new(v)).unwrap();
        let b = fg.delete(NodeId::new(v)).unwrap();
        assert_eq!(a, b, "repair reports diverged at n{v}");
    }
    let a = SelfHealer::insert(&mut dist, &[NodeId::new(1), NodeId::new(14)]).unwrap();
    let b = SelfHealer::insert(&mut fg, &[NodeId::new(1), NodeId::new(14)]).unwrap();
    assert_eq!(a, b);
    let a = SelfHealer::delete(&mut dist, NodeId::new(9)).unwrap();
    let b = fg.delete(NodeId::new(9)).unwrap();
    assert_eq!(a, b);
    assert_eq!(SelfHealer::image(&dist), fg.image());
    // Every repair stayed within Lemma 4's message envelope.
    for cost in dist.costs() {
        assert!(cost.normalized_messages() < 30.0);
    }
}

#[test]
fn forgiving_graph_beats_forgiving_tree_on_stretch() {
    // The headline improvement: stretch vs G' under hub attacks.
    let g = generators::barabasi_albert(90, 2, 17);
    let mut fg = ForgivingGraph::from_graph(&g).unwrap();
    let mut adv = MaxDegreeDeleter::new(45);
    let log = run_attack(&mut fg, &mut adv, 90).unwrap();

    let mut ft = ForgivingTree::from_graph(&g);
    let ft_report = replay(&mut ft, &log.events).unwrap();
    assert_eq!(ft_report.len(), log.events.len());
    assert_eq!(ft_report.deletes, log.deletions as u64);

    let s_fg = stretch_exact(fg.image(), fg.ghost());
    let s_ft = stretch_exact(ft.image(), ft.ghost());
    assert!(
        s_fg.max <= s_ft.max + 1e-9,
        "FG stretch {} should not exceed FT stretch {}",
        s_fg.max,
        s_ft.max
    );
    // And the Forgiving Tree needed a preprocessing phase; FG did not.
    assert!(ft.init_messages() > 0);
}

#[test]
fn no_heal_control_disconnects_where_fg_survives() {
    let g = generators::star(32);
    let mut fg = ForgivingGraph::from_graph(&g).unwrap();
    let mut none = NoHealer::from_graph(&g);
    let mut ring = CycleHealer::from_graph(&g);
    for healer in [&mut fg as &mut dyn SelfHealer, &mut none, &mut ring] {
        let _ = healer.delete(NodeId::new(0)).unwrap();
    }
    assert!(traversal::is_connected(fg.image()));
    assert!(traversal::is_connected(ring.image()));
    assert!(!traversal::is_connected(none.image()));
    // Ring healing has linear stretch, FG logarithmic.
    let s_fg = measure(&fg);
    let s_ring = measure(&ring);
    assert!(s_fg.stretch.max <= s_ring.stretch.max);
}

#[test]
fn long_mixed_campaign_drains_cleanly() {
    let g = generators::cycle(12);
    let mut fg = ForgivingGraph::from_graph(&g).unwrap();
    let mut adv = ChurnAdversary::new(5, 0.65, 2, 2, 400);
    run_attack(&mut fg, &mut adv, 400).unwrap();
    fg.check_invariants().unwrap();
    // Now delete everyone.
    let alive: Vec<NodeId> = fg.image().iter().collect();
    for v in alive {
        let _ = fg.delete(v).unwrap();
    }
    assert_eq!(fg.alive_count(), 0);
    assert_eq!(fg.forest_len(), 0, "no virtual nodes may leak");
    assert_eq!(
        fg.stats().rep_fallbacks,
        0,
        "representative cache never stale"
    );
}

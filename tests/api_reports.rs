//! Properties of the typed operation/outcome API (`fg_core::api`):
//!
//! * **batch ≡ replay** — the per-op `RepairReport`s inside a
//!   `BatchReport` are exactly what a one-by-one replay of the same
//!   events produces, and the aggregates are their sum;
//! * **observer ≡ report** — streaming callback totals equal the report
//!   aggregates, for the engine, the distributed protocol, and the
//!   baselines;
//! * **errors are pinpointed** — a failing batch names the exact index
//!   (and pretty-prints the event) of the first illegal operation, with
//!   everything before it applied.

use forgiving_graph::prelude::*;
use proptest::prelude::*;

/// Decodes a byte schedule into a legal event trace over a seeded ER
/// graph, using healer-independent bookkeeping (mirror of the bench
/// TraceBuilder, kept tiny here).
fn legal_schedule(seed: u64, bytes: &[u8]) -> (Graph, Vec<NetworkEvent>) {
    let g = fg_graph::generators::connected_erdos_renyi(12, 0.2, seed);
    let mut alive: Vec<NodeId> = g.iter().collect();
    let mut next_id = g.nodes_ever() as u32;
    let mut events = Vec::new();
    for &b in bytes {
        if alive.len() <= 3 {
            break;
        }
        if b & 1 == 0 {
            let victim = alive.remove((b as usize / 2) % alive.len());
            events.push(NetworkEvent::delete(victim));
        } else {
            let k = 1 + (b as usize / 2) % 3.min(alive.len());
            let nbrs: Vec<NodeId> = alive.iter().copied().take(k).collect();
            events.push(NetworkEvent::insert(nbrs));
            alive.push(NodeId::new(next_id));
            next_id += 1;
        }
    }
    (g, events)
}

/// Sums every aggregate of `batch` back up from its outcomes and checks
/// the incremental bookkeeping agrees.
fn assert_aggregates_are_sums(batch: &BatchReport) {
    let mut expected = BatchReport::new();
    for outcome in &batch.outcomes {
        expected.push(*outcome);
    }
    assert_eq!(&expected, batch);
    let edges_added: u64 = batch.outcomes.iter().map(HealOutcome::edges_added).sum();
    let edges_dropped: u64 = batch.outcomes.iter().map(HealOutcome::edges_dropped).sum();
    assert_eq!(batch.edges_added, edges_added);
    assert_eq!(batch.edges_dropped, edges_dropped);
    let churn_sum: u64 = batch.repairs().map(RepairReport::churn).sum();
    assert_eq!(batch.total_churn(), churn_sum);
    let max_churn = batch.repairs().map(RepairReport::churn).max().unwrap_or(0);
    assert_eq!(batch.max_churn, max_churn);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `apply_batch` returns exactly the outcomes a one-by-one replay
    /// produces, with aggregates equal to their sum — for the engine and
    /// the distributed protocol alike.
    #[test]
    fn batch_reports_equal_one_by_one_replay(
        seed in 0u64..64,
        bytes in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let (g, events) = legal_schedule(seed, &bytes);

        let mut batched = ForgivingGraph::from_graph(&g).unwrap();
        let batch = batched.apply_batch(&events).unwrap();
        assert_aggregates_are_sums(&batch);

        let mut one_by_one = ForgivingGraph::from_graph(&g).unwrap();
        let mut replayed = BatchReport::new();
        for event in &events {
            replayed.push(one_by_one.apply_event(event).unwrap());
        }
        prop_assert_eq!(&batch, &replayed, "engine batch vs replay");
        prop_assert_eq!(&batched, &one_by_one, "engine state must not depend on batching");

        let mut dist = DistHealer::from_graph(&g, PlacementPolicy::Adjacent);
        let dist_batch = dist.apply_batch(&events).unwrap();
        prop_assert_eq!(&batch, &dist_batch, "engine vs protocol batch reports");
    }

    /// Observer callback totals match the batch report, for every healer
    /// behind the façade (the engine and protocol additionally stream
    /// per-edge callbacks; the baselines fire op-level ones).
    #[test]
    fn observer_counts_match_report_totals(
        seed in 0u64..64,
        bytes in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        let (g, events) = legal_schedule(seed, &bytes);
        let mut engine = ForgivingGraph::from_graph(&g).unwrap();
        let mut dist = DistHealer::from_graph(&g, PlacementPolicy::Adjacent);
        let mut ring = CycleHealer::from_graph(&g);
        let healers: [&mut dyn SelfHealer; 3] = [&mut engine, &mut dist, &mut ring];
        for healer in healers {
            let mut counts = ObserverCounts::new();
            let batch = healer.apply_batch_observed(&events, &mut counts).unwrap();
            prop_assert_eq!(counts.inserts, batch.inserts, "{}", healer.name());
            prop_assert_eq!(counts.deletes, batch.deletes, "{}", healer.name());
            prop_assert_eq!(counts.batches, 1u64, "{}", healer.name());
            if healer.name() != "cycle-heal" {
                // Edge-level streaming: totals must reconcile exactly.
                prop_assert_eq!(counts.edges_added, batch.edges_added, "{}", healer.name());
                prop_assert_eq!(counts.edges_dropped, batch.edges_dropped, "{}", healer.name());
            }
        }
    }

    /// A batch that fails mid-way reports the exact failing index, keeps
    /// the prefix applied, and renders the offending event.
    #[test]
    fn failing_batches_pinpoint_the_event(
        seed in 0u64..64,
        bytes in prop::collection::vec(any::<u8>(), 1..24),
        cut in any::<u16>(),
    ) {
        let (g, mut events) = legal_schedule(seed, &bytes);
        // Corrupt one position with a delete of a never-created node.
        let bad_index = cut as usize % events.len();
        let bogus = NodeId::new(10_000);
        events[bad_index] = NetworkEvent::delete(bogus);

        let mut healer = ForgivingGraph::from_graph(&g).unwrap();
        let err = healer.apply_batch(&events).unwrap_err();
        match &err {
            EngineError::AtEvent { index, event, source } => {
                prop_assert_eq!(*index, bad_index);
                prop_assert_eq!(event.as_str(), "delete(n10000)");
                prop_assert_eq!(source.as_ref(), &EngineError::NotAlive(bogus));
            }
            other => prop_assert!(false, "expected AtEvent, got {other:?}"),
        }
        let needle = format!("batch event #{bad_index}");
        prop_assert!(err.to_string().contains(&needle), "message: {err}");

        // The prefix stayed applied: a fresh healer fed only the prefix
        // reaches the same state.
        let mut prefix_only = ForgivingGraph::from_graph(&g).unwrap();
        let _ = prefix_only.apply_batch(&events[..bad_index]).unwrap();
        prop_assert_eq!(&healer, &prefix_only);
    }
}

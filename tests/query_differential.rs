//! Query differential suite: every answer the read API gives — through
//! an engine view, a distributed-protocol view, a frozen CSR snapshot
//! (`FrozenView`: bitset BFS kernels over the dense remap), or the
//! incrementally invalidated [`QueryCache`] on either backing — must
//! equal fresh-BFS ground truth on the materialized image graph, at many
//! points along the same 144 adversarial traces the state differential
//! suite replays (12 seeds × 2 placement policies × 2 workloads × 3
//! adversaries). The frozen path is held to a stricter bar than
//! agreement: answers must be **bit-identical** to the live view's,
//! including shortest-path node sequences, on both backends.
//!
//! Checked per checkpoint, for a seeded pair sample:
//!
//! * `distance(u, v)` equals the BFS distance vector entry;
//! * `path(u, v)` exists iff `distance` does, has exactly
//!   `distance + 1` nodes, starts at `u`, ends at `v`, and walks real
//!   image edges;
//! * `same_component` equals distance reachability;
//! * `stretch(u, v)` equals the ratio convention applied to fresh ghost
//!   and image BFS vectors (the same convention `fg_metrics` aggregates);
//! * the [`QueryCache`] — fed every event's typed outcome, so its
//!   landmarks live through leaf extensions, shortcut relaxations,
//!   component merges and deletion drops — answers identically;
//! * the [`FrozenQueryCache`] serving tier — noted and re-published
//!   after every event, its persistent ghost landmark state relaxed in
//!   place across the whole trace — answers every scalar identically
//!   and returns valid shortest paths;
//! * engine and protocol views agree with each other and carry the same
//!   epoch.
//!
//! [`FrozenQueryCache`]: forgiving_graph::core::FrozenQueryCache
//!
//! [`QueryCache`]: forgiving_graph::core::QueryCache

use forgiving_graph::adversary::{
    run_attack, Adversary, ChurnAdversary, MaxDegreeDeleter, RandomDeleter,
};
use forgiving_graph::core::{
    stretch_ratio, ForgivingGraph, FrozenQueryCache, GraphView, PlacementPolicy, QueryCache,
    QueryOps, SelfHealer,
};
use forgiving_graph::dist::DistHealer;
use forgiving_graph::graph::{generators, traversal, Graph, NodeId};

/// Seeded, allocation-light pair sampler: a handful of (u, v) probes per
/// checkpoint, spread over the node universe (live and dead ids both —
/// dead endpoints must answer `None`).
fn probe_pairs(nodes_ever: usize, salt: u64, count: usize) -> Vec<(NodeId, NodeId)> {
    let n = nodes_ever.max(1) as u64;
    let mut state = salt ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        // SplitMix64 — deterministic and dependency-free.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            (
                NodeId::new((next() % n) as u32),
                NodeId::new((next() % n) as u32),
            )
        })
        .collect()
}

/// Ground truth for one pair from fresh BFS vectors on the materialized
/// graphs: `(image distance, ghost distance, stretch)`.
fn ground_truth(
    image: &Graph,
    ghost: &Graph,
    u: NodeId,
    v: NodeId,
) -> (Option<u32>, Option<u32>, Option<f64>) {
    let di = if image.contains(u) {
        traversal::bfs_distances(image, u)
            .get(v.index())
            .copied()
            .flatten()
    } else {
        None
    };
    let dg = if ghost.contains(u) {
        traversal::bfs_distances(ghost, u)
            .get(v.index())
            .copied()
            .flatten()
    } else {
        None
    };
    let stretch = if image.contains(u) && image.contains(v) {
        stretch_ratio(dg, di)
    } else {
        None
    };
    (di, dg, stretch)
}

fn check_view(
    label: &str,
    step: usize,
    view: &impl GraphView,
    cache: &mut QueryCache,
    frozen_cache: &mut QueryCache,
    tier: &mut FrozenQueryCache,
    pairs: &[(NodeId, NodeId)],
) {
    // Freeze once per checkpoint — the epoch-stamped CSR snapshot every
    // frozen-path read below runs against.
    let frozen = view.freeze();
    assert_eq!(
        frozen.epoch(),
        view.epoch(),
        "{label} step {step}: frozen epoch"
    );
    for &(u, v) in pairs {
        let (want_d, _, want_s) = ground_truth(view.image(), view.ghost(), u, v);
        let ctx = format!("{label} step {step} pair ({u}, {v})");

        assert_eq!(view.distance(u, v), want_d, "{ctx}: distance");
        assert_eq!(view.same_component(u, v), want_d.is_some(), "{ctx}: comp");
        assert_eq!(view.stretch(u, v), want_s, "{ctx}: stretch");
        match (view.path(u, v), want_d) {
            (None, None) => {}
            (Some(path), Some(d)) => {
                assert_eq!(path.len() as u32, d + 1, "{ctx}: path length");
                assert_eq!(path.first(), Some(&u), "{ctx}: path start");
                assert_eq!(path.last(), Some(&v), "{ctx}: path end");
                for pair in path.windows(2) {
                    assert!(
                        view.image().has_edge(pair[0], pair[1]),
                        "{ctx}: path edge {pair:?}"
                    );
                }
            }
            (got, want) => panic!("{ctx}: path {got:?} vs distance {want:?}"),
        }
        assert_eq!(
            view.degree(u),
            view.image().contains(u).then(|| view.image().degree(u)),
            "{ctx}: degree"
        );

        // The landmark cache — still warm from earlier checkpoints and
        // incrementally invalidated ever since — must answer exactly
        // the same.
        assert_eq!(cache.distance(view, u, v), want_d, "{ctx}: cached distance");
        assert_eq!(cache.stretch(view, u, v), want_s, "{ctx}: cached stretch");
        assert_eq!(
            cache.same_component(view, u, v),
            want_d.is_some(),
            "{ctx}: cached comp"
        );
        let cached_path = cache.path(view, u, v);
        match (&cached_path, want_d) {
            (None, None) => {}
            (Some(path), Some(d)) => {
                assert_eq!(path.len() as u32, d + 1, "{ctx}: cached path length");
                assert_eq!(path.first(), Some(&u), "{ctx}: cached path start");
                assert_eq!(path.last(), Some(&v), "{ctx}: cached path end");
                for pair in path.windows(2) {
                    assert!(
                        view.image().has_edge(pair[0], pair[1]),
                        "{ctx}: cached path edge {pair:?}"
                    );
                }
            }
            (got, want) => panic!("{ctx}: cached path {got:?} vs distance {want:?}"),
        }

        // The frozen CSR snapshot must be *bit-identical* to the live
        // view — not just equally short paths, the same node sequence:
        // the dense remap is monotone and the bitset/bidirectional
        // kernels mirror the live traversal order exactly.
        assert_eq!(frozen.distance(u, v), want_d, "{ctx}: frozen distance");
        assert_eq!(frozen.path(u, v), view.path(u, v), "{ctx}: frozen path");
        assert_eq!(
            frozen.same_component(u, v),
            want_d.is_some(),
            "{ctx}: frozen comp"
        );
        assert_eq!(frozen.stretch(u, v), want_s, "{ctx}: frozen stretch");
        assert_eq!(frozen.degree(u), view.degree(u), "{ctx}: frozen degree");

        // And the frozen-path cache — fed the same per-event folds as
        // the live cache, so its landmark state is identical — answers
        // bit-identically too, including path node sequences.
        assert_eq!(
            frozen_cache.distance(&frozen, u, v),
            want_d,
            "{ctx}: frozen cached distance"
        );
        assert_eq!(
            frozen_cache.stretch(&frozen, u, v),
            want_s,
            "{ctx}: frozen cached stretch"
        );
        assert_eq!(
            frozen_cache.same_component(&frozen, u, v),
            want_d.is_some(),
            "{ctx}: frozen cached comp"
        );
        assert_eq!(
            frozen_cache.path(&frozen, u, v),
            cached_path,
            "{ctx}: frozen cached path"
        );

        // The dedicated serving tier answers from its own published
        // snapshot (per-epoch image memos + persistent ghost landmarks)
        // — scalar answers exact, paths valid shortest paths (its
        // gradient source may differ from the live cache's).
        assert_eq!(tier.epoch(), Some(view.epoch()), "{ctx}: tier epoch");
        assert_eq!(tier.distance(u, v), want_d, "{ctx}: tier distance");
        assert_eq!(tier.stretch(u, v), want_s, "{ctx}: tier stretch");
        assert_eq!(
            tier.same_component(u, v),
            want_d.is_some(),
            "{ctx}: tier comp"
        );
        assert_eq!(tier.degree(u), view.degree(u), "{ctx}: tier degree");
        match (tier.path(u, v), want_d) {
            (None, None) => {}
            (Some(path), Some(d)) => {
                assert_eq!(path.len() as u32, d + 1, "{ctx}: tier path length");
                assert_eq!(path.first(), Some(&u), "{ctx}: tier path start");
                assert_eq!(path.last(), Some(&v), "{ctx}: tier path end");
                for pair in path.windows(2) {
                    assert!(
                        view.image().has_edge(pair[0], pair[1]),
                        "{ctx}: tier path edge {pair:?}"
                    );
                }
            }
            (got, want) => panic!("{ctx}: tier path {got:?} vs distance {want:?}"),
        }
    }
}

/// Records a trace with a scratch engine, then replays it through a
/// fresh engine and a fresh distributed healer, checking query answers
/// against ground truth at every `stride`-th event (and the last).
/// Returns the number of checkpoints verified.
fn lockstep_query_replay(
    label: &str,
    g: &Graph,
    adversary: &mut dyn Adversary,
    policy: PlacementPolicy,
    stride: usize,
    probes: usize,
) -> usize {
    let mut scratch = ForgivingGraph::from_graph_with_policy(g, policy).unwrap();
    let log = run_attack(&mut scratch, adversary, 400).unwrap();

    let mut fg = ForgivingGraph::from_graph_with_policy(g, policy).unwrap();
    let mut dist = DistHealer::from_graph(g, policy);
    // Both caches are fed every event and live across the whole trace,
    // so checkpoints after invalidations (drops, relaxations, merges)
    // are exercised by construction.
    let mut fg_cache = QueryCache::new(8);
    let mut dist_cache = QueryCache::new(8);
    // The frozen-path twins: identical capacity, fed the same events but
    // against per-event CSR snapshots, so their landmark state stays in
    // lockstep with the live caches and every checkpoint can demand
    // bit-identical answers.
    let mut fg_frozen = QueryCache::new(8);
    let mut dist_frozen = QueryCache::new(8);
    // The dedicated serving tiers: noted and re-published after every
    // event, so their per-epoch image memos and persistent ghost
    // landmark state live through the whole trace.
    let mut fg_tier = FrozenQueryCache::new(8);
    let mut dist_tier = FrozenQueryCache::new(8);
    let mut checkpoints = 0usize;
    let last = log.events.len().saturating_sub(1);
    for (step, event) in log.events.iter().enumerate() {
        let a = SelfHealer::apply_event(&mut fg, event).unwrap();
        let b = SelfHealer::apply_event(&mut dist, event).unwrap();
        assert_eq!(a, b, "{label}: outcomes diverged at step {step}");
        fg_cache.note_event(&fg.view(), event, &a);
        dist_cache.note_event(&SelfHealer::view(&dist), event, &b);
        fg_frozen.note_event(&fg.view().freeze(), event, &a);
        dist_frozen.note_event(&SelfHealer::view(&dist).freeze(), event, &b);
        fg_tier.note_event(&fg.view(), event, &a);
        fg_tier.publish(&fg.view());
        dist_tier.note_event(&SelfHealer::view(&dist), event, &b);
        dist_tier.publish(&SelfHealer::view(&dist));
        if step % stride != 0 && step != last {
            continue;
        }
        checkpoints += 1;
        let ev = fg.view();
        let dv = SelfHealer::view(&dist);
        assert_eq!(ev.epoch(), dv.epoch(), "{label}: epochs diverged at {step}");
        let pairs = probe_pairs(ev.ghost().nodes_ever(), step as u64 ^ ev.epoch(), probes);
        check_view(
            &format!("{label}/engine"),
            step,
            &ev,
            &mut fg_cache,
            &mut fg_frozen,
            &mut fg_tier,
            &pairs,
        );
        check_view(
            &format!("{label}/dist"),
            step,
            &dv,
            &mut dist_cache,
            &mut dist_frozen,
            &mut dist_tier,
            &pairs,
        );
    }
    // Identical folds over bit-identical kernels leave identical cache
    // behaviour counters at the end of the whole trace.
    assert_eq!(fg_frozen.stats(), fg_cache.stats(), "{label}: cache stats");
    assert_eq!(dist_frozen.stats(), dist_cache.stats(), "{label}: dist");
    // The serving tiers saw the same probe stream over the same graph
    // evolution on both backends: identical counters, never a flush
    // (every write was noted) and never a drop (nothing invalidates).
    assert_eq!(fg_tier.stats(), dist_tier.stats(), "{label}: tier stats");
    assert_eq!(fg_tier.stats().flushes, 0, "{label}: unnoted writes");
    assert_eq!(fg_tier.stats().dropped, 0, "{label}: tier drops");
    checkpoints
}

#[test]
fn query_answers_match_fresh_bfs_on_all_traces() {
    let mut traces = 0usize;
    let mut checkpoints = 0usize;
    for seed in 0..12u64 {
        for policy in [PlacementPolicy::Adjacent, PlacementPolicy::PaperExact] {
            let workloads = [
                ("er", generators::connected_erdos_renyi(18, 0.14, seed)),
                ("ba", generators::barabasi_albert(18, 2, seed)),
            ];
            for (wl, g) in workloads {
                checkpoints += lockstep_query_replay(
                    &format!("{wl}/random/{seed}/{policy:?}"),
                    &g,
                    &mut RandomDeleter::new(seed, 5),
                    policy,
                    2,
                    4,
                );
                checkpoints += lockstep_query_replay(
                    &format!("{wl}/hub/{seed}/{policy:?}"),
                    &g,
                    &mut MaxDegreeDeleter::new(5),
                    policy,
                    2,
                    4,
                );
                checkpoints += lockstep_query_replay(
                    &format!("{wl}/churn/{seed}/{policy:?}"),
                    &g,
                    &mut ChurnAdversary::new(seed.wrapping_add(7), 0.6, 3, 4, 40),
                    policy,
                    3,
                    4,
                );
                traces += 3;
            }
        }
    }
    assert_eq!(traces, 144, "the full trace corpus must be covered");
    assert!(checkpoints > 1000, "only {checkpoints} checkpoints checked");
}

#[test]
fn caches_survive_heavy_churn_with_tiny_capacity() {
    // A capacity-2 cache under churn: constant eviction plus
    // invalidation, still never a wrong answer.
    let g = generators::connected_erdos_renyi(20, 0.15, 5);
    let mut fg = ForgivingGraph::from_graph(&g).unwrap();
    let mut cache = QueryCache::new(2);
    let mut adv = ChurnAdversary::new(3, 0.5, 3, 3, 60);
    let mut scratch = ForgivingGraph::from_graph(&g).unwrap();
    let log = run_attack(&mut scratch, &mut adv, 60).unwrap();
    for (step, event) in log.events.iter().enumerate() {
        let outcome = SelfHealer::apply_event(&mut fg, event).unwrap();
        cache.note_event(&fg.view(), event, &outcome);
        let view = fg.view();
        for &(u, v) in &probe_pairs(view.ghost().nodes_ever(), step as u64, 6) {
            assert_eq!(cache.distance(&view, u, v), view.distance(u, v));
            assert_eq!(cache.stretch(&view, u, v), view.stretch(u, v));
        }
    }
    let stats = cache.stats();
    assert!(stats.evicted > 0, "capacity 2 must evict: {stats:?}");
    assert!(stats.dropped > 0, "churn must drop vectors: {stats:?}");
}

//! Cross-thread conformance suite: the work-sharded parallel round
//! executor must be *unobservable*. Every adversarial trace of the
//! differential corpus (144 traces: 12 seeds × 2 workloads × 3
//! adversaries × 2 placement policies) is replayed through the
//! distributed protocol at executor widths 1, 2, 4 and 8 — plus any
//! widths named in `FG_DIST_THREADS` (comma-separated), which CI's
//! thread-matrix job sets — and every typed outcome
//! ([`RepairReport`]/`InsertReport` inside [`HealOutcome`]) is asserted
//! equal to the sequential reference engine's **after every event**. At
//! the end of each trace the aggregate [`BatchReport`], the healed
//! image, the insert-only ghost and the flattened reconstruction forest
//! must match too.
//!
//! This is the determinism contract of `fg_dist`'s executor (DESIGN.md
//! §9): canonical `(priority, sender, seq)` delivery order within a
//! round plus effect logs merged in canonical order at the barrier make
//! the thread count a pure wall-clock knob.
//!
//! The sweep is split across four test functions (three seeds each) so
//! the harness can run them concurrently.
//!
//! [`RepairReport`]: forgiving_graph::core::RepairReport

use forgiving_graph::adversary::{
    run_attack, Adversary, ChurnAdversary, MaxDegreeDeleter, RandomDeleter,
};
use forgiving_graph::core::{BatchReport, ForgivingGraph, PlacementPolicy, SelfHealer, Slot, VKey};
use forgiving_graph::dist::DistHealer;
use forgiving_graph::graph::{generators, Graph};

type ForestRow = (
    VKey,
    Option<VKey>,
    Option<VKey>,
    Option<VKey>,
    u32,
    u32,
    Slot,
);

fn engine_forest(fg: &ForgivingGraph) -> Vec<ForestRow> {
    fg.forest()
        .iter()
        .map(|(k, n)| (k, n.parent, n.left, n.right, n.leaves, n.height, n.rep))
        .collect()
}

/// The executor widths under test: the standard {1, 2, 4, 8} sweep plus
/// any extra widths from `FG_DIST_THREADS` (how CI's matrix pins the
/// width it benches with into the conformance run).
fn thread_widths() -> Vec<usize> {
    let mut widths = vec![1usize, 2, 4, 8];
    if let Ok(extra) = std::env::var("FG_DIST_THREADS") {
        for w in extra
            .split(',')
            .filter_map(|t| t.trim().parse::<usize>().ok())
        {
            if w >= 1 && !widths.contains(&w) {
                widths.push(w);
            }
        }
    }
    widths
}

/// Records a trace against the reference engine, then replays it through
/// a fresh distributed healer at every width, asserting typed-outcome
/// equality per event and full state equality at the end. Returns the
/// number of events checked (once per width).
fn conformance_replay(
    label: &str,
    g: &Graph,
    adversary: &mut dyn Adversary,
    policy: PlacementPolicy,
    widths: &[usize],
) -> usize {
    let mut engine = ForgivingGraph::from_graph_with_policy(g, policy).unwrap();
    let log = run_attack(&mut engine, adversary, 400).unwrap();
    let reference_forest = engine_forest(&engine);

    let mut checked = 0usize;
    for &threads in widths {
        let mut dist = DistHealer::from_graph_threaded(g, policy, threads);
        assert_eq!(dist.threads(), threads, "{label}: width not applied");
        let mut batch = BatchReport::new();
        for (step, event) in log.events.iter().enumerate() {
            let outcome = {
                let healer: &mut dyn SelfHealer = &mut dist;
                healer.apply_event(event).unwrap_or_else(|e| {
                    panic!("{label} @ {threads} threads: step {step} ({event}) failed: {e}")
                })
            };
            assert_eq!(
                outcome, log.report.outcomes[step],
                "{label} @ {threads} threads: typed outcome diverged at step {step} ({event})"
            );
            batch.push(outcome);
            checked += 1;
        }
        assert_eq!(
            batch, log.report,
            "{label} @ {threads} threads: batch reports diverged"
        );
        assert_eq!(
            SelfHealer::image(&dist),
            engine.image(),
            "{label} @ {threads} threads: images diverged"
        );
        assert_eq!(
            SelfHealer::ghost(&dist),
            engine.ghost(),
            "{label} @ {threads} threads: ghosts diverged"
        );
        assert_eq!(
            dist.network().forest_snapshot(),
            reference_forest,
            "{label} @ {threads} threads: forests diverged"
        );
    }
    checked
}

/// Replays the differential corpus slice for `seeds`, returning
/// `(traces, events_checked)`.
fn sweep_seeds(seeds: std::ops::Range<u64>) -> (usize, usize) {
    let widths = thread_widths();
    let mut traces = 0usize;
    let mut events = 0usize;
    for seed in seeds {
        for policy in [PlacementPolicy::Adjacent, PlacementPolicy::PaperExact] {
            let workloads = [
                ("er", generators::connected_erdos_renyi(18, 0.14, seed)),
                ("ba", generators::barabasi_albert(18, 2, seed)),
            ];
            for (wl, g) in workloads {
                events += conformance_replay(
                    &format!("{wl}/random/{seed}/{policy:?}"),
                    &g,
                    &mut RandomDeleter::new(seed, 5),
                    policy,
                    &widths,
                );
                events += conformance_replay(
                    &format!("{wl}/hub/{seed}/{policy:?}"),
                    &g,
                    &mut MaxDegreeDeleter::new(5),
                    policy,
                    &widths,
                );
                events += conformance_replay(
                    &format!("{wl}/churn/{seed}/{policy:?}"),
                    &g,
                    &mut ChurnAdversary::new(seed.wrapping_add(7), 0.6, 3, 4, 40),
                    policy,
                    &widths,
                );
                traces += 3;
            }
        }
    }
    (traces, events)
}

#[test]
fn widths_cover_the_required_sweep() {
    let widths = thread_widths();
    for required in [1, 2, 4, 8] {
        assert!(widths.contains(&required), "missing width {required}");
    }
}

#[test]
fn parallel_matches_engine_seeds_0_to_2() {
    let (traces, events) = sweep_seeds(0..3);
    assert_eq!(traces, 36, "each quarter covers 36 of the 144 traces");
    assert!(events > 1000, "only {events} event checks ran");
}

#[test]
fn parallel_matches_engine_seeds_3_to_5() {
    let (traces, events) = sweep_seeds(3..6);
    assert_eq!(traces, 36, "each quarter covers 36 of the 144 traces");
    assert!(events > 1000, "only {events} event checks ran");
}

#[test]
fn parallel_matches_engine_seeds_6_to_8() {
    let (traces, events) = sweep_seeds(6..9);
    assert_eq!(traces, 36, "each quarter covers 36 of the 144 traces");
    assert!(events > 1000, "only {events} event checks ran");
}

#[test]
fn parallel_matches_engine_seeds_9_to_11() {
    let (traces, events) = sweep_seeds(9..12);
    assert_eq!(traces, 36, "each quarter covers 36 of the 144 traces");
    assert!(events > 1000, "only {events} event checks ran");
}

#[test]
fn resharding_mid_trace_is_unobservable() {
    // Beyond fixed widths: flip the executor width *between events* and
    // the replay still matches the engine — the pool holds no
    // round-spanning state a reshard could lose.
    let g = generators::connected_erdos_renyi(20, 0.14, 5);
    let mut engine = ForgivingGraph::from_graph(&g).unwrap();
    let log = run_attack(&mut engine, &mut ChurnAdversary::new(3, 0.6, 3, 4, 60), 120).unwrap();
    let mut dist = DistHealer::from_graph(&g, PlacementPolicy::Adjacent);
    for (step, event) in log.events.iter().enumerate() {
        dist.set_threads([1, 3, 2, 8][step % 4]);
        let outcome = {
            let healer: &mut dyn SelfHealer = &mut dist;
            healer.apply_event(event).unwrap()
        };
        assert_eq!(
            outcome, log.report.outcomes[step],
            "diverged at step {step}"
        );
    }
    assert_eq!(SelfHealer::image(&dist), engine.image());
    assert_eq!(dist.network().forest_snapshot(), engine_forest(&engine));
}

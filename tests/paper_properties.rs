//! Randomized full-stack properties: the paper's contract must hold for
//! arbitrary adversarial schedules across every layer at once.

use forgiving_graph::core::{ForgivingGraph, PlacementPolicy, SelfHealer};
use forgiving_graph::dist::Network;
use forgiving_graph::graph::{generators, NodeId};
use forgiving_graph::metrics::measure_sampled;
use proptest::prelude::*;

/// Decode a byte schedule into events applied to both engines in
/// lockstep, returning false if they ever diverge.
fn lockstep(seed: u64, bytes: &[u8]) -> Result<(), TestCaseError> {
    let g = generators::connected_erdos_renyi(14, 0.16, seed);
    let mut net = Network::from_graph(&g, PlacementPolicy::Adjacent);
    let mut fg = ForgivingGraph::from_graph(&g).unwrap();
    for &b in bytes {
        let alive: Vec<NodeId> = fg.image().iter().collect();
        if alive.len() <= 3 {
            break;
        }
        if b & 1 == 0 {
            let v = alive[(b as usize / 2) % alive.len()];
            net.delete(v).unwrap();
            fg.delete(v).unwrap();
            prop_assert_eq!(net.image(), fg.image(), "image diverged");
        } else {
            let k = 1 + (b as usize / 2) % 2.min(alive.len());
            let nbrs: Vec<NodeId> = alive.into_iter().take(k).collect();
            let a = net.insert(&nbrs).unwrap();
            let c = SelfHealer::insert(&mut fg, &nbrs).unwrap();
            prop_assert_eq!(a, c);
        }
    }
    fg.check_invariants().unwrap();
    let health = measure_sampled(&fg, 10, 3);
    prop_assert!(health.connected);
    prop_assert!(health.stretch.max <= fg.stretch_bound() as f64);
    prop_assert!(health.degree.max_ratio <= 4.0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distributed protocol and the reference engine never diverge,
    /// and the healed network always satisfies Theorem 1.
    #[test]
    fn protocol_and_engine_in_lockstep(
        seed in 0u64..100,
        bytes in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        lockstep(seed, &bytes)?;
    }

    /// Repair work (virtual node churn) respects the Theorem 1.3 shape on
    /// arbitrary delete schedules.
    #[test]
    fn churn_stays_in_envelope(
        seed in 0u64..100,
        picks in prop::collection::vec(any::<u16>(), 1..20),
    ) {
        let g = generators::barabasi_albert(24, 2, seed);
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        let log_n = (fg.nodes_ever() as f64).log2().ceil();
        for p in picks {
            let alive: Vec<NodeId> = fg.image().iter().collect();
            if alive.len() <= 3 {
                break;
            }
            let v = alive[p as usize % alive.len()];
            let d = fg.ghost().degree(v).max(2) as f64;
            let report = fg.delete(v).unwrap();
            prop_assert!(
                (report.churn() as f64) <= 10.0 * d * log_n,
                "churn {} for degree {d}",
                report.churn()
            );
        }
    }
}

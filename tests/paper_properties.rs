//! Randomized full-stack properties: the paper's contract must hold for
//! arbitrary adversarial schedules across every layer at once.

use forgiving_graph::core::{ForgivingGraph, PlacementPolicy, SelfHealer};
use forgiving_graph::dist::Network;
use forgiving_graph::graph::{generators, NodeId};
use forgiving_graph::metrics::measure_sampled;
use proptest::prelude::*;

/// Decode a byte schedule into events applied to both engines in
/// lockstep, returning false if they ever diverge.
fn lockstep(seed: u64, bytes: &[u8]) -> Result<(), TestCaseError> {
    let g = generators::connected_erdos_renyi(14, 0.16, seed);
    let mut net = Network::from_graph(&g, PlacementPolicy::Adjacent);
    let mut fg = ForgivingGraph::from_graph(&g).unwrap();
    for &b in bytes {
        let alive: Vec<NodeId> = fg.image().iter().collect();
        if alive.len() <= 3 {
            break;
        }
        if b & 1 == 0 {
            let v = alive[(b as usize / 2) % alive.len()];
            net.delete(v).unwrap();
            let _ = fg.delete(v).unwrap();
            prop_assert_eq!(net.image(), fg.image(), "image diverged");
        } else {
            let k = 1 + (b as usize / 2) % 2.min(alive.len());
            let nbrs: Vec<NodeId> = alive.into_iter().take(k).collect();
            let a = net.insert(&nbrs).unwrap();
            let c = SelfHealer::insert(&mut fg, &nbrs).unwrap().node;
            prop_assert_eq!(a, c);
        }
    }
    fg.check_invariants().unwrap();
    let health = measure_sampled(&fg, 10, 3);
    prop_assert!(health.connected);
    prop_assert!(health.stretch.max <= fg.stretch_bound() as f64);
    prop_assert!(health.degree.max_ratio <= 4.0);
    Ok(())
}

/// Lemma 4 envelope constants measured across this workspace's workloads
/// (worst observed: ≈14.3 normalized messages on low-degree victims of
/// large reconstruction trees, ≈5.0 normalized rounds on tiny victims);
/// the protocol must stay below these for every cascaded deletion.
const LEMMA4_MESSAGE_CONSTANT: f64 = 24.0;
const LEMMA4_ROUND_CONSTANT: f64 = 8.0;
/// The largest protocol payload carries a fixed number of node names
/// (a `CollectTree` is ~10 names plus flags), so every message must fit
/// in this many names of `⌈log₂ n⌉` bits each.
const LEMMA4_NAMES_PER_MESSAGE: u64 = 16;

/// `⌈log₂ n⌉`, floored at 1 — one node name in bits.
fn name_bits(n: usize) -> u64 {
    let n = n.max(2);
    u64::from((usize::BITS - (n - 1).leading_zeros()).max(1))
}

/// Runs a cascade of deletions through the protocol and asserts every
/// repair stays inside the Lemma 4 envelopes.
fn assert_lemma4_envelopes(
    label: &str,
    g: &fg_graph::Graph,
    picks: &[u16],
) -> Result<(), TestCaseError> {
    let mut net = Network::from_graph(g, PlacementPolicy::Adjacent);
    for &p in picks {
        let alive: Vec<NodeId> = net.image().iter().collect();
        if alive.len() <= 2 {
            break;
        }
        let v = alive[p as usize % alive.len()];
        net.delete(v).unwrap();
    }
    for cost in &net.repair_costs {
        prop_assert!(
            cost.normalized_messages() < LEMMA4_MESSAGE_CONSTANT,
            "{label}: messages not O(d log n): {} msgs for d = {} (normalized {:.2})",
            cost.messages,
            cost.victim_degree,
            cost.normalized_messages()
        );
        prop_assert!(
            cost.normalized_rounds() < LEMMA4_ROUND_CONSTANT,
            "{label}: rounds not O(log d · log n): {} rounds for d = {} (normalized {:.2})",
            cost.rounds,
            cost.victim_degree,
            cost.normalized_rounds()
        );
        prop_assert!(
            cost.max_message_bits <= LEMMA4_NAMES_PER_MESSAGE * name_bits(cost.nodes_ever),
            "{label}: message of {} bits exceeds {} names of ⌈log₂ {}⌉ bits",
            cost.max_message_bits,
            LEMMA4_NAMES_PER_MESSAGE,
            cost.nodes_ever
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distributed protocol and the reference engine never diverge,
    /// and the healed network always satisfies Theorem 1.
    #[test]
    fn protocol_and_engine_in_lockstep(
        seed in 0u64..100,
        bytes in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        lockstep(seed, &bytes)?;
    }

    /// Lemma 4 on the star: hub-first cascades of every degree stay in the
    /// message and round envelopes.
    #[test]
    fn lemma4_envelopes_on_stars(
        d in 2usize..80,
        picks in prop::collection::vec(any::<u16>(), 1..24),
    ) {
        let g = generators::star(d + 1);
        // Hub first (the worst case), then the cascade.
        let mut schedule = vec![0u16];
        schedule.extend(picks);
        assert_lemma4_envelopes("star", &g, &schedule)?;
    }

    /// Lemma 4 on sparse random graphs under arbitrary delete schedules.
    #[test]
    fn lemma4_envelopes_on_er(
        seed in 0u64..100,
        picks in prop::collection::vec(any::<u16>(), 1..28),
    ) {
        let g = generators::connected_erdos_renyi(36, 8.0 / 36.0, seed);
        assert_lemma4_envelopes("er", &g, &picks)?;
    }

    /// Lemma 4 on heavy-tailed graphs: hub repairs merge big trees, and
    /// the envelopes still hold.
    #[test]
    fn lemma4_envelopes_on_ba(
        seed in 0u64..100,
        picks in prop::collection::vec(any::<u16>(), 1..28),
    ) {
        let g = generators::barabasi_albert(36, 2, seed);
        assert_lemma4_envelopes("ba", &g, &picks)?;
    }

    /// Repair work (virtual node churn) respects the Theorem 1.3 shape on
    /// arbitrary delete schedules.
    #[test]
    fn churn_stays_in_envelope(
        seed in 0u64..100,
        picks in prop::collection::vec(any::<u16>(), 1..20),
    ) {
        let g = generators::barabasi_albert(24, 2, seed);
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        let log_n = (fg.nodes_ever() as f64).log2().ceil();
        for p in picks {
            let alive: Vec<NodeId> = fg.image().iter().collect();
            if alive.len() <= 3 {
                break;
            }
            let v = alive[p as usize % alive.len()];
            let d = fg.ghost().degree(v).max(2) as f64;
            let report = fg.delete(v).unwrap();
            prop_assert!(
                (report.churn() as f64) <= 10.0 * d * log_n,
                "churn {} for degree {d}",
                report.churn()
            );
        }
    }
}

//! The repository audits itself: `cargo test` fails if any source file
//! violates a project invariant fg-lint machine-checks (DESIGN.md §15)
//! — panic-freedom on serve/recovery paths, blessed durability I/O,
//! poison-safe locks, digest-path determinism, swallowed Results, and
//! `#![forbid(unsafe_code)]` on every crate root. Suppressions must be
//! inline, reasoned, and actually used, so every exception is visible
//! in the diff that introduces it.

use std::path::Path;

/// The workspace root, two levels up from the umbrella crate manifest.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("umbrella crate sits two levels under the workspace root")
}

#[test]
fn the_tree_is_lint_clean() {
    let report = fg_lint::analyze_tree(workspace_root()).expect("walk the workspace");
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — the walker is looking at the wrong root",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "fg-lint found {} violation(s):\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    // analyze_tree already turns reasonless allows into findings; this
    // pins the stronger shape directly so the contract survives engine
    // refactors: every recorded suppression in the tree names a known
    // rule and has a non-empty reason.
    let report = fg_lint::analyze_tree(workspace_root()).expect("walk the workspace");
    for s in &report.suppressed {
        assert!(
            fg_lint::ALL_RULE_NAMES.contains(&s.rule),
            "suppressed finding references unknown rule {:?}",
            s.rule
        );
    }
}

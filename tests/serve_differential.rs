//! Loopback serving differential: every answer the `fg-serve` TCP tier
//! returns must be **bit-identical** to the in-process read API it
//! fronts — the epoch-pinned [`FrozenView`] inside the published
//! snapshot — on both healer backends (the single-machine engine and
//! the message-passing protocol), over the standard churn trace.
//!
//! Checked per probe pair, over every wire op:
//!
//! * `distance`/`stretch`/`degree`/`same_component`/`neighbors` equal
//!   the frozen snapshot's answers exactly (scalars and node lists);
//! * `path` returns the *same node sequence* the frozen snapshot
//!   computes, not merely an equally short one;
//! * every response is stamped with the published certificate — the
//!   hub's current epoch and the publisher's chained report digest —
//!   and both backends publish the same epoch;
//! * both backends' served scalar answers agree with each other.
//!
//! [`FrozenView`]: forgiving_graph::core::FrozenView

use forgiving_graph::bench::scenario;
use forgiving_graph::core::{ForgivingGraph, PlacementPolicy, SelfHealer};
use forgiving_graph::dist::DistHealer;
use forgiving_graph::graph::NodeId;
use forgiving_graph::serve::{Client, Publisher, Request, ResponseBody, Server, ServerConfig};

/// Seeded SplitMix64 pair sampler over the ghost node universe (live
/// and dead ids both — dead endpoints must serve `None`, not errors).
fn probe_pairs(nodes_ever: usize, salt: u64, count: usize) -> Vec<(NodeId, NodeId)> {
    let n = nodes_ever.max(1) as u64;
    let mut state = salt ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            (
                NodeId::new((next() % n) as u32),
                NodeId::new((next() % n) as u32),
            )
        })
        .collect()
}

/// Replays the churn trace through a publisher, serves the final
/// snapshot over loopback, and checks every wire op against the frozen
/// snapshot for every probe pair. Returns `(epoch, digest, answers)`
/// for the cross-backend comparison.
fn serve_and_probe<H: SelfHealer>(
    label: &str,
    healer: H,
    events: &[forgiving_graph::core::NetworkEvent],
    pairs: &[(NodeId, NodeId)],
) -> (u64, u64, Vec<ResponseBody>) {
    let mut publisher = Publisher::new(healer);
    for chunk in events.chunks(64) {
        let _ = publisher.apply_and_publish(chunk).expect("legal trace");
    }
    let hub = publisher.hub();
    let epoch = hub.epoch();
    let digest = publisher.digest();
    let snapshot = hub.pin();
    assert_eq!(snapshot.epoch, epoch, "{label}: pinned epoch");
    assert_eq!(snapshot.digest, digest, "{label}: pinned digest");
    let frozen = &snapshot.view;

    let server =
        Server::bind(("127.0.0.1", 0), hub, ServerConfig::default()).expect("bind loopback server");
    let mut client = Client::connect(server.addr()).expect("connect");

    // The epoch op carries its answer entirely in the stamp.
    let stamped = client.epoch().expect("epoch roundtrip");
    assert_eq!(stamped.epoch, epoch, "{label}: epoch op stamp");
    assert_eq!(stamped.digest, digest, "{label}: epoch op digest");

    let mut answers = Vec::new();
    for &(u, v) in pairs {
        let ctx = format!("{label} pair ({u}, {v})");
        let requests = [
            Request::Distance(u, v),
            Request::Path(u, v),
            Request::Stretch(u, v),
            Request::Degree(u),
            Request::Neighbors(u),
            Request::SameComponent(u, v),
        ];
        for request in requests {
            let served = client.roundtrip(&request).expect("roundtrip");
            assert_eq!(served.epoch, epoch, "{ctx}: stamp epoch");
            assert_eq!(served.digest, digest, "{ctx}: stamp digest");
            match &served.value {
                ResponseBody::Distance(d) => {
                    assert_eq!(*d, frozen.distance(u, v), "{ctx}: distance")
                }
                ResponseBody::Path(p) => {
                    assert_eq!(*p, frozen.path(u, v), "{ctx}: path node sequence")
                }
                ResponseBody::Stretch(s) => {
                    assert_eq!(*s, frozen.stretch(u, v), "{ctx}: stretch")
                }
                ResponseBody::Degree(d) => {
                    assert_eq!(*d, frozen.degree(u).map(|x| x as u64), "{ctx}: degree")
                }
                ResponseBody::Neighbors(ns) => assert_eq!(
                    *ns,
                    frozen.alive(u).then(|| frozen.neighbors(u)),
                    "{ctx}: neighbors"
                ),
                ResponseBody::SameComponent(c) => {
                    assert_eq!(*c, frozen.same_component(u, v), "{ctx}: component")
                }
                ResponseBody::Epoch => panic!("{ctx}: unexpected epoch body"),
                ResponseBody::EventSubmitted | ResponseBody::BatchSubmitted(_) => {
                    panic!("{ctx}: write ack on a read-only probe")
                }
            }
            answers.push(served.value);
        }
    }
    drop(client);
    server.shutdown();
    (epoch, digest, answers)
}

#[test]
fn served_answers_are_bit_identical_on_both_backends() {
    for seed in [3u64, 11, 29] {
        let sc = scenario("churn", 48, 300, seed);
        let pairs = probe_pairs(sc.initial.nodes_ever() + sc.events.len(), seed ^ 0xfeed, 24);

        let engine = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
        let (engine_epoch, _, engine_answers) =
            serve_and_probe(&format!("engine/{seed}"), engine, &sc.events, &pairs);

        let dist = DistHealer::from_graph(&sc.initial, PlacementPolicy::Adjacent);
        let (dist_epoch, _, dist_answers) =
            serve_and_probe(&format!("dist/{seed}"), dist, &sc.events, &pairs);

        // Both backends replayed the same trace: same structural epoch,
        // and — the paper reproduction's core determinism claim carried
        // all the way to the wire — identical served answers.
        assert_eq!(engine_epoch, dist_epoch, "seed {seed}: epochs diverged");
        assert_eq!(
            engine_answers, dist_answers,
            "seed {seed}: served answers diverged across backends"
        );
    }
}

#[test]
fn serving_tracks_the_live_healer_across_republishes() {
    // Publish → query → apply more churn → publish → query again: the
    // server must always answer from the *latest* published snapshot,
    // with the stamp advancing in lockstep.
    let sc = scenario("churn", 32, 120, 7);
    let engine = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0");
    let mut publisher = Publisher::new(engine);
    let hub = publisher.hub();
    let server =
        Server::bind(("127.0.0.1", 0), hub.clone(), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let mut last_epoch = 0u64;
    for chunk in sc.events.chunks(30) {
        let _ = publisher.apply_and_publish(chunk).expect("legal trace");
        let expect_epoch = hub.epoch();
        let expect_digest = publisher.digest();
        assert!(expect_epoch > last_epoch, "epoch must advance");
        last_epoch = expect_epoch;

        let stamped = client.epoch().expect("epoch roundtrip");
        assert_eq!(stamped.epoch, expect_epoch, "stale snapshot served");
        assert_eq!(stamped.digest, expect_digest, "stale digest served");

        // A live probe answered from the same frozen state the stamp names.
        let frozen = &hub.pin().view;
        let (u, v) = (NodeId::new(0), NodeId::new(1));
        let d = client.distance(u, v).expect("distance roundtrip");
        assert_eq!(d.epoch, expect_epoch);
        assert_eq!(d.value, frozen.distance(u, v));
    }
    drop(client);
    server.shutdown();
}

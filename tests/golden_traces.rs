//! Golden-trace regression corpus: three small canonical traces (churn,
//! hub-cascade, partition-then-heal) live under `tests/golden/` next to
//! the digest stream of their per-event typed outcomes (one stable
//! [`fg_core::ReportDigest`] per event, as written by
//! `fg_bench::replay::format_digest_file`).
//!
//! Any drift — a different report for any event, a missing event, an
//! extra event — fails the replay test with the exact event index. The
//! digests are environment-independent (explicit FNV-1a, no `std::hash`),
//! so a failure here is always a *behaviour* change. If the change is
//! intentional, regenerate the corpus and review the new files in the
//! diff:
//!
//! ```text
//! cargo test -p forgiving-graph --test golden_traces -- --ignored
//! ```
//!
//! [`fg_core::ReportDigest`]: forgiving_graph::core::ReportDigest

use forgiving_graph::bench::replay::{
    first_digest_drift, format_digest_file, parse_digest_file, replay_digests,
    replay_query_digests, ReplayBackend,
};
use forgiving_graph::bench::{scenario, Scenario};
use std::path::PathBuf;

/// The corpus: `(workload, n, events, seed)` — small enough to replay in
/// milliseconds, varied enough to exercise churn, targeted hub kills and
/// partition healing.
const CORPUS: &[(&str, usize, usize, u64)] = &[
    ("churn", 24, 120, 7),
    ("hub-cascade", 24, 120, 7),
    ("partition-then-heal", 24, 120, 7),
];

/// Probe-set parameters for the pinned query digests (`*.queries`
/// files): the seed and pairs-per-event of
/// [`replay_query_digests`]'s deterministic sampler.
const QUERY_SEED: u64 = 0xfade;
const QUERY_PROBES: usize = 4;

fn golden_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/umbrella; the corpus lives at the
    // repository root next to this test's source.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn load(name: &str) -> (Scenario, Vec<u64>) {
    let dir = golden_dir();
    let trace = std::fs::read_to_string(dir.join(format!("{name}.trace")))
        .unwrap_or_else(|e| panic!("missing golden trace {name}.trace: {e}"));
    let digests = std::fs::read_to_string(dir.join(format!("{name}.digests")))
        .unwrap_or_else(|e| panic!("missing golden digests {name}.digests: {e}"));
    (
        Scenario::read_trace(name, &trace),
        parse_digest_file(&digests),
    )
}

#[test]
fn golden_corpus_matches_engine_replay() {
    for &(name, _, events, _) in CORPUS {
        let (sc, recorded) = load(name);
        assert_eq!(sc.events.len(), events, "{name}: trace truncated");
        assert_eq!(recorded.len(), events, "{name}: digest file truncated");
        let replayed = replay_digests(&sc, ReplayBackend::Engine)
            .unwrap_or_else(|e| panic!("{name}: replay failed: {e}"));
        if let Some((index, want, got)) = first_digest_drift(&recorded, &replayed) {
            panic!(
                "{name}: digest drift at event {index} (recorded {want:016x}, got {got:016x}) — \
                 a per-event report changed; if intentional, regenerate via \
                 `cargo test -p forgiving-graph --test golden_traces -- --ignored` \
                 and review the diff"
            );
        }
    }
}

#[test]
fn golden_corpus_matches_distributed_replay_at_every_width() {
    // The same digests through the protocol, sequential and sharded —
    // the corpus also pins the cross-implementation, cross-thread
    // convergence contract.
    for &(name, _, _, _) in CORPUS {
        let (sc, recorded) = load(name);
        for threads in [1usize, 4] {
            let replayed = replay_digests(&sc, ReplayBackend::Dist { threads })
                .unwrap_or_else(|e| panic!("{name} @ {threads} threads: replay failed: {e}"));
            assert_eq!(
                first_digest_drift(&recorded, &replayed),
                None,
                "{name} @ {threads} threads drifted from the golden digests"
            );
        }
    }
}

#[test]
fn golden_files_carry_provenance_headers() {
    for &(name, _, _, _) in CORPUS {
        for ext in ["digests", "queries"] {
            let text = std::fs::read_to_string(golden_dir().join(format!("{name}.{ext}")))
                .expect("golden file");
            assert!(
                text.starts_with("# "),
                "{name}.{ext} lost its provenance header"
            );
        }
    }
}

fn load_queries(name: &str) -> (Scenario, Vec<u64>) {
    let dir = golden_dir();
    let trace = std::fs::read_to_string(dir.join(format!("{name}.trace")))
        .unwrap_or_else(|e| panic!("missing golden trace {name}.trace: {e}"));
    let digests = std::fs::read_to_string(dir.join(format!("{name}.queries")))
        .unwrap_or_else(|e| panic!("missing golden query digests {name}.queries: {e}"));
    (
        Scenario::read_trace(name, &trace),
        parse_digest_file(&digests),
    )
}

#[test]
fn golden_query_answers_match_engine_replay() {
    // The read side is pinned alongside the outcome digests: after
    // every event, a seeded probe set's distance/path/stretch/
    // component/degree answers fold into one digest per event. Any
    // change to what the query API answers on these traces fails here
    // with the exact event index.
    for &(name, _, events, _) in CORPUS {
        let (sc, recorded) = load_queries(name);
        assert_eq!(recorded.len(), events, "{name}: query digests truncated");
        let replayed = replay_query_digests(&sc, ReplayBackend::Engine, QUERY_SEED, QUERY_PROBES)
            .unwrap_or_else(|e| panic!("{name}: replay failed: {e}"));
        if let Some((index, want, got)) = first_digest_drift(&recorded, &replayed) {
            panic!(
                "{name}: query digest drift at event {index} (recorded {want:016x}, got \
                 {got:016x}) — a query answer changed; if intentional, regenerate via \
                 `cargo test -p forgiving-graph --test golden_traces -- --ignored` \
                 and review the diff"
            );
        }
    }
}

#[test]
fn golden_query_answers_match_distributed_replay() {
    for &(name, _, _, _) in CORPUS {
        let (sc, recorded) = load_queries(name);
        for threads in [1usize, 4] {
            let replayed = replay_query_digests(
                &sc,
                ReplayBackend::Dist { threads },
                QUERY_SEED,
                QUERY_PROBES,
            )
            .unwrap_or_else(|e| panic!("{name} @ {threads} threads: replay failed: {e}"));
            assert_eq!(
                first_digest_drift(&recorded, &replayed),
                None,
                "{name} @ {threads} threads drifted from the golden query digests"
            );
        }
    }
}

#[test]
fn golden_corpus_is_invariant_under_compaction() {
    use forgiving_graph::bench::replay::query_digest;
    use forgiving_graph::core::{CompactionPolicy, ForgivingGraph, SelfHealer};
    // Arena compaction is pure layout: replaying with it enabled — at
    // the default threshold, and at an aggressive one that provably
    // fires on these small traces — must leave every outcome digest
    // AND every query digest bit-identical to the recorded corpus.
    let aggressive = CompactionPolicy {
        min_density: 0.5,
        min_slots: 2,
    };
    let mut fired = 0u64;
    for &(name, _, _, _) in CORPUS {
        let (sc, recorded) = load(name);
        let (_, recorded_queries) = load_queries(name);
        for policy in [CompactionPolicy::default(), aggressive] {
            let mut fg = ForgivingGraph::from_graph(&sc.initial).expect("fresh G0 from trace");
            fg.set_compaction(Some(policy));
            let mut digests = Vec::with_capacity(sc.events.len());
            let mut queries = Vec::with_capacity(sc.events.len());
            for event in &sc.events {
                digests.push(fg.apply_event(event).expect("legal trace").digest());
                queries.push(query_digest(&fg.view(), QUERY_SEED, QUERY_PROBES));
            }
            assert_eq!(
                first_digest_drift(&recorded, &digests),
                None,
                "{name}: outcome digests drifted under compaction {policy:?}"
            );
            assert_eq!(
                first_digest_drift(&recorded_queries, &queries),
                None,
                "{name}: query digests drifted under compaction {policy:?}"
            );
            fired += fg.stats().compactions;
        }
    }
    assert!(
        fired > 0,
        "the aggressive policy never compacted — invariance was not exercised"
    );
}

/// Regenerates the whole corpus in place. Ignored by default — run
/// explicitly (see module docs) after an intentional behaviour change,
/// then commit the updated files.
#[test]
#[ignore = "regenerates tests/golden/ in place; run explicitly after intentional changes"]
fn regenerate_golden_corpus() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("creating tests/golden");
    for &(name, n, events, seed) in CORPUS {
        let sc = scenario(name, n, events, seed);
        let digests = replay_digests(&sc, ReplayBackend::Engine).expect("engine replay");
        let header = format!(
            "golden trace: workload {name}, n {n}, events {events}, seed {seed}\n\
             regenerate: cargo test -p forgiving-graph --test golden_traces -- --ignored"
        );
        std::fs::write(dir.join(format!("{name}.trace")), sc.to_trace()).expect("write trace");
        std::fs::write(
            dir.join(format!("{name}.digests")),
            format_digest_file(&header, &digests),
        )
        .expect("write digests");
        let queries = replay_query_digests(&sc, ReplayBackend::Engine, QUERY_SEED, QUERY_PROBES)
            .expect("engine query replay");
        let query_header = format!(
            "golden query digests: workload {name}, n {n}, events {events}, seed {seed}, \
             probe seed {QUERY_SEED:#x}, {QUERY_PROBES} pairs/event\n\
             regenerate: cargo test -p forgiving-graph --test golden_traces -- --ignored"
        );
        std::fs::write(
            dir.join(format!("{name}.queries")),
            format_digest_file(&query_header, &queries),
        )
        .expect("write query digests");
        eprintln!("regenerated {name}: {events} events");
    }
}

use std::fs::File;
use std::io::Write;

pub fn persist(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(bytes)
}

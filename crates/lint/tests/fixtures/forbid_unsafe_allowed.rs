//! A crate root carrying the workspace safety pledge.

#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}

pub fn probe(path: &std::path::Path) -> std::io::Result<()> {
    let _ = std::fs::metadata(path)?;
    Ok(())
}

pub fn parse(payload: &[u8]) -> u32 {
    payload.len() as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_test_code() {
        let raw: [u8; 4] = [1u8, 2, 3, 4][..].try_into().unwrap();
        assert_eq!(u32::from_le_bytes(raw), 0x0403_0201);
    }
}

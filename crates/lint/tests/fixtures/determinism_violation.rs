use std::collections::HashMap;

pub fn count_distinct(keys: &[u32]) -> usize {
    let mut seen: HashMap<u32, u32> = HashMap::new();
    for &k in keys {
        *seen.entry(k).or_insert(0) += 1;
    }
    seen.len()
}

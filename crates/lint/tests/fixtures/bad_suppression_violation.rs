pub fn bump(counter: &std::sync::Mutex<u64>) -> u64 {
    // fg-lint: allow(poison-safe-locks)
    *counter.lock().unwrap_or_else(|e| e.into_inner())
}

use std::sync::Mutex;

pub fn bump(counter: &Mutex<u64>) -> u64 {
    let mut guard = counter.lock().unwrap_or_else(|e| e.into_inner());
    *guard += 1;
    *guard
}

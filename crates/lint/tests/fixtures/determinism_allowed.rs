pub fn count_distinct(keys: &[u32]) -> usize {
    let mut seen = std::collections::HashMap::new(); // fg-lint: allow(determinism): iteration order is never observed, only the final length
    for &k in keys {
        seen.insert(k, ());
    }
    seen.len()
}

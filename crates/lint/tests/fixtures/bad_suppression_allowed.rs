use std::io::Write;

pub fn farewell(stream: &mut impl Write, frame: &[u8]) {
    // fg-lint: allow(swallowed-results): best-effort farewell right before the connection closes
    let _ = stream.write_all(frame);
}

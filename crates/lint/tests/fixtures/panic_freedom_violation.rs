pub fn parse(payload: &[u8]) -> u32 {
    let raw: [u8; 4] = payload[..4].try_into().unwrap();
    u32::from_le_bytes(raw)
}

//! A crate root that forgot the workspace safety pledge.

pub fn answer() -> u32 {
    42
}

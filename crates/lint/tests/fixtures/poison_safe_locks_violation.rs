use std::sync::Mutex;

pub fn bump(counter: &Mutex<u64>) -> u64 {
    let mut guard = counter.lock().unwrap();
    *guard += 1;
    *guard
}

pub fn sweep(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
}

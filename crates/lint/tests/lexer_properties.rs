//! The lexer soundness property: rule patterns embedded inside string
//! literals or comments never survive into the blanked `code` the rule
//! engine matches against, and the same patterns written as real code
//! always do. This is the claim that makes substring rules sound.

use fg_lint::lexer::lex;
use proptest::prelude::*;

/// Every substring pattern any rule matches on.
fn all_patterns() -> Vec<&'static str> {
    fg_lint::RULES
        .iter()
        .flat_map(|r| r.patterns.iter().copied())
        .collect()
}

/// Maps a sample byte into an alphabet that cannot open or close any
/// lexer state (no quotes, slashes, backslashes, or asterisks), so the
/// noise around the embedded pattern never changes what encloses it.
fn noise(samples: &[u8]) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_ ";
    samples
        .iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()] as char)
        .collect()
}

proptest! {
    #[test]
    fn patterns_in_literals_and_comments_never_reach_code(
        pat_pick in 0usize..1024,
        ctx in 0u8..4,
        pre in prop::collection::vec(any::<u8>(), 0..12),
        post in prop::collection::vec(any::<u8>(), 0..12),
    ) {
        let patterns = all_patterns();
        let pattern = patterns[pat_pick % patterns.len()];
        let (pre, post) = (noise(&pre), noise(&post));
        let source = match ctx {
            0 => format!("fn f() {{\n    let x = 1; // {pre}{pattern}{post}\n}}\n"),
            1 => format!("fn f() {{\n    /* {pre}{pattern}{post} */ let x = 1;\n}}\n"),
            2 => format!("fn f() {{\n    let s = \"{pre}{pattern}{post}\";\n}}\n"),
            _ => format!("fn f() {{\n    let s = r#\"{pre}{pattern}{post}\"#;\n}}\n"),
        };
        let lexed = lex(&source);
        for (idx, line) in lexed.lines.iter().enumerate() {
            prop_assert!(
                !line.code.contains(pattern),
                "pattern {pattern:?} leaked into code on line {} of:\n{source}\nblanked: {:?}",
                idx + 1,
                line.code
            );
        }
    }

    #[test]
    fn patterns_in_code_always_survive(
        pat_pick in 0usize..1024,
        pre in prop::collection::vec(any::<u8>(), 0..12),
    ) {
        let patterns = all_patterns();
        let pattern = patterns[pat_pick % patterns.len()];
        let pre = noise(&pre);
        // The pattern on a genuine code line, wrapped in decoy comment
        // and string lines that also carry it.
        let source = format!(
            "// {pattern} in a comment\nfn f() {{\n    {pre}{pattern}\n    let s = \"{pattern}\";\n}}\n"
        );
        let lexed = lex(&source);
        prop_assert!(
            lexed.lines[2].code.contains(pattern),
            "pattern {pattern:?} vanished from the code line of:\n{source}\nblanked: {:?}",
            lexed.lines[2].code
        );
        prop_assert!(!lexed.lines[0].code.contains(pattern));
        prop_assert!(!lexed.lines[3].code.contains(pattern));
    }

    #[test]
    fn blanking_preserves_line_count_and_width(
        pre in prop::collection::vec(any::<u8>(), 0..24),
        mid in prop::collection::vec(any::<u8>(), 0..24),
    ) {
        let (pre, mid) = (noise(&pre), noise(&mid));
        let source = format!(
            "fn f() {{\n    let a = \"{pre}\"; // {mid}\n    let b = '{{';\n}}\n"
        );
        let lexed = lex(&source);
        let raw_lines: Vec<&str> = source.lines().collect();
        prop_assert_eq!(lexed.lines.len(), raw_lines.len() + 1); // trailing newline
        for (raw, lexed_line) in raw_lines.iter().zip(&lexed.lines) {
            prop_assert_eq!(
                raw.len(),
                lexed_line.code.len(),
                "blanking changed the byte width of {raw:?} -> {:?}",
                lexed_line.code
            );
        }
    }
}

#[test]
fn test_modules_are_attributed() {
    let source = "\
fn shipping() {
    val.unwrap();
}

#[cfg(test)]
mod tests {
    fn helper() {
        val.unwrap();
    }
}
";
    let lexed = lex(source);
    assert!(!lexed.lines[1].in_test, "shipping body marked as test");
    assert!(lexed.lines[7].in_test, "tests body not marked as test");
}

#[test]
fn item_stacks_name_enclosing_functions() {
    let source = "\
mod outer {
    fn alpha() {
        touch();
    }
    fn beta() {
        touch();
    }
}
";
    let lexed = lex(source);
    assert!(lexed.line_in_items(3, &["alpha"]));
    assert!(!lexed.line_in_items(3, &["beta"]));
    assert!(lexed.line_in_items(6, &["beta"]));
    assert!(lexed.line_in_items(6, &["outer"]));
}

#[test]
fn nested_block_comments_blank_fully() {
    let source = "fn f() {\n    /* outer /* inner.unwrap() */ still comment */ code();\n}\n";
    let lexed = lex(source);
    assert!(!lexed.lines[1].code.contains(".unwrap()"));
    assert!(lexed.lines[1].code.contains("code()"));
}

#[test]
fn lifetimes_do_not_open_char_literals() {
    let source = "fn f<'a>(x: &'a str) -> &'a str {\n    x.trim().unwrap_or(x)\n}\n";
    let lexed = lex(source);
    // If 'a were lexed as an unterminated char literal, the body would
    // be blanked away.
    assert!(lexed.lines[1].code.contains("trim()"));
}

//! True-positive / allowed-counterpart coverage for every rule: each
//! fixture is analyzed under a synthetic in-zone path and the exact
//! (rule, line) outcome is pinned. The fixtures live under
//! `tests/fixtures/` — a directory both cargo and the tree walker skip,
//! so they are never compiled and never audited as repo code.

use fg_lint::rules;
use fg_lint::{analyze_source, Report};

macro_rules! fixture {
    ($name:literal) => {
        include_str!(concat!("fixtures/", $name))
    };
}

/// The `(rule, line)` pairs of a report's unsuppressed findings.
fn firing_lines(report: &Report) -> Vec<(&'static str, usize)> {
    report.findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn panic_freedom_fires_on_unwrap_in_protocol() {
    let report = analyze_source(
        "crates/serve/src/protocol.rs",
        fixture!("panic_freedom_violation.rs"),
    );
    assert_eq!(firing_lines(&report), vec![("panic-freedom", 2)]);
    assert_eq!(report.findings[0].path, "crates/serve/src/protocol.rs");
}

#[test]
fn panic_freedom_respects_item_zones() {
    // The same unwrap in server.rs is outside the named panic-free
    // items (`parse` is not one of them) — zone scoping keeps it legal.
    let report = analyze_source(
        "crates/serve/src/server.rs",
        fixture!("panic_freedom_violation.rs"),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn panic_freedom_exempts_test_modules() {
    let report = analyze_source(
        "crates/serve/src/protocol.rs",
        fixture!("panic_freedom_allowed.rs"),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn panic_freedom_exempts_test_paths() {
    let report = analyze_source(
        "crates/serve/tests/protocol_roundtrip.rs",
        fixture!("panic_freedom_violation.rs"),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn blessed_io_fires_outside_the_wrappers() {
    let report = analyze_source(
        "crates/serve/src/persist.rs",
        fixture!("blessed_io_violation.rs"),
    );
    assert_eq!(firing_lines(&report), vec![("blessed-io", 5)]);
}

#[test]
fn blessed_io_is_silent_inside_the_wrappers() {
    // Identical raw-I/O shape, but inside fg-store's fsync-aware
    // wrapper module — the blessed path.
    let report = analyze_source(
        "crates/store/src/snapstore.rs",
        fixture!("blessed_io_allowed.rs"),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn poison_safe_locks_fires_on_lock_unwrap() {
    let report = analyze_source(
        "crates/serve/src/hub.rs",
        fixture!("poison_safe_locks_violation.rs"),
    );
    assert_eq!(firing_lines(&report), vec![("poison-safe-locks", 4)]);
}

#[test]
fn poison_safe_locks_accepts_recovery_idiom() {
    let report = analyze_source(
        "crates/serve/src/hub.rs",
        fixture!("poison_safe_locks_allowed.rs"),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn determinism_fires_on_hashmap_in_core() {
    let report = analyze_source(
        "crates/core/src/cache.rs",
        fixture!("determinism_violation.rs"),
    );
    assert_eq!(
        firing_lines(&report),
        vec![("determinism", 1), ("determinism", 4)]
    );
}

#[test]
fn determinism_is_scoped_to_digest_bearing_crates() {
    // The identical source in fg-bench is fine: only fg-core/fg-dist
    // carry the bit-determinism contract.
    let report = analyze_source(
        "crates/bench/src/cache.rs",
        fixture!("determinism_violation.rs"),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn determinism_honours_reasoned_suppressions() {
    let report = analyze_source(
        "crates/core/src/cache.rs",
        fixture!("determinism_allowed.rs"),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, "determinism");
    assert_eq!(report.suppressed[0].line, 2);
}

#[test]
fn swallowed_results_fires_on_discarded_io() {
    let report = analyze_source(
        "crates/store/src/sweep.rs",
        fixture!("swallowed_results_violation.rs"),
    );
    assert_eq!(firing_lines(&report), vec![("swallowed-results", 2)]);
}

#[test]
fn swallowed_results_exempts_error_propagation() {
    // `let _ = f()?;` discards only the Ok payload — the error still
    // propagates, so there is nothing swallowed.
    let report = analyze_source(
        "crates/store/src/sweep.rs",
        fixture!("swallowed_results_allowed.rs"),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn bad_suppression_fires_on_reasonless_allow() {
    let report = analyze_source(
        "crates/serve/src/hub.rs",
        fixture!("bad_suppression_violation.rs"),
    );
    assert_eq!(firing_lines(&report), vec![(rules::BAD_SUPPRESSION, 2)]);
    assert!(report.findings[0].message.contains("no reason"));
}

#[test]
fn bad_suppression_accepts_reasoned_used_allow() {
    let report = analyze_source(
        "crates/serve/src/hub.rs",
        fixture!("bad_suppression_allowed.rs"),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, "swallowed-results");
}

#[test]
fn forbid_unsafe_fires_on_a_bare_crate_root() {
    let report = analyze_source(
        "crates/toy/src/lib.rs",
        fixture!("forbid_unsafe_violation.rs"),
    );
    assert_eq!(firing_lines(&report), vec![(rules::FORBID_UNSAFE, 1)]);
}

#[test]
fn forbid_unsafe_accepts_a_pledged_crate_root() {
    let report = analyze_source(
        "crates/toy/src/lib.rs",
        fixture!("forbid_unsafe_allowed.rs"),
    );
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
}

#[test]
fn forbid_unsafe_cannot_be_suppressed() {
    let source = format!(
        "// fg-lint: allow(forbid-unsafe): trying to dodge the pledge\n{}",
        fixture!("forbid_unsafe_violation.rs")
    );
    let report = analyze_source("crates/toy/src/lib.rs", &source);
    let rules_fired: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    // The violation stands AND the suppression is flagged as unused.
    assert!(
        rules_fired.contains(&rules::FORBID_UNSAFE),
        "{rules_fired:?}"
    );
    assert!(
        rules_fired.contains(&rules::BAD_SUPPRESSION),
        "{rules_fired:?}"
    );
}

#[test]
fn unknown_rule_suppressions_are_findings() {
    let source = "pub fn f() {}\n// fg-lint: allow(no-such-rule): whatever\npub fn g() {}\n";
    let report = analyze_source("crates/serve/src/hub.rs", source);
    assert_eq!(firing_lines(&report), vec![(rules::BAD_SUPPRESSION, 2)]);
    assert!(report.findings[0].message.contains("no-such-rule"));
}

#[test]
fn unused_suppressions_are_findings() {
    let source =
        "// fg-lint: allow(swallowed-results): nothing here actually swallows\npub fn f() {}\n";
    let report = analyze_source("crates/serve/src/hub.rs", source);
    assert_eq!(firing_lines(&report), vec![(rules::BAD_SUPPRESSION, 1)]);
    assert!(report.findings[0].message.contains("suppresses nothing"));
}

#[test]
fn standalone_suppressions_shield_the_next_code_line() {
    let source = "pub fn sweep(path: &std::path::Path) {\n    // fg-lint: allow(swallowed-results): advisory cleanup\n\n    let _ = std::fs::remove_file(path);\n}\n";
    let report = analyze_source("crates/store/src/sweep.rs", source);
    assert!(report.is_clean(), "unexpected: {:?}", report.findings);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].line, 4);
}

#[test]
fn suppressions_only_shield_their_named_rule() {
    // An allow for the wrong rule does not shield, and is then unused.
    let source = "pub fn sweep(path: &std::path::Path) {\n    // fg-lint: allow(determinism): wrong rule entirely\n    let _ = std::fs::remove_file(path);\n}\n";
    let report = analyze_source("crates/store/src/sweep.rs", source);
    let rules_fired: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(
        rules_fired.contains(&"swallowed-results"),
        "{rules_fired:?}"
    );
    assert!(
        rules_fired.contains(&rules::BAD_SUPPRESSION),
        "{rules_fired:?}"
    );
}

#[test]
fn json_artifact_carries_per_rule_counts() {
    let report = analyze_source(
        "crates/core/src/cache.rs",
        fixture!("determinism_allowed.rs"),
    );
    let json = fg_lint::report_to_json(&report);
    assert!(json.contains("\"clean\": true"), "{json}");
    assert!(
        json.contains("\"determinism\": {\"violations\": 0, \"suppressed\": 1}"),
        "{json}"
    );
    // Every known rule appears even at zero, so artifact diffs line up.
    for rule in fg_lint::ALL_RULE_NAMES {
        assert!(
            json.contains(&format!("\"{rule}\"")),
            "{rule} missing: {json}"
        );
    }
}

//! fg-lint: repository-specific static analysis for the forgiving-graph
//! workspace.
//!
//! This crate turns the invariants this repository has paid for in past
//! bugs into machine-checked rules: panic-freedom on the serve/recovery
//! paths, fsync-aware blessed I/O wrappers, poison-safe lock recovery,
//! bit-determinism in digest-bearing crates, and no silently swallowed
//! `Result`s on durability paths. DESIGN.md §15 documents each rule and
//! the incident that motivated it.
//!
//! The analyzer is deliberately lightweight: a lexer ([`lexer`]) blanks
//! string/char-literal interiors and comments (column-preserving) and
//! attributes each line to its enclosing items and `#[cfg(test)]`
//! regions, so the rule engine ([`engine`]) can match substring patterns
//! soundly against *code only*. Exceptions are inline and audited:
//!
//! ```text
//! // fg-lint: allow(<rule>[, <rule>]): <reason>
//! ```
//!
//! A suppression must name a known rule, carry a non-empty reason, and
//! actually suppress something — anything else is itself a finding
//! (`bad-suppression`). `#![forbid(unsafe_code)]` presence on crate
//! roots is checked and cannot be suppressed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod json;
pub mod lexer;
pub mod rules;

pub use engine::{analyze_source, analyze_tree, Finding, Report};
pub use json::report_to_json;
pub use rules::{ALL_RULE_NAMES, RULES};

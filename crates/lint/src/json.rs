//! Minimal JSON emission for the findings artifact (the workspace's
//! serde is an offline stub, and the analyzer stays dependency-free).

use crate::engine::{Finding, Report};
use std::fmt::Write as _;

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn finding(f: &Finding, out: &mut String) {
    out.push_str("    {\"rule\": ");
    escape(f.rule, out);
    out.push_str(", \"path\": ");
    escape(&f.path, out);
    let _ = write!(out, ", \"line\": {}, \"message\": ", f.line);
    escape(&f.message, out);
    out.push_str(", \"snippet\": ");
    escape(&f.snippet, out);
    out.push('}');
}

fn finding_list(findings: &[Finding], out: &mut String) {
    if findings.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push_str("[\n");
    for (i, f) in findings.iter().enumerate() {
        finding(f, out);
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]");
}

/// Renders a whole report as the machine-readable findings artifact:
/// the gate bit, per-rule violation/suppression counts (every rule
/// present even at zero, so artifact diffs across PRs line up), and
/// both finding lists.
pub fn report_to_json(report: &Report) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    let _ = write!(
        out,
        "  \"tool\": \"fg-lint\",\n  \"clean\": {},\n  \"files_scanned\": {},\n",
        report.is_clean(),
        report.files_scanned
    );
    let _ = write!(
        out,
        "  \"total_violations\": {},\n  \"total_suppressed\": {},\n",
        report.findings.len(),
        report.suppressed.len()
    );
    out.push_str("  \"counts\": {\n");
    let counts = report.rule_counts();
    for (i, (rule, (violations, suppressed))) in counts.iter().enumerate() {
        out.push_str("    ");
        escape(rule, &mut out);
        let _ = write!(
            out,
            ": {{\"violations\": {violations}, \"suppressed\": {suppressed}}}"
        );
        if i + 1 < counts.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  },\n  \"findings\": ");
    finding_list(&report.findings, &mut out);
    out.push_str(",\n  \"suppressed\": ");
    finding_list(&report.suppressed, &mut out);
    out.push_str("\n}\n");
    out
}

//! The analysis engine: applies the rule catalog to lexed sources,
//! honours inline suppressions, and walks the workspace tree.

use crate::lexer::{lex, LexedFile, Suppression};
use crate::rules::{ALL_RULE_NAMES, BAD_SUPPRESSION, FORBID_UNSAFE, RULES};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation (or suppressed would-be violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: &'static str,
    /// Repo-relative, `/`-separated path.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// What happened and why it matters.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// Everything one analysis run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations — any entry here is a gate failure.
    pub findings: Vec<Finding>,
    /// Violations silenced by a valid reasoned suppression (the tally
    /// that makes exception drift visible across PRs).
    pub suppressed: Vec<Finding>,
    /// How many files the run looked at.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree passes the gate.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `(violations, suppressed)` per rule name, every known rule
    /// present even at zero so artifact diffs line up across PRs.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> =
            ALL_RULE_NAMES.iter().map(|&r| (r, (0, 0))).collect();
        for f in &self.findings {
            counts.entry(f.rule).or_default().0 += 1;
        }
        for f in &self.suppressed {
            counts.entry(f.rule).or_default().1 += 1;
        }
        counts
    }

    fn absorb(&mut self, mut other: Report) {
        self.findings.append(&mut other.findings);
        self.suppressed.append(&mut other.suppressed);
        self.files_scanned += other.files_scanned;
    }
}

/// Whether a repo-relative path is test/dev-harness code, exempt from
/// every rule: integration tests, benches, examples, and the lint
/// fixture corpus.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures")
}

/// Whether a repo-relative path is a first-party crate root that must
/// carry `#![forbid(unsafe_code)]`.
fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"))
}

/// Analyzes one source file under its repo-relative path. This is the
/// whole per-file pipeline: lex → pattern rules → suppression
/// resolution → suppression hygiene → crate-root hygiene.
pub fn analyze_source(rel_path: &str, source: &str) -> Report {
    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };
    if is_test_path(rel_path) {
        return report;
    }

    let lexed = lex(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let snippet = |line: usize| -> String {
        raw_lines
            .get(line - 1)
            .map_or(String::new(), |l| l.trim().to_string())
    };

    // Which source line each suppression shields (its own line for a
    // trailing comment, the next code-bearing line for a standalone
    // one), plus a used flag for hygiene.
    let mut shields: Vec<(usize, &Suppression, bool)> = lexed
        .suppressions
        .iter()
        .map(|s| (suppression_target(s, &lexed), s, false))
        .collect();

    let mut raw_findings: Vec<Finding> = Vec::new();
    for rule in RULES {
        if !rule.covers_path(rel_path) {
            continue;
        }
        for (idx, line) in lexed.lines.iter().enumerate() {
            let lineno = idx + 1;
            if line.in_test || !rule.covers_line(rel_path, &lexed, lineno) {
                continue;
            }
            let fired = if rule.name == crate::rules::SWALLOWED_RESULTS.name {
                swallowed_result_at(&lexed, idx)
            } else {
                rule.patterns
                    .iter()
                    .find(|p| line.code.contains(*p))
                    .map(|p| (*p).to_string())
            };
            if let Some(pattern) = fired {
                raw_findings.push(Finding {
                    rule: rule.name,
                    path: rel_path.to_string(),
                    line: lineno,
                    snippet: snippet(lineno),
                    message: format!("forbidden pattern `{pattern}` — {}", rule.why),
                });
            }
        }
    }

    // Crate-root hygiene: #![forbid(unsafe_code)] is non-negotiable and
    // cannot be suppressed away (a suppression would defeat the point),
    // but flows through the same shield machinery for uniformity.
    if is_crate_root(rel_path) && !source.contains("#![forbid(unsafe_code)]") {
        raw_findings.push(Finding {
            rule: FORBID_UNSAFE,
            path: rel_path.to_string(),
            line: 1,
            snippet: snippet(1),
            message: "crate root lacks `#![forbid(unsafe_code)]` — every first-party \
                      crate forbids unsafe so the workspace stays memory-safe by \
                      construction"
                .to_string(),
        });
    }

    // Resolve suppressions.
    for finding in raw_findings {
        let shield = shields.iter_mut().find(|(target, s, _)| {
            *target == finding.line
                && s.rules.iter().any(|r| r == finding.rule)
                && !s.reason.is_empty()
                && finding.rule != FORBID_UNSAFE
        });
        match shield {
            Some((_, _, used)) => {
                *used = true;
                report.suppressed.push(finding);
            }
            None => report.findings.push(finding),
        }
    }

    // Suppression hygiene: every allow must be well-formed (names only
    // known rules, carries a reason) and must have earned its keep.
    for (_, s, used) in &shields {
        let mut problems: Vec<String> = Vec::new();
        if s.rules.is_empty() {
            problems.push("names no rule".to_string());
        }
        for r in &s.rules {
            if !ALL_RULE_NAMES.contains(&r.as_str()) {
                problems.push(format!("references unknown rule `{r}`"));
            }
        }
        if s.reason.is_empty() {
            problems.push("carries no reason — every exception must say why".to_string());
        }
        if problems.is_empty() && !used {
            problems.push(
                "suppresses nothing on its target line — stale allows must be removed".to_string(),
            );
        }
        if !problems.is_empty() {
            report.findings.push(Finding {
                rule: BAD_SUPPRESSION,
                path: rel_path.to_string(),
                line: s.line,
                snippet: snippet(s.line),
                message: format!("malformed suppression ({})", problems.join("; ")),
            });
        }
    }

    report
        .findings
        .sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    report
}

/// The line a suppression shields: its own line when trailing, the
/// next code-bearing line otherwise.
fn suppression_target(s: &Suppression, lexed: &LexedFile) -> usize {
    if s.trailing {
        return s.line;
    }
    lexed
        .lines
        .iter()
        .enumerate()
        .skip(s.line) // 0-based index == s.line is the line after the comment
        .find(|(_, l)| !l.code.trim().is_empty())
        .map_or(s.line, |(idx, _)| idx + 1)
}

/// The swallowed-results matcher: a `let _ =` statement whose RHS makes
/// a call and does not propagate with `?`. The statement is joined
/// across up to 8 lines so multi-line builders are classified by their
/// full text; the finding lands on the `let _ =` line.
fn swallowed_result_at(lexed: &LexedFile, idx: usize) -> Option<String> {
    let code = &lexed.lines[idx].code;
    let at = code.find("let _ =")?;
    // Join the statement through its terminating `;`.
    let mut stmt = String::new();
    for line in lexed.lines.iter().skip(idx).take(8) {
        let piece = if stmt.is_empty() {
            &line.code[at..]
        } else {
            line.code.as_str()
        };
        match piece.find(';') {
            Some(end) => {
                stmt.push_str(&piece[..end]);
                break;
            }
            None => {
                stmt.push_str(piece);
                stmt.push(' ');
            }
        }
    }
    let stmt = stmt.trim_end();
    if !stmt.contains('(') {
        return None; // Not a call — a plain binding discard.
    }
    if stmt.ends_with('?') {
        return None; // `let _ = f()?;` propagates the error; only the Ok
                     // payload is discarded.
    }
    Some("let _ = <fallible call>".to_string())
}

/// Analyzes every first-party `.rs` file under `root` (the repository
/// checkout). `target/`, `vendor/`, hidden directories, and the lint
/// fixture corpus are skipped.
///
/// # Errors
///
/// An I/O failure walking or reading the tree (individual unreadable
/// files fail the run loudly rather than passing silently).
pub fn analyze_tree(root: &Path) -> Result<Report, std::io::Error> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        report.absorb(analyze_source(&rel_str, &source));
    }
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

//! A lightweight, line-oriented Rust lexer for rule matching.
//!
//! The rules in [`crate::rules`] are substring matchers, so the one job
//! of this module is to make substring matching *sound*: a pattern like
//! `.unwrap()` must never fire inside a string literal, a comment, or a
//! char literal, and must be attributable to "test code" vs "shipping
//! code" and to the enclosing item. The lexer therefore produces, per
//! source line:
//!
//! * `code` — the line with every comment and every string/char-literal
//!   *interior* blanked to spaces (delimiters kept), so byte columns in
//!   findings still point at the original source;
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` item or
//!   a `mod tests { .. }` block;
//! * `items` — the stack of named enclosing items (`mod`/`fn`/`impl`/
//!   `trait` names), innermost last, for zone scoping ("only these
//!   functions are panic-free");
//! * inline suppressions parsed out of `//` comments
//!   (see [`Suppression`]).
//!
//! This is a *lexer*, not a parser: it tracks exactly the token-level
//! state (string kinds, nested block comments, raw-string hash counts,
//! char-vs-lifetime disambiguation, brace depth) needed for the above,
//! and nothing more. The property suite
//! (`crates/lint/tests/lexer_properties.rs`) pins the soundness claim:
//! rule patterns embedded in literals or comments never survive into
//! `code`, and patterns in real code always do.

/// One inline suppression comment:
/// `// fg-lint: allow(<rule>[, <rule>...]): <reason>`.
///
/// A suppression with an empty reason, or naming no rule, is itself a
/// finding (`bad-suppression`) — every exception must say why it is one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based source line the comment sits on.
    pub line: usize,
    /// The rule names inside `allow(...)`, trimmed.
    pub rules: Vec<String>,
    /// The reason after the closing `):`, trimmed (may be empty —
    /// which `bad-suppression` then fires on).
    pub reason: String,
    /// Whether code precedes the comment on its line (a trailing
    /// suppression applies to its own line; a standalone one applies to
    /// the next code-bearing line).
    pub trailing: bool,
    /// The raw comment text, for diagnostics.
    pub raw: String,
}

/// One lexed source line.
#[derive(Debug, Clone)]
pub struct LexedLine {
    /// The source line with comments and literal interiors blanked.
    pub code: String,
    /// Inside `#[cfg(test)]` scope or a `mod tests` block.
    pub in_test: bool,
    /// Names of the enclosing `mod`/`fn`/`impl`/`trait` items,
    /// outermost first, as they stood at the *start* of the line.
    pub items: Vec<String>,
}

/// A fully lexed file: blanked lines plus every suppression comment.
#[derive(Debug, Clone)]
pub struct LexedFile {
    /// One entry per source line, in order.
    pub lines: Vec<LexedLine>,
    /// Every `fg-lint:` suppression comment found, in line order.
    pub suppressions: Vec<Suppression>,
}

impl LexedFile {
    /// Whether any enclosing item of `line` (1-based) matches one of
    /// `names` — the zone test for item-scoped rules.
    pub fn line_in_items(&self, line: usize, names: &[&str]) -> bool {
        self.lines
            .get(line - 1)
            .is_some_and(|l| l.items.iter().any(|i| names.contains(&i.as_str())))
    }
}

/// Character-level lexing state.
enum State {
    /// Plain code.
    Code,
    /// Inside `/* .. */`, tracking nesting depth.
    Block(u32),
    /// Inside a `"…"` string (escapes honoured).
    Str,
    /// Inside an `r##"…"##` raw string with this many hashes.
    RawStr(u32),
    /// Inside a `'…'` char literal (escapes honoured).
    Char,
}

/// Lexes a whole source file. Never fails: garbage input just lexes to
/// garbage lines — the rules only ever see blanked code, so the worst a
/// confused state machine can do on non-Rust input is blank too much,
/// never attribute literal text to code on a *valid* Rust file (the
/// property the lexer suite pins).
pub fn lex(source: &str) -> LexedFile {
    let (blanked, comments) = blank_literals_and_comments(source);
    let suppressions = collect_suppressions(source, &blanked, &comments);
    let lines = attribute_scopes(&blanked);
    LexedFile {
        lines,
        suppressions,
    }
}

/// A `//` comment found during blanking: which line (0-based), the byte
/// column of the `//`, and whether it is a doc comment (`///` / `//!`).
struct LineComment {
    line: usize,
    col: usize,
    doc: bool,
}

/// Pass 1: blank comment text and literal interiors, preserving line
/// structure and byte columns (every blanked char becomes one space;
/// multi-byte chars become one space per byte to keep columns stable).
/// Also records every `//` comment so suppression parsing can consider
/// exactly comment text — never string contents.
fn blank_literals_and_comments(source: &str) -> (Vec<String>, Vec<LineComment>) {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut comments = Vec::new();
    let mut line = String::new();
    let mut state = State::Code;
    let mut i = 0;

    // Pushes `n` spaces (blanked content).
    fn pad(line: &mut String, n: usize) {
        for _ in 0..n {
            line.push(' ');
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            // A line break ends a line comment implicitly; other states
            // persist across lines (block comments, raw strings, and —
            // leniently — normal strings/chars, which cannot really span
            // lines but blanking on is the safe direction).
            out.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                match b {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        // Line comment: record it, blank through end of
                        // line.
                        comments.push(LineComment {
                            line: out.len(),
                            col: line.len(),
                            doc: matches!(bytes.get(i + 2), Some(&b'/') | Some(&b'!')),
                        });
                        let end = source[i..].find('\n').map_or(bytes.len(), |off| i + off);
                        pad(&mut line, end - i);
                        i = end;
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        line.push_str("  ");
                        i += 2;
                        state = State::Block(1);
                    }
                    b'"' => {
                        line.push('"');
                        i += 1;
                        state = State::Str;
                    }
                    b'r' | b'b' | b'c' => {
                        // Possible raw/byte/C string prefix: r", br", r#…".
                        if let Some((hashes, consumed)) = raw_string_open(&bytes[i..]) {
                            pad(&mut line, consumed);
                            i += consumed;
                            state = State::RawStr(hashes);
                        } else if (b == b'b' || b == b'c')
                            && bytes.get(i + 1) == Some(&b'"')
                            && !prev_is_ident(bytes, i)
                        {
                            line.push(b as char);
                            line.push('"');
                            i += 2;
                            state = State::Str;
                        } else if b == b'b'
                            && bytes.get(i + 1) == Some(&b'\'')
                            && !prev_is_ident(bytes, i)
                        {
                            line.push('b');
                            line.push('\'');
                            i += 2;
                            state = State::Char;
                        } else {
                            line.push(b as char);
                            i += 1;
                        }
                    }
                    b'\'' => {
                        // Char literal vs lifetime. A char literal is
                        // `'x'` or `'\…'`; a lifetime is `'ident` with no
                        // closing quote right after one char.
                        if is_char_literal(bytes, i) {
                            line.push('\'');
                            i += 1;
                            state = State::Char;
                        } else {
                            line.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        // Non-ASCII code bytes (unicode identifiers) are
                        // blanked byte-for-byte: no rule pattern contains
                        // them, and one output byte per input byte keeps
                        // raw and blanked columns aligned.
                        line.push(if b.is_ascii() { b as char } else { ' ' });
                        i += 1;
                    }
                }
            }
            State::Block(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    pad(&mut line, 2);
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    pad(&mut line, 2);
                    i += 2;
                    state = State::Block(depth + 1);
                } else {
                    pad(&mut line, 1);
                    i += 1;
                }
            }
            State::Str => match b {
                b'\\' if bytes.get(i + 1) == Some(&b'\n') => {
                    // String line-continuation: consume only the
                    // backslash so the newline keeps its line break.
                    pad(&mut line, 1);
                    i += 1;
                }
                b'\\' => {
                    pad(&mut line, 2.min(bytes.len() - i));
                    i += 2.min(bytes.len() - i);
                }
                b'"' => {
                    line.push('"');
                    i += 1;
                    state = State::Code;
                }
                _ => {
                    pad(&mut line, 1);
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(&bytes[i..], hashes) {
                    pad(&mut line, 1 + hashes as usize);
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    pad(&mut line, 1);
                    i += 1;
                }
            }
            State::Char => match b {
                b'\\' if bytes.get(i + 1) == Some(&b'\n') => {
                    pad(&mut line, 1);
                    i += 1;
                }
                b'\\' => {
                    pad(&mut line, 2.min(bytes.len() - i));
                    i += 2.min(bytes.len() - i);
                }
                b'\'' => {
                    line.push('\'');
                    i += 1;
                    state = State::Code;
                }
                _ => {
                    pad(&mut line, 1);
                    i += 1;
                }
            },
        }
    }
    out.push(line);
    (out, comments)
}

/// Whether the byte before `i` continues an identifier (so `br` in
/// `abr"` is not a byte-string prefix).
fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// If `rest` opens a raw (byte/C) string — `r"`, `r#"`, `br##"`, … —
/// returns `(hash_count, bytes_consumed_through_quote)`.
fn raw_string_open(rest: &[u8]) -> Option<(u32, usize)> {
    let mut j = 0;
    if rest.first() == Some(&b'b') || rest.first() == Some(&b'c') {
        j = 1;
    }
    if rest.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while rest.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if rest.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// Whether `"` at the head of `rest` followed by `hashes` `#`s closes
/// the raw string.
fn closes_raw(rest: &[u8], hashes: u32) -> bool {
    let h = hashes as usize;
    rest.len() > h && rest[1..=h].iter().all(|&b| b == b'#')
}

/// Whether the `'` at `bytes[i]` opens a char literal (as opposed to a
/// lifetime). `'\…'` always; `'x'` when a closing quote follows one
/// char; `'a` with no closing quote is a lifetime.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

/// Pass 2: parse suppression comments out of the `//` comments the
/// blanking pass recorded. Only a plain (non-doc) line comment whose
/// text *starts* with `fg-lint:` is a marker — doc comments and string
/// literals mentioning the syntax are just prose/data, and a comment
/// that merely mentions fg-lint mid-sentence is not an allow.
fn collect_suppressions(
    source: &str,
    blanked: &[String],
    comments: &[LineComment],
) -> Vec<Suppression> {
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let Some(raw_line) = raw_lines.get(c.line) else {
            continue;
        };
        // Comment text after the `//`.
        let text = raw_line.get(c.col + 2..).unwrap_or("").trim_start();
        let Some(body) = text.strip_prefix("fg-lint:") else {
            continue;
        };
        let body = body.trim_start();
        let blank = &blanked[c.line];
        let Some(args) = body.strip_prefix("allow") else {
            // An fg-lint: marker that is not an allow is malformed;
            // surface it so typos cannot silently disable nothing.
            out.push(Suppression {
                line: c.line + 1,
                rules: Vec::new(),
                reason: String::new(),
                trailing: line_has_code(blank, c.col),
                raw: raw_line.trim().to_string(),
            });
            continue;
        };
        let args = args.trim_start();
        let (rules, reason) = match args.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((inside, after)) => {
                let rules: Vec<String> = inside
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                let reason = after
                    .trim_start()
                    .strip_prefix(':')
                    .map_or(String::new(), |r| r.trim().to_string());
                (rules, reason)
            }
            None => (Vec::new(), String::new()),
        };
        out.push(Suppression {
            line: c.line + 1,
            rules,
            reason,
            trailing: line_has_code(blank, c.col),
            raw: raw_line.trim().to_string(),
        });
    }
    out
}

/// Whether any non-whitespace code precedes byte `before` on a blanked
/// line.
fn line_has_code(blanked: &str, before: usize) -> bool {
    blanked
        .as_bytes()
        .iter()
        .take(before)
        .any(|b| !b.is_ascii_whitespace())
}

/// Pass 3: walk the blanked lines tracking brace depth, named items,
/// and `#[cfg(test)]` / `mod tests` scopes.
fn attribute_scopes(blanked: &[String]) -> Vec<LexedLine> {
    /// One entry per open `{`.
    struct Scope {
        /// `mod`/`fn`/`impl`/`trait` name, if the brace opened an item.
        name: Option<String>,
        /// Whether this scope is test code.
        test: bool,
    }
    let mut scopes: Vec<Scope> = Vec::new();
    // Set by `#[cfg(test)]` / `mod tests` / an item keyword, consumed by
    // the next `{` (or cleared by `;`, e.g. `#[cfg(test)] use x;`).
    let mut pending_test = false;
    let mut pending_name: Option<String> = None;
    let mut out = Vec::new();

    for line in blanked {
        let items: Vec<String> = scopes.iter().filter_map(|s| s.name.clone()).collect();
        let in_test = scopes.iter().any(|s| s.test) || pending_test;
        out.push(LexedLine {
            code: line.clone(),
            in_test,
            items,
        });

        // Token scan of the blanked line.
        let mut rest = line.as_str();
        while !rest.is_empty() {
            if let Some(stripped) = rest.strip_prefix("#[") {
                // Attribute: look for cfg(test) within this attribute's
                // brackets (flat scan is enough for `#[cfg(test)]` and
                // `#[cfg(all(test, …))]`).
                if let Some(end) = stripped.find(']') {
                    if stripped[..end].contains("cfg(test")
                        || stripped[..end].contains("cfg(all(test")
                    {
                        pending_test = true;
                    }
                    rest = &stripped[end + 1..];
                    continue;
                }
                if stripped.contains("cfg(test") {
                    pending_test = true;
                }
                rest = "";
                continue;
            }
            let mut chars = rest.char_indices();
            let Some((_, c)) = chars.next() else { break };
            match c {
                '{' => {
                    let name = pending_name.take();
                    let test = pending_test || name.as_deref() == Some("tests");
                    pending_test = false;
                    scopes.push(Scope { name, test });
                    rest = &rest[1..];
                }
                '}' => {
                    scopes.pop();
                    rest = &rest[1..];
                }
                ';' => {
                    // An item ended without a body: clear pendings.
                    pending_name = None;
                    pending_test = false;
                    rest = &rest[1..];
                }
                c if c.is_alphabetic() || c == '_' => {
                    let end = rest
                        .char_indices()
                        .find(|&(_, ch)| !(ch.is_alphanumeric() || ch == '_'))
                        .map_or(rest.len(), |(j, _)| j);
                    let word = &rest[..end];
                    match word {
                        "mod" | "fn" | "impl" | "trait" => {
                            // The next identifier names the item (for
                            // `impl`, the type name — good enough for
                            // zone attribution).
                            let after = rest[end..].trim_start();
                            let name_end = after
                                .char_indices()
                                .find(|&(_, ch)| !(ch.is_alphanumeric() || ch == '_'))
                                .map_or(after.len(), |(j, _)| j);
                            if name_end > 0 {
                                pending_name = Some(after[..name_end].to_string());
                            }
                        }
                        _ => {}
                    }
                    rest = &rest[end..];
                }
                _ => {
                    rest = &rest[c.len_utf8()..];
                }
            }
        }
    }
    out
}

//! The rule catalog: each rule is a set of substring patterns, a path
//! scope, and (optionally) an item-level zone inside those paths.
//!
//! Every rule here is grounded in a bug this repository actually
//! shipped (or nearly shipped) — DESIGN.md §15 tells each story. Rules
//! match against *blanked* code (see [`crate::lexer`]), never against
//! comments or literal contents, and never against test code.

use crate::lexer::LexedFile;

/// Where a rule looks: any file whose repo-relative path starts with
/// one of `prefixes`. When `items` is non-empty the rule only fires
/// inside the named `fn`s/`mod`s of that file (zone scoping).
#[derive(Debug, Clone, Copy)]
pub struct Zone {
    /// Repo-relative path prefix, `/`-separated (e.g.
    /// `crates/serve/src/protocol.rs` or `crates/core/src/`).
    pub path: &'static str,
    /// Named items the zone is confined to; empty = the whole file.
    pub items: &'static [&'static str],
}

/// One forbidden-pattern rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule name — what `fg-lint: allow(<name>): <reason>`
    /// suppressions refer to.
    pub name: &'static str,
    /// Substring patterns that constitute a violation when they appear
    /// in blanked, non-test code inside the rule's zones.
    pub patterns: &'static [&'static str],
    /// Where the rule applies.
    pub zones: &'static [Zone],
    /// Paths inside the zones that are exempt (the blessed modules).
    pub allowed_paths: &'static [&'static str],
    /// One-line rationale, echoed into findings and `--explain`.
    pub why: &'static str,
}

/// Rule name for the suppression-hygiene meta rule (not pattern-based;
/// enforced by the engine): every `fg-lint: allow` must name at least
/// one known rule and carry a non-empty reason, and must actually
/// suppress something.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// Rule name for the crate-hygiene meta rule (not pattern-based): every
/// first-party crate root must carry `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE: &str = "forbid-unsafe";

/// The panic-free zones: protocol parsing and the per-connection serve
/// path (a panicking connection used to poison the worker queue — PR 9),
/// plus the WAL scan/recovery readers (a panic during recovery turns
/// recoverable damage into an unstartable store).
pub const PANIC_FREEDOM: Rule = Rule {
    name: "panic-freedom",
    patterns: &[
        ".unwrap()",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!(",
        "unimplemented!(",
    ],
    zones: &[
        Zone {
            path: "crates/serve/src/protocol.rs",
            items: &[],
        },
        Zone {
            path: "crates/serve/src/server.rs",
            items: &[
                "worker_loop",
                "serve_connection",
                "serve_write",
                "read_full",
                "reject_shutting_down",
                "send_op_error",
                "send_protocol_error",
            ],
        },
        Zone {
            path: "crates/store/src/wal.rs",
            items: &["scan_wal", "decode_records", "parse_record_at"],
        },
        Zone {
            path: "crates/store/src/repl.rs",
            items: &[],
        },
    ],
    allowed_paths: &[],
    why: "protocol parsing and per-connection serving must degrade to typed \
          errors, never panics: one panicking connection wedged every worker \
          (PR 9), and a panicking WAL scan makes crash damage unrecoverable",
};

/// Raw filesystem mutation belongs to the fsync-aware wrappers in
/// fg-store. PR 9 found a rename that skipped the directory fsync and
/// silently undid crash-durability; this rule makes that class of bug a
/// review-time failure forever.
pub const BLESSED_IO: Rule = Rule {
    name: "blessed-io",
    patterns: &["fs::rename", "File::create", "OpenOptions"],
    zones: &[
        Zone {
            path: "crates/",
            items: &[],
        },
        Zone {
            path: "src/",
            items: &[],
        },
    ],
    allowed_paths: &[
        // The blessed wrappers themselves: every create/rename here is
        // paired with the file + directory fsyncs durability needs.
        "crates/store/src/wal.rs",
        "crates/store/src/snapstore.rs",
    ],
    why: "durable file creation and rename must go through the fsync-aware \
          fg-store wrappers (wal/snapstore): a bare rename without the \
          directory fsync silently loses crash-durability (PR 9 bug)",
};

/// `.lock().unwrap()` in a long-lived thread turns one sibling panic
/// into a deadlocked process: the poisoned mutex wedges every worker
/// (the PR 9 fg-serve bug). Long-lived threads must recover the guard
/// (`unwrap_or_else(|e| e.into_inner())`) when the protected data has
/// no invariant a panic could tear.
pub const POISON_SAFE_LOCKS: Rule = Rule {
    name: "poison-safe-locks",
    patterns: &[
        ".lock().unwrap()",
        ".lock().expect(",
        ".read().unwrap()",
        ".read().expect(",
        ".write().unwrap()",
        ".write().expect(",
    ],
    zones: &[
        Zone {
            path: "crates/serve/src/",
            items: &[],
        },
        Zone {
            path: "crates/store/src/",
            items: &[],
        },
    ],
    allowed_paths: &[],
    why: "a poisoned lock in fg-serve/fg-store long-lived threads wedged \
          every server worker (PR 9); recover the guard with \
          unwrap_or_else(|e| e.into_inner()) and argue why the data \
          cannot be torn",
};

/// Digest-bearing crates must be bit-deterministic: every engine/dist
/// outcome digest is golden-pinned, so wall clocks and randomized
/// iteration orders in those crates are at best dead weight and at
/// worst silent digest drift.
pub const DETERMINISM: Rule = Rule {
    name: "determinism",
    patterns: &[
        "Instant::now",
        "SystemTime",
        "HashMap",
        "HashSet",
        "thread_rng",
        "random()",
    ],
    zones: &[
        Zone {
            path: "crates/core/src/",
            items: &[],
        },
        Zone {
            path: "crates/dist/src/",
            items: &[],
        },
    ],
    allowed_paths: &[],
    why: "fg-core and fg-dist produce golden-pinned outcome digests; \
          wall-clock reads and hash-randomized containers there risk \
          digest drift the differential suites can only catch after the \
          fact",
};

/// A swallowed `Result` on the durability or serving path is an
/// acknowledged-but-not-performed I/O operation. Every `let _ =` over a
/// call must either propagate (`?`), handle the error, or carry a
/// reasoned suppression saying why best-effort is correct there.
pub const SWALLOWED_RESULTS: Rule = Rule {
    name: "swallowed-results",
    // Matched specially by the engine: a `let _ =` statement whose RHS
    // is a call and which does not end in `?;` (propagation discards
    // only the Ok value, not the error).
    patterns: &["let _ ="],
    zones: &[
        Zone {
            path: "crates/store/src/",
            items: &[],
        },
        Zone {
            path: "crates/serve/src/",
            items: &[],
        },
    ],
    allowed_paths: &[],
    why: "a discarded Result in fg-store/fg-serve is I/O that may have \
          silently failed after being acknowledged; swallow only with a \
          written reason",
};

/// Every pattern rule, in reporting order.
pub const RULES: &[&Rule] = &[
    &PANIC_FREEDOM,
    &BLESSED_IO,
    &POISON_SAFE_LOCKS,
    &DETERMINISM,
    &SWALLOWED_RESULTS,
];

/// Every rule name a suppression may legally reference.
pub const ALL_RULE_NAMES: &[&str] = &[
    PANIC_FREEDOM.name,
    BLESSED_IO.name,
    POISON_SAFE_LOCKS.name,
    DETERMINISM.name,
    SWALLOWED_RESULTS.name,
    FORBID_UNSAFE,
    BAD_SUPPRESSION,
];

impl Rule {
    /// Whether `rel_path` (repo-relative, `/`-separated) falls inside
    /// this rule's zones and outside its blessed paths.
    pub fn covers_path(&self, rel_path: &str) -> bool {
        if self.allowed_paths.iter().any(|p| rel_path.starts_with(p)) {
            return false;
        }
        self.zones.iter().any(|z| rel_path.starts_with(z.path))
    }

    /// Whether line `line` (1-based) of `file` at `rel_path` is inside
    /// an item-scoped zone (or the zone is whole-file).
    pub fn covers_line(&self, rel_path: &str, file: &LexedFile, line: usize) -> bool {
        self.zones
            .iter()
            .filter(|z| rel_path.starts_with(z.path))
            .any(|z| z.items.is_empty() || file.line_in_items(line, z.items))
    }
}

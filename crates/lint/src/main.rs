//! The `fg-lint` binary: walks the workspace, applies the rule catalog,
//! prints findings, and exits non-zero when the tree is dirty.
//!
//! ```text
//! fg-lint [--root DIR] [--json PATH] [--quiet]
//! ```
//!
//! `--json PATH` writes the machine-readable findings artifact (per-rule
//! violation/suppression counts plus every finding) whether or not the
//! tree is clean, so CI can always upload it.

#![forbid(unsafe_code)]

use fg_lint::{analyze_tree, report_to_json};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root requires a directory".to_string())?,
                );
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--json requires a path".to_string())?,
                ));
            }
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                println!("usage: fg-lint [--root DIR] [--json PATH] [--quiet]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fg-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match analyze_tree(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fg-lint: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report_to_json(&report)) {
            eprintln!("fg-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if !args.quiet {
        for finding in &report.findings {
            println!("{finding}");
        }
        let counts = report.rule_counts();
        println!(
            "fg-lint: {} file(s) scanned, {} violation(s), {} suppressed",
            report.files_scanned,
            report.findings.len(),
            report.suppressed.len()
        );
        for (rule, (violations, suppressed)) in &counts {
            if *violations > 0 || *suppressed > 0 {
                println!("  {rule}: {violations} violation(s), {suppressed} suppressed");
            }
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Property-based tests for the haft algebra (paper §4, Lemmas 1–2).

use fg_haft::{binary, ops, Haft};
use proptest::prelude::*;

proptest! {
    /// Lemma 1.3: depth of haft(l) is exactly ⌈log₂ l⌉.
    #[test]
    fn depth_is_ceil_log2(l in 1usize..5000) {
        let h = Haft::build_from(0..l);
        prop_assert_eq!(h.depth(), binary::expected_depth(l));
    }

    /// Lemma 1.2: strip yields exactly the set-bit complete trees.
    #[test]
    fn strip_matches_binary_representation(l in 1usize..2000) {
        let forest = ops::strip(Haft::build_from(0..l));
        let sizes: Vec<usize> = forest.iter().map(Haft::leaf_count).collect();
        prop_assert_eq!(sizes, binary::set_bit_sizes(l));
        for part in &forest {
            prop_assert!(part.is_complete());
            prop_assert!(part.check_invariants().is_ok());
        }
    }

    /// Figure 5: merging hafts is binary addition of their leaf counts, and
    /// the result is again a valid haft of the expected depth.
    #[test]
    fn merge_is_binary_addition(sizes in prop::collection::vec(1usize..200, 1..8)) {
        let total: usize = sizes.iter().sum();
        let merged = ops::merge(sizes.iter().map(|&s| Haft::build_from(0..s)).collect());
        prop_assert_eq!(merged.leaf_count(), total);
        prop_assert!(merged.check_invariants().is_ok());
        prop_assert_eq!(merged.depth(), binary::expected_depth(total));
        prop_assert_eq!(merged.primary_root_sizes(), binary::set_bit_sizes(total));
    }

    /// Merge must preserve the leaf payload multiset exactly.
    #[test]
    fn merge_preserves_payloads(sizes in prop::collection::vec(1usize..60, 1..6)) {
        let mut offset = 0usize;
        let mut inputs = Vec::new();
        for &s in &sizes {
            inputs.push(Haft::build_from(offset..offset + s));
            offset += s;
        }
        let merged = ops::merge(inputs);
        let mut all: Vec<usize> = merged.leaves().into_iter().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..offset).collect::<Vec<_>>());
    }

    /// Uniqueness (Lemma 1.1): any way of merging singletons produces the
    /// same shape as direct construction.
    #[test]
    fn merge_of_singleton_batches_matches_build(split in 1usize..80, rest in 0usize..80) {
        let total = split + rest;
        let merged = if rest == 0 {
            ops::merge((0..split).map(Haft::singleton).collect())
        } else {
            ops::merge_pair(
                ops::merge((0..split).map(Haft::singleton).collect()),
                ops::merge((split..total).map(Haft::singleton).collect()),
            )
        };
        let built = Haft::build_from(0..total);
        prop_assert_eq!(merged.leaf_depths(), built.leaf_depths());
    }

    /// §3 stretch ingredient: any two leaves of haft(l) are within
    /// 2·⌈log₂ l⌉ edges of each other.
    #[test]
    fn leaf_distance_bounded_by_twice_depth(
        l in 2usize..400,
        i_seed in any::<u64>(),
        j_seed in any::<u64>(),
    ) {
        let h = Haft::build_from(0..l);
        let i = (i_seed % l as u64) as usize;
        let j = (j_seed % l as u64) as usize;
        let d = h.leaf_distance(i, j);
        prop_assert!(d <= 2 * binary::expected_depth(l));
        if i != j {
            prop_assert!(d >= 2);
        }
    }

    /// Strip is idempotent on complete trees and total on hafts: stripping
    /// the merge of a stripped forest reproduces the same sizes.
    #[test]
    fn strip_merge_strip_roundtrip(l in 1usize..1000) {
        let forest = ops::strip(Haft::build_from(0..l));
        let merged = ops::merge(forest);
        let again = ops::strip(merged);
        let sizes: Vec<usize> = again.iter().map(Haft::leaf_count).collect();
        prop_assert_eq!(sizes, binary::set_bit_sizes(l));
    }
}

//! The half-full tree (haft) arena representation.
//!
//! A haft (paper §4) is a rooted binary tree in which every internal node
//! has exactly two children and the left child roots a *complete* binary
//! subtree containing at least half of the node's leaf descendants. For any
//! leaf count `l` there is exactly one haft shape, `haft(l)` (Lemma 1.1),
//! its depth is `⌈log₂ l⌉` (Lemma 1.3), and removing `popcount(l) − 1`
//! spine nodes decomposes it into complete trees matching the binary
//! representation of `l` (Lemma 1.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node inside a [`Haft`] arena.
pub type NodeIdx = usize;

/// A node of a haft: either a leaf carrying a payload or an internal node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HaftNode<L> {
    /// A leaf holding caller data (in the Forgiving Graph: a neighbour
    /// endpoint of the deleted node).
    Leaf {
        /// The caller payload.
        payload: L,
    },
    /// An internal ("helper") node with exactly two children.
    Internal {
        /// Left child — always roots a complete subtree.
        left: NodeIdx,
        /// Right child.
        right: NodeIdx,
        /// Number of leaf descendants.
        leaves: usize,
        /// Height of the subtree rooted here (leaf = 0).
        height: u32,
    },
}

impl<L> HaftNode<L> {
    /// Leaf count of the subtree rooted at this node.
    pub fn leaf_count(&self) -> usize {
        match self {
            HaftNode::Leaf { .. } => 1,
            HaftNode::Internal { leaves, .. } => *leaves,
        }
    }

    /// Height of the subtree rooted at this node (leaf = 0).
    pub fn height(&self) -> u32 {
        match self {
            HaftNode::Leaf { .. } => 0,
            HaftNode::Internal { height, .. } => *height,
        }
    }

    /// Whether the subtree rooted here is a complete binary tree.
    pub fn is_complete(&self) -> bool {
        self.leaf_count() == 1usize << self.height()
    }
}

/// An error describing a violated haft invariant, returned by
/// [`Haft::check_invariants`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HaftViolation {
    /// An internal node's cached leaf count or height disagrees with its
    /// children.
    BadCache(NodeIdx),
    /// An internal node's left child is not a complete subtree.
    LeftNotComplete(NodeIdx),
    /// An internal node's left child holds fewer than half the leaves.
    LeftTooSmall(NodeIdx),
    /// The arena contains unreachable or doubly-referenced nodes.
    BrokenArena,
}

impl fmt::Display for HaftViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HaftViolation::BadCache(i) => write!(f, "node {i} has stale leaf/height cache"),
            HaftViolation::LeftNotComplete(i) => {
                write!(f, "left child of node {i} is not a complete subtree")
            }
            HaftViolation::LeftTooSmall(i) => {
                write!(f, "left child of node {i} holds fewer than half the leaves")
            }
            HaftViolation::BrokenArena => write!(f, "arena has unreachable or shared nodes"),
        }
    }
}

impl std::error::Error for HaftViolation {}

/// A half-full tree over leaf payloads of type `L`.
///
/// Construction always yields the unique `haft(l)` shape; the merge and
/// strip operations of [`crate::ops`] preserve it.
///
/// # Examples
///
/// ```
/// use fg_haft::Haft;
///
/// let h = Haft::build_from(0..7);
/// assert_eq!(h.leaf_count(), 7);
/// assert_eq!(h.depth(), 3); // ⌈log₂ 7⌉
/// h.check_invariants()?;
/// # Ok::<(), fg_haft::HaftViolation>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Haft<L> {
    nodes: Vec<HaftNode<L>>,
    root: NodeIdx,
}

impl<L> Haft<L> {
    /// A haft with a single leaf.
    pub fn singleton(payload: L) -> Self {
        Haft {
            nodes: vec![HaftNode::Leaf { payload }],
            root: 0,
        }
    }

    /// Builds `haft(l)` over the given leaves, preserving their order
    /// left-to-right.
    ///
    /// Implements Lemma 1: write `l` in binary; build one complete tree per
    /// set bit (largest first); join them along the right spine with
    /// `popcount(l) − 1` connector nodes.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty — a haft has at least one leaf.
    pub fn build_from<I>(leaves: I) -> Self
    where
        I: IntoIterator<Item = L>,
    {
        let payloads: Vec<L> = leaves.into_iter().collect();
        assert!(!payloads.is_empty(), "a haft needs at least one leaf");
        let mut arena = Arena::default();
        let total = payloads.len();
        let mut iter = payloads.into_iter();
        // Complete trees, largest bit first.
        let mut parts: Vec<NodeIdx> = Vec::new();
        let mut bit = usize::BITS - 1 - total.leading_zeros();
        loop {
            let size = 1usize << bit;
            if total & size != 0 {
                parts.push(arena.complete(&mut iter, bit));
            }
            if bit == 0 {
                break;
            }
            bit -= 1;
        }
        // Join along the right spine, smallest pair first (right to left).
        let mut acc = parts.pop().expect("at least one set bit");
        while let Some(left) = parts.pop() {
            acc = arena.join(left, acc);
        }
        Haft {
            nodes: arena.nodes,
            root: acc,
        }
    }

    /// (Internal) assembles a haft from raw parts; used by `ops`.
    pub(crate) fn from_arena(nodes: Vec<HaftNode<L>>, root: NodeIdx) -> Self {
        Haft { nodes, root }
    }

    /// (Internal) consumes the haft, yielding its raw arena; used by `ops`.
    pub(crate) fn into_nodes(self) -> Vec<HaftNode<L>> {
        self.nodes
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes[self.root].leaf_count()
    }

    /// Depth (= height of the root; a single leaf has depth 0).
    ///
    /// Lemma 1.3 guarantees this equals `⌈log₂ leaf_count⌉`.
    pub fn depth(&self) -> u32 {
        self.nodes[self.root].height()
    }

    /// Whether the whole haft is a complete binary tree.
    pub fn is_complete(&self) -> bool {
        self.nodes[self.root].is_complete()
    }

    /// Root index into [`Haft::node`].
    pub fn root(&self) -> NodeIdx {
        self.root
    }

    /// Total number of arena nodes (leaves + internal).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Borrows a node by arena index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn node(&self, idx: NodeIdx) -> &HaftNode<L> {
        &self.nodes[idx]
    }

    /// Leaf payloads in left-to-right order.
    pub fn leaves(&self) -> Vec<&L> {
        let mut out = Vec::with_capacity(self.leaf_count());
        self.collect_leaves(self.root, &mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, idx: NodeIdx, out: &mut Vec<&'a L>) {
        match &self.nodes[idx] {
            HaftNode::Leaf { payload } => out.push(payload),
            HaftNode::Internal { left, right, .. } => {
                self.collect_leaves(*left, out);
                self.collect_leaves(*right, out);
            }
        }
    }

    /// Depth of every leaf, left-to-right.
    pub fn leaf_depths(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.leaf_count());
        self.collect_depths(self.root, 0, &mut out);
        out
    }

    fn collect_depths(&self, idx: NodeIdx, depth: u32, out: &mut Vec<u32>) {
        match &self.nodes[idx] {
            HaftNode::Leaf { .. } => out.push(depth),
            HaftNode::Internal { left, right, .. } => {
                self.collect_depths(*left, depth + 1, out);
                self.collect_depths(*right, depth + 1, out);
            }
        }
    }

    /// Tree distance (number of edges) between the `i`-th and `j`-th leaf
    /// (left-to-right positions).
    ///
    /// This is the quantity behind the paper's stretch argument: two
    /// neighbours of a deleted degree-`d` node sit at distance
    /// ≤ `2·⌈log₂ d⌉` in its reconstruction tree.
    ///
    /// # Panics
    ///
    /// Panics if either position is out of range.
    pub fn leaf_distance(&self, i: usize, j: usize) -> u32 {
        assert!(i < self.leaf_count() && j < self.leaf_count());
        if i == j {
            return 0;
        }
        // Walk down from the root; the LCA is the first node where the two
        // positions fall into different children.
        let (mut lo, mut hi) = (i.min(j), i.max(j));
        let mut idx = self.root;
        let mut dist_lo = 0;
        let mut dist_hi = 0;
        loop {
            match &self.nodes[idx] {
                HaftNode::Leaf { .. } => unreachable!("positions diverge before leaves"),
                HaftNode::Internal { left, right, .. } => {
                    let nl = self.nodes[*left].leaf_count();
                    if hi < nl {
                        idx = *left;
                    } else if lo >= nl {
                        lo -= nl;
                        hi -= nl;
                        idx = *right;
                    } else {
                        // Diverged: lo in left subtree, hi in right subtree.
                        dist_lo += 1 + self.leaf_depth_in(*left, lo);
                        dist_hi += 1 + self.leaf_depth_in(*right, hi - nl);
                        return dist_lo + dist_hi;
                    }
                }
            }
        }
    }

    fn leaf_depth_in(&self, mut idx: NodeIdx, mut pos: usize) -> u32 {
        let mut depth = 0;
        loop {
            match &self.nodes[idx] {
                HaftNode::Leaf { .. } => return depth,
                HaftNode::Internal { left, right, .. } => {
                    let nl = self.nodes[*left].leaf_count();
                    if pos < nl {
                        idx = *left;
                    } else {
                        pos -= nl;
                        idx = *right;
                    }
                    depth += 1;
                }
            }
        }
    }

    /// Sizes (leaf counts) of the maximal complete subtrees hanging off the
    /// right spine — the forest [`crate::ops::strip`] would return —
    /// in descending order. Equals the powers of two of `leaf_count()`'s
    /// set bits (Lemma 1.2).
    pub fn primary_root_sizes(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut idx = self.root;
        loop {
            if self.nodes[idx].is_complete() {
                out.push(self.nodes[idx].leaf_count());
                return out;
            }
            match &self.nodes[idx] {
                HaftNode::Internal { left, right, .. } => {
                    out.push(self.nodes[*left].leaf_count());
                    idx = *right;
                }
                HaftNode::Leaf { .. } => unreachable!("leaves are complete"),
            }
        }
    }

    /// Verifies every haft invariant over the whole arena.
    ///
    /// # Errors
    ///
    /// Returns the first [`HaftViolation`] found.
    pub fn check_invariants(&self) -> Result<(), HaftViolation> {
        // Reachability / single-ownership.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        let mut reachable = 0usize;
        while let Some(idx) = stack.pop() {
            if seen[idx] {
                return Err(HaftViolation::BrokenArena);
            }
            seen[idx] = true;
            reachable += 1;
            if let HaftNode::Internal { left, right, .. } = &self.nodes[idx] {
                stack.push(*left);
                stack.push(*right);
            }
        }
        // Unreachable garbage is allowed (ops may leave stripped connectors
        // behind) as long as the reachable part is a tree.
        let _ = reachable;
        for (idx, node) in self.nodes.iter().enumerate() {
            if !seen[idx] {
                continue;
            }
            if let HaftNode::Internal {
                left,
                right,
                leaves,
                height,
            } = node
            {
                let (ln, rn) = (&self.nodes[*left], &self.nodes[*right]);
                if *leaves != ln.leaf_count() + rn.leaf_count()
                    || *height != 1 + ln.height().max(rn.height())
                {
                    return Err(HaftViolation::BadCache(idx));
                }
                if !ln.is_complete() {
                    return Err(HaftViolation::LeftNotComplete(idx));
                }
                if 2 * ln.leaf_count() < *leaves {
                    return Err(HaftViolation::LeftTooSmall(idx));
                }
            }
        }
        Ok(())
    }
}

/// Arena builder shared by construction and ops.
#[derive(Debug)]
pub(crate) struct Arena<L> {
    pub(crate) nodes: Vec<HaftNode<L>>,
}

impl<L> Default for Arena<L> {
    fn default() -> Self {
        Arena { nodes: Vec::new() }
    }
}

impl<L> Arena<L> {
    pub(crate) fn leaf(&mut self, payload: L) -> NodeIdx {
        self.nodes.push(HaftNode::Leaf { payload });
        self.nodes.len() - 1
    }

    /// Builds a complete tree of `2^bit` leaves pulled from `iter`.
    pub(crate) fn complete<I: Iterator<Item = L>>(&mut self, iter: &mut I, bit: u32) -> NodeIdx {
        if bit == 0 {
            let payload = iter.next().expect("leaf supply exhausted");
            return self.leaf(payload);
        }
        let left = self.complete(iter, bit - 1);
        let right = self.complete(iter, bit - 1);
        self.join(left, right)
    }

    /// Joins two subtrees under a fresh internal node (caller is
    /// responsible for putting the complete/larger tree on the left).
    pub(crate) fn join(&mut self, left: NodeIdx, right: NodeIdx) -> NodeIdx {
        let leaves = self.nodes[left].leaf_count() + self.nodes[right].leaf_count();
        let height = 1 + self.nodes[left].height().max(self.nodes[right].height());
        self.nodes.push(HaftNode::Internal {
            left,
            right,
            leaves,
            height,
        });
        self.nodes.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_is_complete() {
        let h = Haft::singleton('a');
        assert_eq!(h.leaf_count(), 1);
        assert_eq!(h.depth(), 0);
        assert!(h.is_complete());
        h.check_invariants().unwrap();
    }

    #[test]
    fn build_preserves_leaf_order() {
        let h = Haft::build_from(0..11);
        let leaves: Vec<i32> = h.leaves().into_iter().copied().collect();
        assert_eq!(leaves, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn depth_is_ceil_log2() {
        for l in 1..=300usize {
            let h = Haft::build_from(0..l);
            let expect = (l as f64).log2().ceil() as u32;
            assert_eq!(h.depth(), expect, "l = {l}");
            h.check_invariants().unwrap();
        }
    }

    #[test]
    fn primary_root_sizes_match_binary_representation() {
        for l in 1..=128usize {
            let h = Haft::build_from(0..l);
            let sizes = h.primary_root_sizes();
            assert_eq!(sizes.len(), l.count_ones() as usize, "l = {l}");
            assert_eq!(sizes.iter().sum::<usize>(), l);
            // Descending powers of two.
            for w in sizes.windows(2) {
                assert!(w[0] > w[1]);
            }
            assert!(sizes.iter().all(|s| s.is_power_of_two()));
        }
    }

    #[test]
    fn seven_leaf_example_matches_figure_3a() {
        // Figure 3(a): haft(7) = complete-4 ⌢ (complete-2 ⌢ leaf).
        let h = Haft::build_from(0..7);
        assert_eq!(h.primary_root_sizes(), vec![4, 2, 1]);
        assert_eq!(h.leaf_depths(), vec![3, 3, 3, 3, 3, 3, 2]);
    }

    #[test]
    fn complete_sizes_have_no_spine() {
        for bit in 0..8u32 {
            let l = 1usize << bit;
            let h = Haft::build_from(0..l);
            assert!(h.is_complete());
            assert_eq!(h.primary_root_sizes(), vec![l]);
        }
    }

    #[test]
    fn leaf_distance_symmetric_and_bounded() {
        let h = Haft::build_from(0..13);
        let n = h.leaf_count();
        for i in 0..n {
            assert_eq!(h.leaf_distance(i, i), 0);
            for j in 0..n {
                let d = h.leaf_distance(i, j);
                assert_eq!(d, h.leaf_distance(j, i));
                assert!(d <= 2 * h.depth(), "distance exceeds 2·depth");
                if i != j {
                    assert!(d >= 2, "two distinct leaves share no edge");
                }
            }
        }
    }

    #[test]
    fn leaf_distance_on_complete_four() {
        let h = Haft::build_from(0..4);
        assert_eq!(h.leaf_distance(0, 1), 2);
        assert_eq!(h.leaf_distance(0, 3), 4);
        assert_eq!(h.leaf_distance(1, 2), 4);
    }

    #[test]
    fn violation_display_messages() {
        assert!(HaftViolation::BadCache(3).to_string().contains("stale"));
        assert!(HaftViolation::LeftNotComplete(1)
            .to_string()
            .contains("complete"));
        assert!(HaftViolation::LeftTooSmall(0).to_string().contains("half"));
        assert!(HaftViolation::BrokenArena.to_string().contains("arena"));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_build_panics() {
        let _ = Haft::build_from(std::iter::empty::<u8>());
    }
}

//! # fg-haft — half-full trees
//!
//! The balanced binary trees at the heart of the [Forgiving Graph]
//! (Hayes, Saia, Trehan; PODC 2009): every deleted node is replaced by a
//! *Reconstruction Tree*, which is a **half-full tree** (haft) over the
//! deleted node's surviving neighbours.
//!
//! A haft is a rooted binary tree in which every internal node has exactly
//! two children and the left child roots a complete subtree holding at
//! least half the leaves below that node. The crate implements the paper's
//! Section 4 in full:
//!
//! * [`Haft::build_from`] — the unique `haft(l)` (Lemma 1.1),
//! * [`Haft::depth`] — always `⌈log₂ l⌉` (Lemma 1.3),
//! * [`ops::strip`] — decomposition into `popcount(l)` complete trees
//!   (Lemma 1.2 / Lemma 2, Figure 3),
//! * [`ops::merge`] — combination isomorphic to binary addition
//!   (Figure 5), and
//! * [`binary`] — the executable haft ↔ binary-number correspondence.
//!
//! [Forgiving Graph]: https://arxiv.org/abs/0902.2501
//!
//! ## Example
//!
//! ```
//! use fg_haft::{ops, Haft};
//!
//! // 5 + 2 + 1 = 8: merging is binary addition, so the result is complete.
//! let merged = ops::merge(vec![
//!     Haft::build_from(0..5),
//!     Haft::build_from(0..2),
//!     Haft::singleton(0),
//! ]);
//! assert_eq!(merged.leaf_count(), 8);
//! assert!(merged.is_complete());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod ops;
mod tree;

pub use tree::{Haft, HaftNode, HaftViolation, NodeIdx};

//! The two haft operations of paper §4.1: **Strip** and **Merge**.
//!
//! *Strip* (§4.1.1, Lemma 2) removes the `popcount(l) − 1` connector nodes
//! along the right spine, leaving the forest of maximal complete subtrees
//! (the subtrees rooted at *primary roots*).
//!
//! *Merge* (§4.1.2, Figure 5) combines any number of hafts into one. It is
//! isomorphic to binary addition of the leaf counts: strip everything to
//! complete trees, repeatedly pair equal-sized trees (carry propagation),
//! then chain the remaining distinct-sized trees along a right spine.

use crate::tree::{Arena, Haft, HaftNode, NodeIdx};

/// Strips a haft into its forest of maximal complete subtrees, in
/// descending size order (Lemma 2). The connector ("spine") nodes are
/// discarded — in the full protocol their simulators are freed.
///
/// A complete haft strips to itself.
///
/// # Examples
///
/// ```
/// use fg_haft::{Haft, ops};
///
/// let h = Haft::build_from(0..7);
/// let forest = ops::strip(h);
/// let sizes: Vec<usize> = forest.iter().map(Haft::leaf_count).collect();
/// assert_eq!(sizes, vec![4, 2, 1]); // 7 = 0b111
/// ```
pub fn strip<L>(haft: Haft<L>) -> Vec<Haft<L>> {
    let root = haft.root();
    let mut nodes: Vec<Option<HaftNode<L>>> = haft.into_nodes().into_iter().map(Some).collect();
    let mut out = Vec::new();
    let mut idx = root;
    loop {
        let complete = nodes[idx]
            .as_ref()
            .expect("spine nodes visited once")
            .is_complete();
        if complete {
            out.push(extract(&mut nodes, idx));
            return out;
        }
        let (left, right) = match nodes[idx].take().expect("spine nodes visited once") {
            HaftNode::Internal { left, right, .. } => (left, right),
            HaftNode::Leaf { .. } => unreachable!("leaves are complete"),
        };
        out.push(extract(&mut nodes, left));
        idx = right;
    }
}

/// Moves the subtree rooted at `idx` out of `nodes` into a fresh haft.
fn extract<L>(nodes: &mut [Option<HaftNode<L>>], idx: NodeIdx) -> Haft<L> {
    let mut arena: Vec<HaftNode<L>> = Vec::new();
    let root = extract_rec(nodes, idx, &mut arena);
    Haft::from_arena(arena, root)
}

fn extract_rec<L>(
    nodes: &mut [Option<HaftNode<L>>],
    idx: NodeIdx,
    arena: &mut Vec<HaftNode<L>>,
) -> NodeIdx {
    match nodes[idx].take().expect("subtree nodes visited once") {
        HaftNode::Leaf { payload } => {
            arena.push(HaftNode::Leaf { payload });
            arena.len() - 1
        }
        HaftNode::Internal {
            left,
            right,
            leaves,
            height,
        } => {
            let l = extract_rec(nodes, left, arena);
            let r = extract_rec(nodes, right, arena);
            arena.push(HaftNode::Internal {
                left: l,
                right: r,
                leaves,
                height,
            });
            arena.len() - 1
        }
    }
}

/// Merges any number of hafts into a single haft whose leaf count is the
/// sum of the inputs' (binary addition, Figure 5).
///
/// Leaf payload order: within each complete fragment the original
/// left-to-right order is preserved; fragments are arranged by the
/// carry-propagation schedule, exactly as the paper's `ComputeHaft`
/// (Algorithm A.9) arranges primary roots.
///
/// # Panics
///
/// Panics if `hafts` is empty.
pub fn merge<L>(hafts: Vec<Haft<L>>) -> Haft<L> {
    assert!(!hafts.is_empty(), "merge needs at least one haft");
    // Step 1: strip everything to complete trees.
    let mut arena = Arena::default();
    let mut trees: Vec<(usize, NodeIdx)> = Vec::new();
    for haft in hafts {
        for part in strip(haft) {
            let size = part.leaf_count();
            let root = import(&mut arena, part);
            trees.push((size, root));
        }
    }
    let root = merge_complete_in(&mut arena, trees);
    Haft::from_arena(arena.nodes, root)
}

/// Merges a forest of complete trees (given as `(size, root)` pairs inside
/// `arena`) per Algorithm A.9 and returns the new root.
pub(crate) fn merge_complete_in<L>(
    arena: &mut Arena<L>,
    mut trees: Vec<(usize, NodeIdx)>,
) -> NodeIdx {
    // Sort ascending by size; stable so equal sizes keep input order
    // (A.9 additionally orders by node id — input order is our proxy).
    trees.sort_by_key(|&(size, _)| size);

    // Phase 1 (A.9 lines 5–19): walk the ascending list, joining the first
    // two adjacent equal-sized trees, reinserting the doubled tree at its
    // sorted position, and resuming from the merge position.
    let mut i = 0;
    while i + 1 < trees.len() {
        if trees[i].0 == trees[i + 1].0 {
            let (size, a) = trees[i];
            let (_, b) = trees[i + 1];
            let joined = arena.join(a, b);
            trees.drain(i..=i + 1);
            let doubled = size * 2;
            let pos = trees.partition_point(|&(s, _)| s <= doubled);
            trees.insert(pos, (doubled, joined));
            // Resume one step back: the doubled tree may equal its new
            // right neighbour (carry propagation).
            i = i.saturating_sub(1);
        } else {
            i += 1;
        }
    }

    // Phase 2 (A.9 lines 20–28): all sizes distinct; chain ascending,
    // each connector taking the larger tree as its left child.
    let mut iter = trees.into_iter();
    let (_, mut acc) = iter.next().expect("non-empty forest");
    for (_, bigger) in iter {
        acc = arena.join(bigger, acc);
    }
    acc
}

/// Convenience: merge exactly two hafts.
pub fn merge_pair<L>(a: Haft<L>, b: Haft<L>) -> Haft<L> {
    merge(vec![a, b])
}

/// Moves a haft's reachable nodes into `arena`, returning the new root.
fn import<L>(arena: &mut Arena<L>, haft: Haft<L>) -> NodeIdx {
    let root = haft.root();
    let mut nodes: Vec<Option<HaftNode<L>>> = haft.into_nodes().into_iter().map(Some).collect();
    import_rec(arena, &mut nodes, root)
}

fn import_rec<L>(arena: &mut Arena<L>, nodes: &mut [Option<HaftNode<L>>], idx: NodeIdx) -> NodeIdx {
    match nodes[idx].take().expect("import visits nodes once") {
        HaftNode::Leaf { payload } => arena.leaf(payload),
        HaftNode::Internal { left, right, .. } => {
            let l = import_rec(arena, nodes, left);
            let r = import_rec(arena, nodes, right);
            arena.join(l, r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_complete_returns_self() {
        let h = Haft::build_from(0..8);
        let forest = strip(h);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].leaf_count(), 8);
        forest[0].check_invariants().unwrap();
    }

    #[test]
    fn strip_matches_popcount() {
        for l in 1..=64usize {
            let forest = strip(Haft::build_from(0..l));
            assert_eq!(forest.len(), l.count_ones() as usize, "l = {l}");
            let mut total = 0;
            for part in &forest {
                assert!(part.is_complete());
                part.check_invariants().unwrap();
                total += part.leaf_count();
            }
            assert_eq!(total, l);
        }
    }

    #[test]
    fn strip_preserves_payloads() {
        let forest = strip(Haft::build_from(0..11));
        let mut all: Vec<i32> = forest
            .iter()
            .flat_map(|t| t.leaves().into_iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn merge_is_binary_addition_figure_5() {
        // Figure 5: 5 + 2 + 1 = 8 — three hafts merge into a complete tree.
        let a = Haft::build_from(0..5);
        let b = Haft::build_from(10..12);
        let c = Haft::singleton(99);
        let merged = merge(vec![a, b, c]);
        assert_eq!(merged.leaf_count(), 8);
        assert!(merged.is_complete());
        merged.check_invariants().unwrap();
    }

    #[test]
    fn merge_always_yields_valid_haft() {
        for (x, y, z) in [(1, 1, 1), (3, 5, 7), (4, 4, 4), (6, 1, 9), (16, 16, 1)] {
            let merged = merge(vec![
                Haft::build_from(0..x),
                Haft::build_from(0..y),
                Haft::build_from(0..z),
            ]);
            assert_eq!(merged.leaf_count(), x + y + z);
            merged.check_invariants().unwrap();
            let expect_depth = ((x + y + z) as f64).log2().ceil() as u32;
            assert_eq!(merged.depth(), expect_depth);
        }
    }

    #[test]
    fn merge_keeps_every_payload_exactly_once() {
        let merged = merge(vec![
            Haft::build_from(0..6),
            Haft::build_from(6..13),
            Haft::build_from(13..20),
        ]);
        let mut all: Vec<i32> = merged.leaves().into_iter().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn merge_pair_of_singletons() {
        let merged = merge_pair(Haft::singleton('x'), Haft::singleton('y'));
        assert_eq!(merged.leaf_count(), 2);
        assert!(merged.is_complete());
    }

    #[test]
    fn merge_of_singletons_equals_build_shape() {
        for l in 1..=40usize {
            let merged = merge((0..l).map(Haft::singleton).collect());
            let built = Haft::build_from(0..l);
            assert_eq!(merged.leaf_depths(), built.leaf_depths(), "l = {l}");
            merged.check_invariants().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one haft")]
    fn merge_empty_panics() {
        let _: Haft<u8> = merge(vec![]);
    }
}

//! The haft ↔ binary-number correspondence (Lemma 1.2, Figure 5).
//!
//! A haft on `l` leaves decomposes into one complete tree per set bit of
//! `l`, and merging hafts adds their leaf counts in binary. These helpers
//! make that correspondence executable so tests and the E7 experiment can
//! assert it directly.

/// The complete-tree sizes of `haft(l)` in descending order: the powers of
/// two of `l`'s set bits.
///
/// # Examples
///
/// ```
/// assert_eq!(fg_haft::binary::set_bit_sizes(13), vec![8, 4, 1]); // 0b1101
/// assert_eq!(fg_haft::binary::set_bit_sizes(1), vec![1]);
/// ```
pub fn set_bit_sizes(l: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(l.count_ones() as usize);
    let mut bit = usize::BITS;
    while bit > 0 {
        bit -= 1;
        let size = 1usize << bit;
        if l & size != 0 {
            out.push(size);
        }
    }
    out
}

/// Number of connector ("spine") nodes in `haft(l)`: `popcount(l) − 1`.
///
/// These are the nodes the Strip operation removes (Lemma 2).
///
/// # Panics
///
/// Panics if `l == 0`.
pub fn spine_len(l: usize) -> usize {
    assert!(l > 0, "a haft has at least one leaf");
    l.count_ones() as usize - 1
}

/// Number of internal (helper) nodes in any binary tree with `l` leaves in
/// which every internal node has two children: `l − 1`.
///
/// This is why the representative mechanism always finds a free simulator:
/// a reconstruction tree over `l` neighbours needs only `l − 1` helpers.
///
/// # Panics
///
/// Panics if `l == 0`.
pub fn helper_count(l: usize) -> usize {
    assert!(l > 0, "a haft has at least one leaf");
    l - 1
}

/// The depth `⌈log₂ l⌉` that Lemma 1.3 guarantees for `haft(l)`.
///
/// # Panics
///
/// Panics if `l == 0`.
pub fn expected_depth(l: usize) -> u32 {
    assert!(l > 0, "a haft has at least one leaf");
    (usize::BITS - (l - 1).leading_zeros()).min(usize::BITS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Haft;

    #[test]
    fn set_bit_sizes_examples() {
        assert_eq!(set_bit_sizes(7), vec![4, 2, 1]);
        assert_eq!(set_bit_sizes(8), vec![8]);
        assert_eq!(set_bit_sizes(12), vec![8, 4]);
    }

    #[test]
    fn expected_depth_is_ceil_log2() {
        assert_eq!(expected_depth(1), 0);
        assert_eq!(expected_depth(2), 1);
        assert_eq!(expected_depth(3), 2);
        assert_eq!(expected_depth(4), 2);
        assert_eq!(expected_depth(5), 3);
        assert_eq!(expected_depth(1024), 10);
        assert_eq!(expected_depth(1025), 11);
    }

    #[test]
    fn helpers_and_spine_count() {
        assert_eq!(helper_count(1), 0);
        assert_eq!(helper_count(9), 8);
        assert_eq!(spine_len(8), 0);
        assert_eq!(spine_len(7), 2);
    }

    #[test]
    fn consistency_with_built_hafts() {
        for l in 1..=200usize {
            let h = Haft::build_from(0..l);
            assert_eq!(h.primary_root_sizes(), set_bit_sizes(l));
            assert_eq!(h.depth(), expected_depth(l));
            // Every internal node (spine connectors included) is a helper.
            assert_eq!(h.node_count(), l + helper_count(l));
        }
    }
}

//! The content-addressed snapshot side of a store directory.
//!
//! A store directory holds:
//!
//! ```text
//! <dir>/MANIFEST             # "fgstore1 <hash:016x> <seq>"
//! <dir>/snap-<hash:016x>.bin # checkpoint bytes, named by FNV-64 content hash
//! <dir>/wal-<seq>.log        # the segment following that checkpoint
//! ```
//!
//! The manifest is the single commit point: it is replaced atomically
//! (write-temp, fsync, rename, **directory fsync**), and everything it
//! references is fsynced *before* the rename. A crash at any point
//! leaves the manifest naming a snapshot and a segment that both exist
//! and are internally complete — including across the rename itself,
//! because the parent directory is `fsync`ed after every rename and
//! segment creation (a rename that is never fsynced into its directory
//! can vanish on power loss even though both files were durable).
//! Files a crash orphaned (a snapshot or segment written but never
//! referenced) are swept opportunistically at the next checkpoint.

use crate::codec::fnv64;
use crate::durable::CHAIN_BASE;
use crate::error::{RecoveryError, StoreError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// What the manifest commits to: the checkpoint's content hash, the
/// engine epoch it captured, and the certificate chain digest of the
/// whole history up to that epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// FNV-64 content hash of the snapshot bytes (also its file name).
    pub hash: u64,
    /// Engine epoch at checkpoint time; the live segment is
    /// `wal-<seq>.log` and only holds records with greater sequence
    /// numbers.
    pub seq: u64,
    /// The chained outcome digest of every event up to `seq` (the fold
    /// of [`crate::durable::chain_fold`] from [`CHAIN_BASE`]) — what
    /// makes a recovered store resume the *same* `(epoch, digest)`
    /// certificate chain the serving layer stamps responses with.
    /// Stores written before the chain existed (format tag `fgstore1`)
    /// read back as [`CHAIN_BASE`].
    pub chain: u64,
}

/// Fsyncs a directory so renames and file creations inside it are
/// durable — on POSIX, a rename is only crash-safe once the *directory*
/// holding the new name has itself been synced.
///
/// # Errors
///
/// Any I/O failure (non-Unix targets, where directories cannot be
/// opened for syncing, are a no-op).
pub fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    #[cfg(unix)]
    fs::File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Path of the manifest file inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// Path of the snapshot named by `hash`.
pub fn snapshot_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("snap-{hash:016x}.bin"))
}

/// Path of the WAL segment following the checkpoint at `seq`.
pub fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq}.log"))
}

/// Writes `bytes` as a content-addressed snapshot file (temp + fsync +
/// rename + directory fsync) and returns its hash.
///
/// # Errors
///
/// Any I/O failure.
pub fn write_snapshot(dir: &Path, bytes: &[u8]) -> Result<u64, StoreError> {
    let hash = fnv64(bytes);
    let final_path = snapshot_path(dir, hash);
    let tmp = dir.join(format!("snap-{hash:016x}.tmp"));
    let mut file = fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, &final_path)?;
    sync_dir(dir)?;
    Ok(hash)
}

/// Atomically replaces the manifest (temp + fsync + rename + directory
/// fsync). This is the checkpoint's commit point.
///
/// # Errors
///
/// Any I/O failure.
pub fn write_manifest(dir: &Path, manifest: Manifest) -> Result<(), StoreError> {
    let tmp = dir.join("MANIFEST.tmp");
    let mut file = fs::File::create(&tmp)?;
    writeln!(
        file,
        "fgstore2 {:016x} {} {:016x}",
        manifest.hash, manifest.seq, manifest.chain
    )?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, manifest_path(dir))?;
    sync_dir(dir)?;
    Ok(())
}

/// Reads and parses the manifest.
///
/// # Errors
///
/// [`RecoveryError::MissingManifest`] if there is none,
/// [`RecoveryError::BadManifest`] if it does not parse.
pub fn read_manifest(dir: &Path) -> Result<Manifest, StoreError> {
    let path = manifest_path(dir);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(RecoveryError::MissingManifest(dir.to_path_buf()).into());
        }
        Err(e) => return Err(e.into()),
    };
    let bad = |detail: &str| {
        StoreError::from(RecoveryError::BadManifest {
            path: path.clone(),
            detail: detail.to_string(),
        })
    };
    let mut parts = text.split_whitespace();
    let tag = parts.next();
    if tag != Some("fgstore1") && tag != Some("fgstore2") {
        return Err(bad("unknown format tag"));
    }
    let hash = parts
        .next()
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| bad("unparseable snapshot hash"))?;
    let seq = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable sequence number"))?;
    // fgstore1 predates the certificate chain: those stores resume the
    // chain from its base, exactly as the serving layer did back then.
    let chain = if tag == Some("fgstore2") {
        parts
            .next()
            .and_then(|c| u64::from_str_radix(c, 16).ok())
            .ok_or_else(|| bad("unparseable chain digest"))?
    } else {
        CHAIN_BASE
    };
    if parts.next().is_some() {
        return Err(bad("trailing fields"));
    }
    Ok(Manifest { hash, seq, chain })
}

/// Loads the snapshot the manifest names and verifies its content hash.
///
/// # Errors
///
/// [`RecoveryError::SnapshotHashMismatch`] on a hash disagreement (bit
/// rot), or I/O failure (a missing file surfaces as [`StoreError::Io`]).
pub fn load_snapshot(dir: &Path, manifest: Manifest) -> Result<Vec<u8>, StoreError> {
    let path = snapshot_path(dir, manifest.hash);
    let bytes = fs::read(&path)?;
    let actual = fnv64(&bytes);
    if actual != manifest.hash {
        return Err(RecoveryError::SnapshotHashMismatch {
            path,
            expected: manifest.hash,
            actual,
        }
        .into());
    }
    Ok(bytes)
}

/// Deletes snapshot/segment files that the manifest no longer
/// references (crash orphans and superseded checkpoints). Best-effort:
/// failures are ignored — orphans are garbage, not state.
pub fn sweep_unreferenced(dir: &Path, keep: Manifest) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let keep_snap = snapshot_path(dir, keep.hash);
    let keep_wal = wal_path(dir, keep.seq);
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let sweepable = (name.starts_with("snap-") && path != keep_snap)
            || (name.starts_with("wal-") && path != keep_wal)
            || name.ends_with(".tmp");
        if sweepable {
            // fg-lint: allow(swallowed-results): orphan sweeping is advisory; a busy file is retried on the next checkpoint
            let _ = fs::remove_file(&path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fg-snapstore-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trips() {
        let dir = temp_dir("manifest");
        let m = Manifest {
            hash: 0xdead_beef_0123_4567,
            seq: 42,
            chain: 0x0123_4567_89ab_cdef,
        };
        write_manifest(&dir, m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), m);
    }

    #[test]
    fn legacy_fgstore1_manifest_reads_with_base_chain() {
        let dir = temp_dir("legacy");
        fs::write(
            manifest_path(&dir),
            "fgstore1 00000000000000ab 7\n".as_bytes(),
        )
        .unwrap();
        let m = read_manifest(&dir).unwrap();
        assert_eq!((m.hash, m.seq), (0xab, 7));
        assert_eq!(m.chain, CHAIN_BASE);
    }

    #[test]
    fn missing_manifest_is_typed() {
        let dir = temp_dir("missing");
        match read_manifest(&dir) {
            Err(StoreError::Recovery(RecoveryError::MissingManifest(_))) => {}
            other => panic!("expected MissingManifest, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_content_addressed_and_verified() {
        let dir = temp_dir("snap");
        let bytes = b"snapshot payload".to_vec();
        let hash = write_snapshot(&dir, &bytes).unwrap();
        let m = Manifest {
            hash,
            seq: 7,
            chain: CHAIN_BASE,
        };
        assert_eq!(load_snapshot(&dir, m).unwrap(), bytes);
        // Corrupt the file: the hash check must catch it.
        fs::write(snapshot_path(&dir, hash), b"snapshot pAyload").unwrap();
        match load_snapshot(&dir, m) {
            Err(StoreError::Recovery(RecoveryError::SnapshotHashMismatch { .. })) => {}
            other => panic!("expected SnapshotHashMismatch, got {other:?}"),
        }
    }

    #[test]
    fn sweep_keeps_only_referenced_files() {
        let dir = temp_dir("sweep");
        let hash = write_snapshot(&dir, b"current").unwrap();
        let old = write_snapshot(&dir, b"older").unwrap();
        fs::write(wal_path(&dir, 3), b"").unwrap();
        fs::write(wal_path(&dir, 9), b"").unwrap();
        fs::write(dir.join("snap-feed.tmp"), b"").unwrap();
        let keep = Manifest {
            hash,
            seq: 9,
            chain: CHAIN_BASE,
        };
        sweep_unreferenced(&dir, keep);
        assert!(snapshot_path(&dir, hash).exists());
        assert!(wal_path(&dir, 9).exists());
        assert!(!snapshot_path(&dir, old).exists());
        assert!(!wal_path(&dir, 3).exists());
        assert!(!dir.join("snap-feed.tmp").exists());
    }
}

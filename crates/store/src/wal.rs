//! The append-only write-ahead log: checksummed, length-prefixed event
//! records with group-commit fsync batching, and a reader that separates
//! torn tails (crash damage, safe to truncate) from mid-file corruption
//! (damage to acknowledged history, fatal).
//!
//! ## Record format
//!
//! ```text
//! [len: u32 LE][crc: u32 LE][payload]
//! payload = [seq: u64 LE][flags: u8][digest: u64 LE][event wire form]
//! ```
//!
//! * `len` is the payload length; `crc` is CRC-32 (IEEE) over the payload.
//! * `seq` is the engine's structural epoch *after* applying the event —
//!   epochs advance by exactly one per event, so sequence numbers are
//!   dense and recovery can detect gaps.
//! * `digest` is the event's structural [`fg_core::HealOutcome`] digest,
//!   captured when the event was first applied. Replay recomputes it and
//!   any difference is proof of drift (DESIGN.md §11).
//! * `flags` carries [`FLAG_COMMIT`]: set on every single-event record
//!   and on the *last* record of a batch. Replay stops at the last
//!   commit record, so a partially persisted batch is never half-applied.
//!
//! ## Segments
//!
//! A WAL file is one *segment*, named `wal-<seq>.log` where `<seq>` is
//! the sequence number of the checkpoint snapshot it follows; it only
//! ever holds records with sequence numbers `> seq`. Checkpointing
//! rotates to a fresh segment, so a checksum failure inside a segment is
//! never "before a committed checkpoint" by construction — the torn-tail
//! truncation rule can never eat checkpointed history.

use crate::codec::{crc32, decode_event, encode_event, Cursor};
use crate::error::StoreError;
use fg_core::NetworkEvent;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Set on the last record of every atomically committed group (every
/// single event, and the final record of a batch).
pub const FLAG_COMMIT: u8 = 1;

/// Smallest possible payload: seq + flags + digest + a 1-byte event tag
/// with a 4-byte id.
const MIN_PAYLOAD: usize = 8 + 1 + 8 + 5;

/// Upper bound on a sane payload; anything larger is framing garbage.
const MAX_PAYLOAD: usize = 16 << 20;

/// One durable event record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Engine epoch after applying the event.
    pub seq: u64,
    /// Record flags ([`FLAG_COMMIT`]).
    pub flags: u8,
    /// The structural digest the event produced when first applied.
    pub digest: u64,
    /// The adversarial event itself.
    pub event: NetworkEvent,
}

impl WalRecord {
    /// Whether this record closes an atomically committed group.
    pub fn is_commit(&self) -> bool {
        self.flags & FLAG_COMMIT != 0
    }

    /// The framed on-disk bytes of this record.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(MIN_PAYLOAD + 16);
        payload.extend_from_slice(&self.seq.to_le_bytes());
        payload.push(self.flags);
        payload.extend_from_slice(&self.digest.to_le_bytes());
        encode_event(&mut payload, &self.event);
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        framed
    }
}

/// Everything a sequential scan learned about one WAL segment.
#[derive(Debug)]
pub struct WalScan {
    /// Every well-formed record, in file order (committed or not).
    pub records: Vec<WalRecord>,
    /// How many leading records belong to the committed prefix (through
    /// the last record with [`FLAG_COMMIT`]). Only these may be replayed.
    pub committed: usize,
    /// Byte length of the committed prefix — where recovery truncates to.
    pub committed_len: u64,
    /// Byte offset past the last well-formed record.
    pub valid_len: u64,
    /// Whether bytes after `valid_len` exist that do not parse (a torn
    /// tail from a crash, or worse — see `resync_offset`).
    pub torn: bool,
    /// If, past the first bad byte, a later offset parses as a complete
    /// valid record, that offset. Valid data beyond damage means the
    /// damage is *inside* acknowledged history, not a tail: recovery
    /// must refuse to truncate ([`crate::RecoveryError::CorruptCommitted`]).
    pub resync_offset: Option<u64>,
}

/// Reads and classifies a whole WAL segment.
///
/// The scan walks records front to back and stops at the first framing
/// or checksum violation. It then probes the remaining bytes for any
/// offset that parses as a complete record — distinguishing a torn tail
/// (nothing valid follows; the file just ends mid-write) from mid-file
/// corruption (valid records follow the damage).
///
/// # Errors
///
/// * [`StoreError::Io`] if the file cannot be read;
/// * [`StoreError::Corrupt`] if a record passes its CRC but does not
///   decode — that is writer-side version skew, not crash damage, and
///   no truncation rule can repair it.
pub fn scan_wal(path: &Path) -> Result<WalScan, StoreError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;

    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut committed = 0usize;
    let mut committed_len = 0u64;
    let mut torn = false;
    while pos < buf.len() {
        match parse_record_at(&buf, pos) {
            Ok((record, end)) => {
                pos = end;
                records.push(record);
                if records[records.len() - 1].is_commit() {
                    committed = records.len();
                    committed_len = pos as u64;
                }
            }
            Err(ParseFailure::Damaged) => {
                torn = true;
                break;
            }
            Err(ParseFailure::Undecodable(detail)) => {
                return Err(StoreError::Corrupt {
                    path: path.to_path_buf(),
                    offset: pos as u64,
                    detail,
                });
            }
        }
    }

    let valid_len = pos as u64;
    let mut resync_offset = None;
    if torn {
        // Probe every later offset for a complete record. CRC over the
        // claimed span makes a false positive astronomically unlikely.
        for probe in pos + 1..buf.len().saturating_sub(8 + MIN_PAYLOAD - 1) {
            if parse_record_at(&buf, probe).is_ok() {
                resync_offset = Some(probe as u64);
                break;
            }
        }
    }

    Ok(WalScan {
        records,
        committed,
        committed_len,
        valid_len,
        torn,
        resync_offset,
    })
}

/// Decodes a byte range that must consist of exactly whole, valid WAL
/// records — the strict parser for *shipped* record ranges (replication),
/// where any violation is tampering or truncation in transit, never a
/// crash artifact to be truncated away.
///
/// # Errors
///
/// A human-readable description of the first violation (bad framing,
/// CRC mismatch, undecodable payload, or trailing bytes).
pub fn decode_records(buf: &[u8]) -> Result<Vec<WalRecord>, String> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        match parse_record_at(buf, pos) {
            Ok((record, end)) => {
                records.push(record);
                pos = end;
            }
            Err(ParseFailure::Damaged) => {
                return Err(format!(
                    "record framing or checksum violation at byte {pos} of a {}-byte range",
                    buf.len()
                ));
            }
            Err(ParseFailure::Undecodable(detail)) => {
                return Err(format!("record at byte {pos} does not decode: {detail}"));
            }
        }
    }
    Ok(records)
}

/// Copies up to 4 leading bytes of `src` into an array without a panic
/// path (`zip` stops at the shorter side); callers bounds-check first.
/// WAL recovery and FGR1 framing must classify damage, never panic on
/// it.
pub(crate) fn le4(src: &[u8]) -> [u8; 4] {
    let mut out = [0u8; 4];
    for (dst, byte) in out.iter_mut().zip(src) {
        *dst = *byte;
    }
    out
}

enum ParseFailure {
    /// Framing or checksum violation — crash damage or garbage.
    Damaged,
    /// CRC passed but the payload does not decode — writer bug or
    /// format-version skew; not repairable by truncation.
    Undecodable(String),
}

fn parse_record_at(buf: &[u8], pos: usize) -> Result<(WalRecord, usize), ParseFailure> {
    let header_end = pos.checked_add(8).filter(|&e| e <= buf.len());
    let Some(header_end) = header_end else {
        return Err(ParseFailure::Damaged);
    };
    let len = u32::from_le_bytes(le4(&buf[pos..pos + 4])) as usize;
    let crc = u32::from_le_bytes(le4(&buf[pos + 4..header_end]));
    if !(MIN_PAYLOAD..=MAX_PAYLOAD).contains(&len) {
        return Err(ParseFailure::Damaged);
    }
    let end = header_end.checked_add(len).filter(|&e| e <= buf.len());
    let Some(end) = end else {
        return Err(ParseFailure::Damaged);
    };
    let payload = &buf[header_end..end];
    if crc32(payload) != crc {
        return Err(ParseFailure::Damaged);
    }
    let mut cur = Cursor::new(payload);
    let record = (|| -> Result<WalRecord, String> {
        let seq = cur.u64()?;
        let flags = cur.u8()?;
        let digest = cur.u64()?;
        let event = decode_event(&mut cur)?;
        if !cur.is_done() {
            return Err("trailing bytes in payload".into());
        }
        Ok(WalRecord {
            seq,
            flags,
            digest,
            event,
        })
    })()
    .map_err(ParseFailure::Undecodable)?;
    Ok((record, end))
}

/// The fsync-batched appender.
///
/// Records are *staged* into an in-memory buffer, flushed to the file as
/// one write by [`WalWriter::commit`], and fsynced either every
/// `sync_every` committed records or on an explicit [`WalWriter::sync`].
/// Group commit trades the last `< sync_every` acknowledgements for
/// throughput; recovery still lands on a digest-certified committed
/// prefix whatever the crash point (DESIGN.md §11).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    staged: Vec<u8>,
    unsynced: usize,
    sync_every: usize,
}

impl WalWriter {
    /// Creates a fresh, empty segment (truncating any previous file at
    /// `path` — rotation owns segment naming) and fsyncs it into
    /// existence, **including the parent directory**: the file's own
    /// fsync does not make its directory entry durable, so without the
    /// directory sync the segment itself could vanish on a crash right
    /// after a checkpoint committed a manifest that names it.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    pub fn create(path: &Path, sync_every: usize) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.sync_all()?;
        if let Some(dir) = path.parent() {
            crate::snapstore::sync_dir(dir)?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            staged: Vec::new(),
            unsynced: 0,
            sync_every: sync_every.max(1),
        })
    }

    /// Opens an existing segment for appending at `committed_len`,
    /// truncating everything after it (the torn / uncommitted tail a
    /// scan refused to replay).
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    pub fn open_at(path: &Path, committed_len: u64, sync_every: usize) -> Result<Self, StoreError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(committed_len)?;
        file.sync_all()?;
        let mut writer = WalWriter {
            file,
            path: path.to_path_buf(),
            staged: Vec::new(),
            unsynced: 0,
            sync_every: sync_every.max(1),
        };
        writer.seek_end()?;
        Ok(writer)
    }

    fn seek_end(&mut self) -> Result<(), StoreError> {
        use std::io::Seek;
        self.file.seek(std::io::SeekFrom::End(0))?;
        Ok(())
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stages one record; nothing reaches the file until
    /// [`WalWriter::commit`].
    pub fn stage(&mut self, record: &WalRecord) {
        self.staged.extend_from_slice(&record.to_bytes());
        self.unsynced += 1;
    }

    /// Writes all staged records as a single append, fsyncing if the
    /// batching threshold is reached.
    ///
    /// # Errors
    ///
    /// Any I/O failure; staged bytes remain staged so the caller can
    /// retry or abort.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if !self.staged.is_empty() {
            self.file.write_all(&self.staged)?;
            self.staged.clear();
        }
        if self.unsynced >= self.sync_every {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Flushes staged records and forces an fsync regardless of the
    /// batching threshold.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if !self.staged.is_empty() {
            self.file.write_all(&self.staged)?;
            self.staged.clear();
        }
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; a crash simulation
        // (mem::forget or kill) skips this, which is the point.
        // fg-lint: allow(swallowed-results): Drop cannot propagate; callers needing certainty call sync() themselves
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::NodeId;

    fn record(seq: u64, flags: u8) -> WalRecord {
        WalRecord {
            seq,
            flags,
            digest: 0x1000 + seq,
            event: NetworkEvent::delete(NodeId::new(seq as u32)),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fg-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_scan_round_trip() {
        let path = temp_path("round-trip.log");
        let mut w = WalWriter::create(&path, 1).unwrap();
        for seq in 1..=5 {
            w.stage(&record(seq, FLAG_COMMIT));
            w.commit().unwrap();
        }
        drop(w);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.committed, 5);
        assert!(!scan.torn);
        assert_eq!(scan.committed_len, scan.valid_len);
        assert_eq!(scan.records[2], record(3, FLAG_COMMIT));
    }

    #[test]
    fn uncommitted_tail_is_excluded_from_committed_prefix() {
        let path = temp_path("uncommitted.log");
        let mut w = WalWriter::create(&path, 1).unwrap();
        w.stage(&record(1, FLAG_COMMIT));
        // A batch whose commit record never made it.
        w.stage(&record(2, 0));
        w.stage(&record(3, 0));
        w.sync().unwrap();
        drop(w);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.committed, 1);
        assert!(!scan.torn);
        assert!(scan.committed_len < scan.valid_len);
    }

    #[test]
    fn torn_tail_is_detected_without_resync() {
        let path = temp_path("torn.log");
        let mut w = WalWriter::create(&path, 1).unwrap();
        for seq in 1..=3 {
            w.stage(&record(seq, FLAG_COMMIT));
        }
        w.sync().unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.committed, 2);
        assert!(scan.torn);
        assert_eq!(scan.resync_offset, None);
    }

    #[test]
    fn mid_file_flip_resyncs_to_later_record() {
        let path = temp_path("flip.log");
        let mut w = WalWriter::create(&path, 1).unwrap();
        for seq in 1..=4 {
            w.stage(&record(seq, FLAG_COMMIT));
        }
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let record_len = bytes.len() / 4;
        // Flip a byte inside the second record's payload.
        bytes[record_len + 12] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.committed, 1);
        assert!(scan.torn);
        let resync = scan.resync_offset.expect("later records are intact");
        assert!(resync > scan.valid_len && resync < bytes.len() as u64);
    }

    #[test]
    fn open_at_truncates_the_tail() {
        let path = temp_path("reopen.log");
        let mut w = WalWriter::create(&path, 1).unwrap();
        w.stage(&record(1, FLAG_COMMIT));
        w.stage(&record(2, 0));
        w.sync().unwrap();
        drop(w);
        let scan = scan_wal(&path).unwrap();
        let mut w = WalWriter::open_at(&path, scan.committed_len, 1).unwrap();
        w.stage(&record(2, FLAG_COMMIT));
        w.sync().unwrap();
        drop(w);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.committed, 2);
        assert_eq!(scan.records[1].flags, FLAG_COMMIT);
        assert!(!scan.torn);
    }

    #[test]
    fn empty_segment_scans_clean() {
        let path = temp_path("empty.log");
        drop(WalWriter::create(&path, 8).unwrap());
        let scan = scan_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.committed, 0);
        assert!(!scan.torn);
    }
}

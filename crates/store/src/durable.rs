//! [`DurableHealer`]: crash-safe persistence for any [`Persistable`]
//! self-healer, with digest-certified recovery.
//!
//! ## Write path
//!
//! Every applied event is appended to the live WAL segment as a record
//! carrying `(seq, digest, event)` — the engine's epoch after the event
//! and the structural digest of its outcome. The digest is only known
//! *after* applying (it is a property of what the repair did), so the
//! order is apply → log → group-commit fsync → acknowledge: an operation
//! whose call has returned under `sync_every = 1` (or any completed
//! [`DurableHealer::sync`]/batch) is durable, and state is memory-only
//! until recovery, so logging after applying loses nothing a crash
//! would not lose anyway.
//!
//! ## Recovery
//!
//! [`DurableHealer::open`] = load the manifest's snapshot (content-hash
//! verified), then replay the committed WAL suffix, recomputing each
//! event's digest and comparing it to the logged one. Any disagreement
//! is typed ([`crate::RecoveryError`]) and fatal — recovery never serves
//! a state it cannot certify byte-for-byte against the acknowledged
//! history. Torn tails are truncated; damage *inside* committed history
//! (valid records beyond a bad checksum) is refused.
//!
//! ## Checkpoints
//!
//! Every `checkpoint_every` events (or on demand) the full engine state
//! is written as a content-addressed snapshot, the manifest is atomically
//! repointed, and the WAL rotates to a fresh segment — bounding both
//! recovery time and the truncation rule's blast radius (a segment never
//! contains pre-checkpoint records, so tail truncation cannot cross a
//! checkpoint).

use crate::error::{RecoveryError, StoreError};
use crate::snapstore::{
    load_snapshot, read_manifest, sweep_unreferenced, wal_path, write_manifest, write_snapshot,
    Manifest,
};
use crate::wal::{scan_wal, WalRecord, WalWriter, FLAG_COMMIT};
use fg_core::{
    BatchReport, EngineError, ForgivingGraph, HealOutcome, HealerObserver, InsertReport,
    NetworkEvent, RepairReport, ReportDigest, SelfHealer,
};
use fg_graph::{Graph, NodeId};
use std::io;
use std::path::{Path, PathBuf};

/// The certificate chain's starting value (the FNV-1a offset basis) —
/// the digest of an empty history. Matches the serving layer's
/// `BASE_DIGEST` so a durable store and a fresh in-memory publisher
/// stamp identical certificates for identical histories.
pub const CHAIN_BASE: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one event's outcome digest into the certificate chain:
/// `chain' = fnv(chain ‖ outcome_digest)`. This is the single chaining
/// rule shared by the WAL master, every replica, and the serving
/// layer's response stamps — equal committed histories produce equal
/// chains, whatever the batching.
pub fn chain_fold(chain: u64, outcome_digest: u64) -> u64 {
    ReportDigest::new().word(chain).word(outcome_digest).value()
}

/// A self-healer whose full state can round-trip through bytes — what
/// the store needs to checkpoint and recover it.
///
/// The contract is behavioural, not just structural: a restored healer
/// must replay any event sequence to the *same outcomes* (digests
/// included) as the original would have.
pub trait Persistable: SelfHealer + Sized {
    /// Serializes the healer's complete logical state deterministically
    /// (equal states must yield equal bytes — snapshots are named by
    /// content hash).
    fn snapshot_bytes(&self) -> Vec<u8>;

    /// Rebuilds a healer from [`Persistable::snapshot_bytes`] output.
    ///
    /// # Errors
    ///
    /// A human-readable description of why the bytes are not a valid
    /// state.
    fn restore(bytes: &[u8]) -> Result<Self, String>;
}

impl Persistable for ForgivingGraph {
    fn snapshot_bytes(&self) -> Vec<u8> {
        ForgivingGraph::snapshot_bytes(self)
    }

    fn restore(bytes: &[u8]) -> Result<Self, String> {
        ForgivingGraph::from_snapshot_bytes(bytes)
    }
}

/// Tuning knobs for a [`DurableHealer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Checkpoint (snapshot + WAL rotation) after this many events;
    /// `None` never checkpoints automatically.
    pub checkpoint_every: Option<u64>,
    /// Group-commit width: fsync after this many single-event appends.
    /// `1` makes every acknowledged event durable; larger values trade
    /// the tail of a crash for throughput. Batches always fsync once at
    /// the end regardless.
    pub sync_every: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            checkpoint_every: None,
            sync_every: 64,
        }
    }
}

/// What a recovery did — the numbers the `recover_trace` bench reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the snapshot recovery started from.
    pub snapshot_seq: u64,
    /// Content hash of that snapshot.
    pub snapshot_hash: u64,
    /// Committed WAL records replayed (each digest-verified).
    pub replayed: usize,
    /// Well-formed records dropped because no commit record followed
    /// them (a batch that crashed before its commit mark).
    pub dropped_uncommitted: usize,
    /// Bytes cut from the segment tail (uncommitted records + torn
    /// garbage).
    pub truncated_bytes: u64,
    /// Whether unparseable tail bytes were present.
    pub torn_tail: bool,
    /// The recovered engine's epoch.
    pub epoch: u64,
}

/// A write-ahead-logged wrapper: durability for any [`Persistable`]
/// healer behind the plain [`SelfHealer`] façade.
///
/// # Panics
///
/// The [`SelfHealer`] surface has no I/O error channel, so a *write*
/// failure of the log or an automatic checkpoint panics: continuing
/// would acknowledge events that were never made durable, which is the
/// one lie a durability layer must not tell. Recovery and explicit
/// maintenance ([`DurableHealer::open`], [`DurableHealer::checkpoint`],
/// [`DurableHealer::sync`]) return typed [`StoreError`]s instead.
///
/// # Examples
///
/// ```
/// use fg_core::{ForgivingGraph, SelfHealer};
/// use fg_graph::{generators, NodeId};
/// use fg_store::{DurableHealer, DurableOptions};
///
/// let dir = std::env::temp_dir().join(format!("fg-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let engine = ForgivingGraph::from_graph(&generators::star(6))?;
/// let mut durable = DurableHealer::create(engine, &dir, DurableOptions::default())?;
/// let _ = durable.delete(NodeId::new(0))?;
/// durable.sync()?;
/// drop(durable);
///
/// let (recovered, report) = DurableHealer::<ForgivingGraph>::open(&dir, DurableOptions::default())?;
/// assert_eq!(report.replayed, 1);
/// assert!(!recovered.is_alive(NodeId::new(0)));
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DurableHealer<H: Persistable> {
    inner: H,
    dir: PathBuf,
    wal: WalWriter,
    opts: DurableOptions,
    snapshot_seq: u64,
    since_checkpoint: u64,
    chain: u64,
}

impl<H: Persistable> DurableHealer<H> {
    /// Adopts `inner` into a fresh store directory: writes the initial
    /// checkpoint (so even an empty-WAL store recovers), the manifest,
    /// and an empty WAL segment.
    ///
    /// # Errors
    ///
    /// I/O failure, or `AlreadyExists` if `dir` already holds a store.
    pub fn create(inner: H, dir: &Path, opts: DurableOptions) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        if crate::snapstore::manifest_path(dir).exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds a store; use open()", dir.display()),
            )
            .into());
        }
        let seq = inner.epoch();
        let hash = write_snapshot(dir, &inner.snapshot_bytes())?;
        let wal = WalWriter::create(&wal_path(dir, seq), opts.sync_every)?;
        write_manifest(
            dir,
            Manifest {
                hash,
                seq,
                chain: CHAIN_BASE,
            },
        )?;
        Ok(DurableHealer {
            inner,
            dir: dir.to_path_buf(),
            wal,
            opts,
            snapshot_seq: seq,
            since_checkpoint: 0,
            chain: CHAIN_BASE,
        })
    }

    /// Recovers a store directory: snapshot + digest-verified replay of
    /// the committed WAL suffix, truncating any torn/uncommitted tail.
    ///
    /// # Errors
    ///
    /// * I/O failures ([`StoreError::Io`]);
    /// * framing damage that is not a tail ([`StoreError::Corrupt`],
    ///   [`RecoveryError::CorruptCommitted`]);
    /// * certification failures — hash, sequence, or digest disagreement
    ///   (the [`RecoveryError`] variants). Callers must treat every
    ///   error as "do not serve this state" and exit nonzero.
    pub fn open(dir: &Path, opts: DurableOptions) -> Result<(Self, RecoveryReport), StoreError> {
        let manifest = read_manifest(dir)?;
        let bytes = load_snapshot(dir, manifest)?;
        let mut inner = H::restore(&bytes).map_err(|detail| RecoveryError::SnapshotDecode {
            path: crate::snapstore::snapshot_path(dir, manifest.hash),
            detail,
        })?;
        if inner.epoch() != manifest.seq {
            return Err(RecoveryError::SnapshotDecode {
                path: crate::snapstore::snapshot_path(dir, manifest.hash),
                detail: format!(
                    "snapshot decodes to epoch {} but manifest committed {}",
                    inner.epoch(),
                    manifest.seq
                ),
            }
            .into());
        }

        let segment = wal_path(dir, manifest.seq);
        let scan = scan_wal(&segment)?;
        if let Some(resync_offset) = scan.resync_offset {
            return Err(RecoveryError::CorruptCommitted {
                path: segment,
                bad_offset: scan.valid_len,
                resync_offset,
            }
            .into());
        }

        let mut chain = manifest.chain;
        for record in &scan.records[..scan.committed] {
            let expected = inner.epoch() + 1;
            if record.seq != expected {
                return Err(RecoveryError::SequenceGap {
                    expected,
                    found: record.seq,
                }
                .into());
            }
            let outcome =
                inner
                    .apply_event(&record.event)
                    .map_err(|error| RecoveryError::Replay {
                        seq: record.seq,
                        error,
                    })?;
            let replayed = outcome.digest();
            if replayed != record.digest {
                return Err(RecoveryError::DigestMismatch {
                    seq: record.seq,
                    logged: record.digest,
                    replayed,
                }
                .into());
            }
            chain = chain_fold(chain, replayed);
        }

        let file_len = std::fs::metadata(&segment)?.len();
        let wal = WalWriter::open_at(&segment, scan.committed_len, opts.sync_every)?;
        let report = RecoveryReport {
            snapshot_seq: manifest.seq,
            snapshot_hash: manifest.hash,
            replayed: scan.committed,
            dropped_uncommitted: scan.records.len() - scan.committed,
            truncated_bytes: file_len - scan.committed_len,
            torn_tail: scan.torn,
            epoch: inner.epoch(),
        };
        Ok((
            DurableHealer {
                inner,
                dir: dir.to_path_buf(),
                wal,
                opts,
                snapshot_seq: manifest.seq,
                since_checkpoint: scan.committed as u64,
                chain,
            },
            report,
        ))
    }

    /// The wrapped healer.
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Unwraps the healer, abandoning the log (a final
    /// [`DurableHealer::sync`] runs on drop of the writer).
    pub fn into_inner(self) -> H {
        self.inner
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Epoch of the checkpoint the live segment follows.
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// The certificate chain digest over every event logged so far —
    /// the fold of [`chain_fold`] from [`CHAIN_BASE`] across the full
    /// acknowledged history. A serving layer that stamps responses with
    /// this value lets any client check a replica's answers against the
    /// master's committed history; recovery resumes it exactly (it is
    /// persisted in the manifest and re-folded over the replayed WAL
    /// suffix).
    pub fn chain_digest(&self) -> u64 {
        self.chain
    }

    /// Forces staged records to disk with an fsync.
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Takes a checkpoint now: snapshot the engine, atomically repoint
    /// the manifest, rotate the WAL, and sweep superseded files. A no-op
    /// if no event has been applied since the last checkpoint.
    ///
    /// # Errors
    ///
    /// Any I/O failure; the store stays on the previous checkpoint.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.wal.sync()?;
        let seq = self.inner.epoch();
        if seq == self.snapshot_seq {
            return Ok(());
        }
        let hash = write_snapshot(&self.dir, &self.inner.snapshot_bytes())?;
        let fresh = WalWriter::create(&wal_path(&self.dir, seq), self.opts.sync_every)?;
        let manifest = Manifest {
            hash,
            seq,
            chain: self.chain,
        };
        write_manifest(&self.dir, manifest)?;
        self.wal = fresh;
        self.snapshot_seq = seq;
        self.since_checkpoint = 0;
        sweep_unreferenced(&self.dir, manifest);
        Ok(())
    }

    /// Appends one just-applied event (single-op path: commit record,
    /// group-commit fsync policy).
    fn log_one(&mut self, event: NetworkEvent, digest: u64) {
        self.wal.stage(&WalRecord {
            seq: self.inner.epoch(),
            flags: FLAG_COMMIT,
            digest,
            event,
        });
        self.wal.commit().unwrap_or_else(Self::die);
        self.chain = chain_fold(self.chain, digest);
        self.since_checkpoint += 1;
        self.auto_checkpoint();
    }

    /// Appends a batch's records atomically: commit flag on the last
    /// record, one write, one fsync (the batch's acknowledgement point).
    fn log_batch(&mut self, mut records: Vec<WalRecord>) {
        let Some(last) = records.last_mut() else {
            return;
        };
        last.flags |= FLAG_COMMIT;
        let n = records.len() as u64;
        for record in &records {
            self.wal.stage(record);
        }
        self.wal.sync().unwrap_or_else(Self::die);
        for record in &records {
            self.chain = chain_fold(self.chain, record.digest);
        }
        self.since_checkpoint += n;
    }

    fn auto_checkpoint(&mut self) {
        if let Some(every) = self.opts.checkpoint_every {
            if self.since_checkpoint >= every {
                self.checkpoint().unwrap_or_else(Self::die);
            }
        }
    }

    fn die<T>(err: StoreError) -> T {
        panic!("durability write failed — refusing to acknowledge un-logged events: {err}");
    }

    /// Applies one record shipped from a replication master, with the
    /// same digest certification recovery uses: the record must be the
    /// next in sequence, must replay to exactly the logged digest, and
    /// is then staged into this store's own WAL **verbatim** (flags
    /// included) — so a replica's committed WAL prefix stays
    /// byte-identical to the master's and its own recovery replays the
    /// identical certified history.
    ///
    /// The record is staged, not fsynced: callers apply a shipped run of
    /// records and then call [`DurableHealer::sync`] once (the run's
    /// acknowledgement point). Automatic checkpoints only trigger at
    /// commit-flagged records, so a checkpoint never lands inside a
    /// half-shipped batch.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::SequenceGap`], [`RecoveryError::Replay`], or
    /// [`RecoveryError::DigestMismatch`] — the same refusal semantics as
    /// [`DurableHealer::open`]. A refused record is never staged, so the
    /// durable state holds only certified history; on `DigestMismatch`
    /// the in-memory engine has already applied the event (the digest is
    /// only knowable post-apply, as in recovery replay), so the healer
    /// must be discarded and reopened from its own store directory.
    /// I/O failure if an automatic checkpoint fails.
    pub fn apply_replicated(&mut self, record: &WalRecord) -> Result<HealOutcome, StoreError> {
        let expected = self.inner.epoch() + 1;
        if record.seq != expected {
            return Err(RecoveryError::SequenceGap {
                expected,
                found: record.seq,
            }
            .into());
        }
        let outcome =
            self.inner
                .apply_event(&record.event)
                .map_err(|error| RecoveryError::Replay {
                    seq: record.seq,
                    error,
                })?;
        let replayed = outcome.digest();
        if replayed != record.digest {
            return Err(RecoveryError::DigestMismatch {
                seq: record.seq,
                logged: record.digest,
                replayed,
            }
            .into());
        }
        self.wal.stage(record);
        self.chain = chain_fold(self.chain, replayed);
        self.since_checkpoint += 1;
        if record.is_commit() {
            if let Some(every) = self.opts.checkpoint_every {
                if self.since_checkpoint >= every {
                    self.checkpoint()?;
                }
            }
        }
        Ok(outcome)
    }

    fn batch_record(&self, event: &NetworkEvent, digest: u64) -> WalRecord {
        WalRecord {
            seq: self.inner.epoch(),
            flags: 0,
            digest,
            event: event.clone(),
        }
    }
}

impl<H: Persistable> SelfHealer for DurableHealer<H> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn insert(&mut self, neighbors: &[NodeId]) -> Result<InsertReport, EngineError> {
        let report = self.inner.insert(neighbors)?;
        self.log_one(
            NetworkEvent::insert(neighbors.iter().copied()),
            report.digest(),
        );
        Ok(report)
    }

    fn delete(&mut self, v: NodeId) -> Result<RepairReport, EngineError> {
        let report = self.inner.delete(v)?;
        self.log_one(NetworkEvent::delete(v), report.digest());
        Ok(report)
    }

    fn insert_observed(
        &mut self,
        neighbors: &[NodeId],
        obs: &mut dyn HealerObserver,
    ) -> Result<InsertReport, EngineError> {
        let report = self.inner.insert_observed(neighbors, obs)?;
        self.log_one(
            NetworkEvent::insert(neighbors.iter().copied()),
            report.digest(),
        );
        Ok(report)
    }

    fn delete_observed(
        &mut self,
        v: NodeId,
        obs: &mut dyn HealerObserver,
    ) -> Result<RepairReport, EngineError> {
        let report = self.inner.delete_observed(v, obs)?;
        self.log_one(NetworkEvent::delete(v), report.digest());
        Ok(report)
    }

    fn image(&self) -> &Graph {
        self.inner.image()
    }

    fn ghost(&self) -> &Graph {
        self.inner.ghost()
    }

    fn is_alive(&self, v: NodeId) -> bool {
        self.inner.is_alive(v)
    }

    fn enable_profiling(&mut self) {
        self.inner.enable_profiling();
    }

    fn phase_times(&self) -> Option<fg_core::PhaseTimes> {
        self.inner.phase_times()
    }

    fn set_compaction(&mut self, policy: Option<fg_core::CompactionPolicy>) {
        self.inner.set_compaction(policy);
    }

    fn lifetime_stats(&self) -> Option<fg_core::EngineStats> {
        self.inner.lifetime_stats()
    }

    fn apply_batch(&mut self, events: &[NetworkEvent]) -> Result<BatchReport, EngineError> {
        let mut batch = BatchReport::new();
        let mut records = Vec::with_capacity(events.len());
        for (index, event) in events.iter().enumerate() {
            match self.inner.apply_event(event) {
                Ok(outcome) => {
                    records.push(self.batch_record(event, outcome.digest()));
                    batch.push(outcome);
                }
                Err(source) => {
                    // "Earlier events stay applied" — so the applied
                    // prefix must also be durable before we report.
                    self.log_batch(records);
                    return Err(EngineError::AtEvent {
                        index,
                        event: event.to_string(),
                        source: Box::new(source),
                    });
                }
            }
        }
        self.log_batch(records);
        self.auto_checkpoint();
        Ok(batch)
    }

    fn apply_batch_observed(
        &mut self,
        events: &[NetworkEvent],
        obs: &mut dyn HealerObserver,
    ) -> Result<BatchReport, EngineError> {
        let mut batch = BatchReport::new();
        let mut records = Vec::with_capacity(events.len());
        for (index, event) in events.iter().enumerate() {
            match self.inner.apply_event_observed(event, obs) {
                Ok(outcome) => {
                    records.push(self.batch_record(event, outcome.digest()));
                    batch.push(outcome);
                }
                Err(source) => {
                    self.log_batch(records);
                    return Err(EngineError::AtEvent {
                        index,
                        event: event.to_string(),
                        source: Box::new(source),
                    });
                }
            }
        }
        self.log_batch(records);
        self.auto_checkpoint();
        obs.on_batch_end(&batch);
        Ok(batch)
    }
}

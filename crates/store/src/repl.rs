//! WAL-shipping replication: a master serves its store directory's
//! committed history over a socket; replicas ingest it into their own
//! store directories with the same digest-certified refusal semantics
//! recovery uses.
//!
//! ## The FGR1 protocol
//!
//! Same framing discipline as the WAL and the FGQ1 query protocol —
//! length-prefixed, CRC-checked, magic-tagged:
//!
//! ```text
//! frame   = [len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = "FGR1" [version: u8] [tag: u8] [body]
//! ```
//!
//! Requests (replica → master): `Fetch { have_epoch, max_bytes }` asks
//! for committed records past `have_epoch`; `FetchSnapshot` asks for the
//! manifest's checkpoint (bootstrap). Responses (master → replica):
//! `Snapshot` (checkpoint bytes + the manifest's `(seq, hash, chain)`),
//! `Records` (a run of verbatim framed WAL records ending on a commit
//! boundary), `CaughtUp`, or a typed `Error` frame.
//!
//! ## Why replica reads are certifiable
//!
//! Shipped records are the master's WAL records byte-for-byte: each
//! carries the `(seq, digest)` pair the master logged when it first
//! applied the event. [`crate::DurableHealer::apply_replicated`] refuses
//! sequence gaps and digest disagreements exactly like recovery replay,
//! and folds each accepted digest into the same certificate chain
//! ([`crate::chain_fold`] from [`crate::CHAIN_BASE`]) the master's
//! manifest commits to. A replica that reaches epoch `e` therefore holds
//! the *proven-identical* history — its `(epoch, chain)` stamp equals
//! the master's at the same epoch, with no new bookkeeping. Tampered or
//! truncated shipments fail the CRC, the strict record parser
//! ([`crate::decode_records`]), the commit-boundary rule, or the digest
//! check — they are refused with typed errors, never applied.
//!
//! The master reads committed state straight from the store directory
//! (manifest + live segment), so it never races the writer's in-memory
//! state; only records behind a [`crate::FLAG_COMMIT`] mark ever ship.

use crate::codec::{crc32, fnv64, Cursor};
use crate::durable::{DurableHealer, DurableOptions, Persistable, RecoveryReport};
use crate::error::StoreError;
use crate::snapstore::{
    load_snapshot, manifest_path, read_manifest, wal_path, write_manifest, write_snapshot, Manifest,
};
use crate::wal::{decode_records, scan_wal, WalRecord, WalWriter};
use fg_core::SelfHealer;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Protocol magic: every FGR1 payload starts with these bytes.
pub const REPL_MAGIC: [u8; 4] = *b"FGR1";

/// Protocol version.
pub const REPL_VERSION: u8 = 1;

/// Upper bound on a frame payload (snapshots dominate; anything larger
/// is garbage or abuse).
pub const MAX_REPL_PAYLOAD: usize = 64 << 20;

/// Error-frame code: the request did not parse.
pub const REPL_ERR_BAD_REQUEST: u8 = 1;

/// Error-frame code: the master's own store failed (I/O, corruption).
pub const REPL_ERR_STORE: u8 = 2;

const TAG_FETCH: u8 = 0;
const TAG_FETCH_SNAPSHOT: u8 = 1;
const TAG_SNAPSHOT: u8 = 2;
const TAG_RECORDS: u8 = 3;
const TAG_CAUGHT_UP: u8 = 4;
const TAG_ERROR: u8 = 5;

/// How often blocked master-side connection handlers check the shutdown
/// flag.
const HANDLER_POLL: Duration = Duration::from_millis(100);

/// What can go wrong on the replication path.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplError {
    /// Socket-level failure (includes a peer that vanished mid-frame).
    Io(io::Error),
    /// A frame or shipped record range that violates the protocol —
    /// bad framing, checksum mismatch, a run not ending on a commit
    /// boundary. Refused, never applied.
    Malformed(String),
    /// The local store refused the shipment (sequence gap, digest
    /// mismatch, replay failure) or failed on its own I/O.
    Store(StoreError),
    /// The peer answered with a typed error frame.
    Remote {
        /// One of the `REPL_ERR_*` codes.
        code: u8,
        /// Human-readable detail from the peer.
        detail: String,
    },
    /// The master can only offer a snapshot because the records past
    /// `have_epoch` were checkpointed away. Re-bootstrapping into a
    /// fresh directory catches up; in-place snapshot catch-up is a
    /// planned follow-up.
    Behind {
        /// The replica's epoch.
        have_epoch: u64,
        /// The master's oldest available epoch (its checkpoint).
        snapshot_seq: u64,
    },
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::Io(e) => write!(f, "replication i/o: {e}"),
            ReplError::Malformed(detail) => write!(f, "malformed replication frame: {detail}"),
            ReplError::Store(e) => write!(f, "replica store refused shipment: {e}"),
            ReplError::Remote { code, detail } => {
                write!(f, "peer error frame (code {code}): {detail}")
            }
            ReplError::Behind {
                have_epoch,
                snapshot_seq,
            } => write!(
                f,
                "replica at epoch {have_epoch} is behind the master's checkpoint \
                 {snapshot_seq}; re-bootstrap from snapshot"
            ),
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Io(e) => Some(e),
            ReplError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReplError {
    fn from(e: io::Error) -> Self {
        ReplError::Io(e)
    }
}

impl From<StoreError> for ReplError {
    fn from(e: StoreError) -> Self {
        ReplError::Store(e)
    }
}

/// Rewrites an unspecified bind address (`0.0.0.0` / `::`) to the
/// matching loopback, port preserved. Connecting a listener's own
/// `local_addr()` back to itself to wake a blocking acceptor is only
/// portable after this rewrite — a wildcard-address connect is
/// unspecified behaviour on some platforms and can hang a shutdown.
pub fn wake_addr(addr: SocketAddr) -> SocketAddr {
    let mut addr = addr;
    match addr.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => addr.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST)),
        IpAddr::V6(ip) if ip.is_unspecified() => addr.set_ip(IpAddr::V6(Ipv6Addr::LOCALHOST)),
        _ => {}
    }
    addr
}

/// Best-effort wake of a blocking acceptor at `addr`: a bounded retry
/// of short connect attempts against [`wake_addr`]`(addr)`. Returns
/// whether any connect succeeded (failure usually means the listener
/// already closed, which is also a wake).
pub fn wake_acceptor(addr: SocketAddr) -> bool {
    let target = wake_addr(addr);
    for _ in 0..20 {
        if TcpStream::connect_timeout(&target, Duration::from_millis(50)).is_ok() {
            return true;
        }
        thread::sleep(Duration::from_millis(10));
    }
    false
}

/// A replica-to-master request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplRequest {
    /// "Ship me committed records with sequence numbers past
    /// `have_epoch`, roughly `max_bytes` worth."
    Fetch {
        /// The replica's current epoch.
        have_epoch: u64,
        /// Soft cap on the shipped byte range; always rounded up to a
        /// commit boundary so progress is guaranteed.
        max_bytes: u32,
    },
    /// "Ship me your checkpoint" — the bootstrap request.
    FetchSnapshot,
}

impl ReplRequest {
    /// The request's FGR1 payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = payload_header(match self {
            ReplRequest::Fetch { .. } => TAG_FETCH,
            ReplRequest::FetchSnapshot => TAG_FETCH_SNAPSHOT,
        });
        if let ReplRequest::Fetch {
            have_epoch,
            max_bytes,
        } = self
        {
            out.extend_from_slice(&have_epoch.to_le_bytes());
            out.extend_from_slice(&max_bytes.to_le_bytes());
        }
        out
    }

    /// Parses an FGR1 payload as a request.
    ///
    /// # Errors
    ///
    /// A description of the first violation.
    pub fn parse(payload: &[u8]) -> Result<Self, String> {
        let mut cur = check_payload_header(payload)?;
        let tag = cur.u8()?;
        let req = match tag {
            TAG_FETCH => ReplRequest::Fetch {
                have_epoch: cur.u64()?,
                max_bytes: cur.u32()?,
            },
            TAG_FETCH_SNAPSHOT => ReplRequest::FetchSnapshot,
            other => return Err(format!("unknown request tag {other}")),
        };
        if !cur.is_done() {
            return Err("trailing bytes after request".to_string());
        }
        Ok(req)
    }
}

/// A master-to-replica response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplResponse {
    /// The manifest's checkpoint: everything a replica needs to create
    /// its own store directory resuming the master's certificate chain.
    Snapshot {
        /// Checkpoint epoch.
        seq: u64,
        /// Content hash of `bytes` (verified on receipt).
        hash: u64,
        /// Certificate chain digest at `seq`.
        chain: u64,
        /// The snapshot bytes.
        bytes: Vec<u8>,
    },
    /// A run of committed WAL records, verbatim in their on-disk framed
    /// form, always ending with a commit-flagged record.
    Records {
        /// How many records `raw` holds (cross-checked after parsing).
        count: u32,
        /// The framed record bytes.
        raw: Vec<u8>,
    },
    /// Nothing new past the requested epoch.
    CaughtUp {
        /// The master's committed epoch.
        epoch: u64,
    },
    /// The master could not answer.
    Error {
        /// One of the `REPL_ERR_*` codes.
        code: u8,
        /// Human-readable detail.
        detail: String,
    },
}

impl ReplResponse {
    /// The response's FGR1 payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ReplResponse::Snapshot {
                seq,
                hash,
                chain,
                bytes,
            } => {
                let mut out = payload_header(TAG_SNAPSHOT);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&hash.to_le_bytes());
                out.extend_from_slice(&chain.to_le_bytes());
                out.extend_from_slice(bytes);
                out
            }
            ReplResponse::Records { count, raw } => {
                let mut out = payload_header(TAG_RECORDS);
                out.extend_from_slice(&count.to_le_bytes());
                out.extend_from_slice(raw);
                out
            }
            ReplResponse::CaughtUp { epoch } => {
                let mut out = payload_header(TAG_CAUGHT_UP);
                out.extend_from_slice(&epoch.to_le_bytes());
                out
            }
            ReplResponse::Error { code, detail } => {
                let mut out = payload_header(TAG_ERROR);
                out.push(*code);
                out.extend_from_slice(detail.as_bytes());
                out
            }
        }
    }

    /// Parses an FGR1 payload as a response.
    ///
    /// # Errors
    ///
    /// A description of the first violation.
    pub fn parse(payload: &[u8]) -> Result<Self, String> {
        let mut cur = check_payload_header(payload)?;
        let tag = cur.u8()?;
        match tag {
            TAG_SNAPSHOT => Ok(ReplResponse::Snapshot {
                seq: cur.u64()?,
                hash: cur.u64()?,
                chain: cur.u64()?,
                bytes: cur.rest().to_vec(),
            }),
            TAG_RECORDS => Ok(ReplResponse::Records {
                count: cur.u32()?,
                raw: cur.rest().to_vec(),
            }),
            TAG_CAUGHT_UP => {
                let epoch = cur.u64()?;
                if !cur.is_done() {
                    return Err("trailing bytes after caught-up".to_string());
                }
                Ok(ReplResponse::CaughtUp { epoch })
            }
            TAG_ERROR => {
                let code = cur.u8()?;
                let detail = String::from_utf8_lossy(cur.rest()).into_owned();
                Ok(ReplResponse::Error { code, detail })
            }
            other => Err(format!("unknown response tag {other}")),
        }
    }
}

fn payload_header(tag: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&REPL_MAGIC);
    out.push(REPL_VERSION);
    out.push(tag);
    out
}

fn check_payload_header<'a>(payload: &'a [u8]) -> Result<Cursor<'a>, String> {
    let mut cur = Cursor::new(payload);
    if cur.take(4)? != REPL_MAGIC {
        return Err("bad magic".to_string());
    }
    let version = cur.u8()?;
    if version != REPL_VERSION {
        return Err(format!("unsupported version {version}"));
    }
    Ok(cur)
}

/// Writes one FGR1 frame.
///
/// # Errors
///
/// Any I/O failure.
pub fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame)
}

/// Reads one FGR1 frame, verifying length bounds and the checksum.
///
/// # Errors
///
/// [`ReplError::Io`] on socket failure (including a peer gone
/// mid-frame), [`ReplError::Malformed`] on a length or checksum
/// violation.
pub fn read_frame(stream: &mut TcpStream) -> Result<Vec<u8>, ReplError> {
    let mut header = [0u8; 8];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(crate::wal::le4(&header[..4])) as usize;
    let crc = u32::from_le_bytes(crate::wal::le4(&header[4..]));
    if !(6..=MAX_REPL_PAYLOAD).contains(&len) {
        return Err(ReplError::Malformed(format!(
            "frame payload length {len} out of bounds"
        )));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(ReplError::Malformed("frame checksum mismatch".to_string()));
    }
    Ok(payload)
}

/// The master side: serves a store directory's committed history to any
/// number of replicas over FGR1.
///
/// The listener reads the directory (manifest + live segment) per
/// request rather than sharing state with the writer, so it can run in
/// the same process as a [`DurableHealer`] or a different one; only
/// commit-delimited records ever ship.
#[derive(Debug)]
pub struct ReplListener {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
}

/// Upper bound on simultaneously served replica connections. The accept
/// loop closes connections beyond it instead of spawning without bound —
/// a stalled or malicious fleet cannot exhaust the master's threads.
pub const MAX_REPL_HANDLERS: usize = 64;

/// Releases one handler slot when its connection thread exits — by any
/// path, including a panic unwinding the handler.
struct HandlerSlot(Arc<AtomicUsize>);

impl Drop for HandlerSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl ReplListener {
    /// Binds the replication port and starts serving `dir`.
    ///
    /// # Errors
    ///
    /// Any socket failure.
    pub fn bind(addr: impl ToSocketAddrs, dir: &Path) -> Result<ReplListener, ReplError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&shutdown);
        let slots = Arc::clone(&active);
        let dir = dir.to_path_buf();
        let acceptor = thread::Builder::new()
            .name("fgr1-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &dir, &flag, &slots))
            .map_err(ReplError::Io)?;
        Ok(ReplListener {
            addr,
            shutdown,
            active,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many replica connections are being served right now — the
    /// concurrency the accept loop has fanned out, bounded by
    /// [`MAX_REPL_HANDLERS`].
    pub fn active_handlers(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains connection handlers, and joins the
    /// acceptor. Idempotent.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            wake_acceptor(self.addr);
            // fg-lint: allow(swallowed-results): stop() must be infallible and idempotent; a panicked acceptor leaves nothing to clean up
            let _ = handle.join();
        }
    }
}

impl Drop for ReplListener {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    dir: &Path,
    shutdown: &Arc<AtomicBool>,
    active: &Arc<AtomicUsize>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        handlers.retain(|h| !h.is_finished());
        // Bounded fan-out: a connection past the cap is closed, not
        // queued — the replica sees EOF and retries, and a stalled
        // fleet cannot exhaust the master's threads.
        if active.load(Ordering::SeqCst) >= MAX_REPL_HANDLERS {
            drop(stream);
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let slot = HandlerSlot(Arc::clone(active));
        let dir = dir.to_path_buf();
        let flag = Arc::clone(shutdown);
        // On spawn failure the closure (and with it the slot guard) is
        // dropped, releasing the reservation.
        if let Ok(handle) = thread::Builder::new()
            .name("fgr1-handler".to_string())
            .spawn(move || {
                let _slot = slot;
                handle_connection(stream, &dir, &flag);
            })
        {
            handlers.push(handle);
        }
    }
    for handle in handlers {
        // fg-lint: allow(swallowed-results): a panicked handler only ends its own connection; draining must reach every join
        let _ = handle.join();
    }
}

/// One replica connection: request/response until the peer hangs up or
/// shutdown is flagged. Handlers poll for the flag with short read
/// timeouts so [`ReplListener::stop`] completes promptly even with
/// idle replicas attached.
fn handle_connection(mut stream: TcpStream, dir: &Path, shutdown: &Arc<AtomicBool>) {
    if stream.set_read_timeout(Some(HANDLER_POLL)).is_err() {
        return;
    }
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Wait (bounded) for the next request's first byte without
        // consuming it — a timeout mid-frame would desynchronize, so the
        // frame itself is read under a generous timeout once data is in
        // flight.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        if stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .is_err()
        {
            return;
        }
        let reply = match read_frame(&mut stream) {
            Ok(payload) => match ReplRequest::parse(&payload) {
                Ok(request) => answer(dir, &request),
                Err(detail) => ReplResponse::Error {
                    code: REPL_ERR_BAD_REQUEST,
                    detail,
                },
            },
            Err(ReplError::Malformed(detail)) => ReplResponse::Error {
                code: REPL_ERR_BAD_REQUEST,
                detail,
            },
            Err(_) => return,
        };
        if write_frame(&mut stream, &reply.encode()).is_err() {
            return;
        }
        if stream.set_read_timeout(Some(HANDLER_POLL)).is_err() {
            return;
        }
    }
}

/// Computes the master's answer to one request from on-disk committed
/// state. Store-side failures become typed error frames; a checkpoint
/// racing the read (segment rotated between manifest and scan) is
/// retried against the fresh manifest.
fn answer(dir: &Path, request: &ReplRequest) -> ReplResponse {
    match answer_inner(dir, request) {
        Ok(response) => response,
        Err(e) => ReplResponse::Error {
            code: REPL_ERR_STORE,
            detail: e.to_string(),
        },
    }
}

fn answer_inner(dir: &Path, request: &ReplRequest) -> Result<ReplResponse, StoreError> {
    for _ in 0..3 {
        let manifest = read_manifest(dir)?;
        match request {
            ReplRequest::FetchSnapshot => {
                let bytes = load_snapshot(dir, manifest)?;
                return Ok(ReplResponse::Snapshot {
                    seq: manifest.seq,
                    hash: manifest.hash,
                    chain: manifest.chain,
                    bytes,
                });
            }
            ReplRequest::Fetch {
                have_epoch,
                max_bytes,
            } => {
                if *have_epoch < manifest.seq {
                    // The records past have_epoch were checkpointed away
                    // (old segments are swept): only a snapshot can help.
                    let bytes = load_snapshot(dir, manifest)?;
                    return Ok(ReplResponse::Snapshot {
                        seq: manifest.seq,
                        hash: manifest.hash,
                        chain: manifest.chain,
                        bytes,
                    });
                }
                let scan = match scan_wal(&wal_path(dir, manifest.seq)) {
                    Ok(scan) => scan,
                    Err(StoreError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
                        // A checkpoint rotated the segment between the
                        // manifest read and the scan; retry.
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                return Ok(ship_records(
                    &scan.records[..scan.committed],
                    manifest,
                    *have_epoch,
                    *max_bytes,
                ));
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::Interrupted,
        "segment rotated repeatedly during read; retry",
    )
    .into())
}

/// Builds a `Records` run from the committed prefix: everything past
/// `have_epoch`, capped near `max_bytes` but always ending on a commit
/// boundary (and always shipping through at least the first boundary,
/// so a batch larger than the cap still makes progress).
fn ship_records(
    committed: &[WalRecord],
    manifest: Manifest,
    have_epoch: u64,
    max_bytes: u32,
) -> ReplResponse {
    let epoch = committed.last().map_or(manifest.seq, |r| r.seq);
    let mut raw = Vec::new();
    let mut count = 0u32;
    let mut sealed_len = 0usize;
    let mut sealed_count = 0u32;
    for record in committed.iter().filter(|r| r.seq > have_epoch) {
        raw.extend_from_slice(&record.to_bytes());
        count += 1;
        if record.is_commit() {
            sealed_len = raw.len();
            sealed_count = count;
            if raw.len() >= max_bytes as usize {
                break;
            }
        }
    }
    if sealed_count == 0 {
        return ReplResponse::CaughtUp { epoch };
    }
    raw.truncate(sealed_len);
    ReplResponse::Records {
        count: sealed_count,
        raw,
    }
}

/// What one [`Replica::sync_once`] round accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplProgress {
    /// Records applied (and certified) this round.
    pub applied: usize,
    /// The replica's epoch afterwards.
    pub epoch: u64,
    /// Whether the master reported nothing further (this round shipped
    /// zero records).
    pub caught_up: bool,
}

/// The replica side: a [`DurableHealer`] fed from a master's FGR1
/// stream instead of local writes. Every shipped record passes the same
/// digest certification as recovery replay before it is applied and
/// staged — verbatim — into the replica's own WAL, so the replica's
/// store directory is independently recoverable and its committed
/// prefix is byte-identical to the master's.
#[derive(Debug)]
pub struct Replica<H: Persistable> {
    addr: SocketAddr,
    stream: TcpStream,
    healer: DurableHealer<H>,
    /// Soft per-fetch byte cap.
    pub max_fetch_bytes: u32,
}

impl<H: Persistable> Replica<H> {
    /// Connects to a master and opens (or bootstraps) the replica store
    /// at `dir`: if `dir` already holds a store it is recovered with the
    /// usual digest-certified replay (a crashed replica resumes where
    /// its own WAL committed); otherwise the master's checkpoint is
    /// fetched, hash-verified, and written out as a fresh store
    /// directory resuming the master's certificate chain.
    ///
    /// # Errors
    ///
    /// Socket failures, a snapshot whose bytes do not match its hash
    /// ([`ReplError::Malformed`]), or any store/recovery failure.
    pub fn bootstrap(
        master: impl ToSocketAddrs,
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<(Replica<H>, RecoveryReport), ReplError> {
        let addr = master
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no master address"))?;
        let mut stream = TcpStream::connect(addr)?;
        if !manifest_path(dir).exists() {
            write_frame(&mut stream, &ReplRequest::FetchSnapshot.encode())?;
            let payload = read_frame(&mut stream)?;
            match ReplResponse::parse(&payload).map_err(ReplError::Malformed)? {
                ReplResponse::Snapshot {
                    seq,
                    hash,
                    chain,
                    bytes,
                } => {
                    if fnv64(&bytes) != hash {
                        return Err(ReplError::Malformed(format!(
                            "snapshot bytes hash to {:016x}, header claims {hash:016x}",
                            fnv64(&bytes)
                        )));
                    }
                    std::fs::create_dir_all(dir).map_err(ReplError::Io)?;
                    write_snapshot(dir, &bytes)?;
                    drop(WalWriter::create(&wal_path(dir, seq), 1)?);
                    write_manifest(dir, Manifest { hash, seq, chain })?;
                }
                ReplResponse::Error { code, detail } => {
                    return Err(ReplError::Remote { code, detail });
                }
                other => {
                    return Err(ReplError::Malformed(format!(
                        "expected a snapshot response, got {other:?}"
                    )));
                }
            }
        }
        let (healer, report) = DurableHealer::open(dir, opts)?;
        Ok((
            Replica {
                addr,
                stream,
                healer,
                max_fetch_bytes: 1 << 20,
            },
            report,
        ))
    }

    /// The replica's current epoch.
    pub fn epoch(&self) -> u64 {
        self.healer.epoch()
    }

    /// The replica's certificate chain digest — equal to the master's
    /// at the same epoch, by construction.
    pub fn chain_digest(&self) -> u64 {
        self.healer.chain_digest()
    }

    /// The underlying durable healer (for serving reads).
    pub fn healer(&self) -> &DurableHealer<H> {
        &self.healer
    }

    /// Unwraps the healer, dropping the connection.
    pub fn into_healer(self) -> DurableHealer<H> {
        self.healer
    }

    /// Re-dials the master (after it restarted, say). The store is
    /// untouched — the next [`Replica::sync_once`] resumes from the
    /// replica's committed epoch.
    ///
    /// # Errors
    ///
    /// Connection failure.
    pub fn reconnect(&mut self) -> Result<(), ReplError> {
        self.stream = TcpStream::connect(self.addr)?;
        Ok(())
    }

    /// One fetch/apply round: asks the master for records past the
    /// replica's epoch, certifies and applies each one, stages them
    /// verbatim into the replica's own WAL, and fsyncs once.
    ///
    /// # Errors
    ///
    /// * [`ReplError::Io`] — socket trouble (reconnect and retry);
    /// * [`ReplError::Malformed`] — a shipment that fails the strict
    ///   record parser, count cross-check, or commit-boundary rule;
    /// * [`ReplError::Store`] — the digest-certified apply refused a
    ///   record ([`crate::RecoveryError::SequenceGap`] /
    ///   [`crate::RecoveryError::DigestMismatch`] / replay failure);
    /// * [`ReplError::Behind`] — the master checkpointed past us;
    /// * [`ReplError::Remote`] — the master sent an error frame.
    ///
    /// Nothing from a refused shipment is applied past the first
    /// violation, and nothing unapplied is ever staged.
    pub fn sync_once(&mut self) -> Result<ReplProgress, ReplError> {
        let have_epoch = self.healer.epoch();
        let request = ReplRequest::Fetch {
            have_epoch,
            max_bytes: self.max_fetch_bytes,
        };
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?;
        match ReplResponse::parse(&payload).map_err(ReplError::Malformed)? {
            ReplResponse::CaughtUp { .. } => Ok(ReplProgress {
                applied: 0,
                epoch: have_epoch,
                caught_up: true,
            }),
            ReplResponse::Records { count, raw } => {
                let records = decode_records(&raw).map_err(ReplError::Malformed)?;
                if records.len() as u32 != count {
                    return Err(ReplError::Malformed(format!(
                        "shipment claims {count} records but parses to {}",
                        records.len()
                    )));
                }
                match records.last() {
                    None => {
                        return Err(ReplError::Malformed("empty record shipment".to_string()));
                    }
                    Some(last) if !last.is_commit() => {
                        return Err(ReplError::Malformed(
                            "shipment does not end on a commit boundary".to_string(),
                        ));
                    }
                    Some(_) => {}
                }
                for record in &records {
                    let _ = self.healer.apply_replicated(record)?;
                }
                self.healer.sync()?;
                Ok(ReplProgress {
                    applied: records.len(),
                    epoch: self.healer.epoch(),
                    caught_up: false,
                })
            }
            ReplResponse::Snapshot { seq, .. } => Err(ReplError::Behind {
                have_epoch,
                snapshot_seq: seq,
            }),
            ReplResponse::Error { code, detail } => Err(ReplError::Remote { code, detail }),
        }
    }

    /// Repeats [`Replica::sync_once`] until the master reports caught
    /// up; returns the total records applied.
    ///
    /// # Errors
    ///
    /// As [`Replica::sync_once`].
    pub fn sync_to_caught_up(&mut self) -> Result<usize, ReplError> {
        let mut applied = 0;
        loop {
            let progress = self.sync_once()?;
            applied += progress.applied;
            if progress.caught_up {
                return Ok(applied);
            }
        }
    }

    /// The replica's own store directory.
    pub fn dir(&self) -> &Path {
        self.healer.dir()
    }
}

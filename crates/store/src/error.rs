//! Typed failures of the durability layer.
//!
//! The split mirrors the two trust domains: [`StoreError`] covers the
//! storage machinery itself (I/O, framing), while [`RecoveryError`]
//! enumerates the ways a recovery can *prove* that the on-disk state and
//! the replayed engine disagree — the digest-certification failures that
//! must abort with a nonzero exit instead of silently serving drifted
//! state.

use fg_core::EngineError;
use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Any failure of the WAL / snapshot / recovery machinery.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// A framing violation in a region that recovery cannot classify as
    /// a torn tail (e.g. a record that passes CRC but fails to decode —
    /// a writer bug or version skew, never crash damage).
    Corrupt {
        /// The file holding the bad bytes.
        path: PathBuf,
        /// Byte offset of the offending record header.
        offset: u64,
        /// What exactly was wrong.
        detail: String,
    },
    /// Recovery proved the durable state inconsistent (see
    /// [`RecoveryError`]).
    Recovery(RecoveryError),
}

/// The ways digest-certified recovery can fail.
///
/// Every variant means "do not trust this store": the caller is expected
/// to surface the error and exit nonzero, never to continue on a
/// best-guess state.
#[derive(Debug)]
#[non_exhaustive]
pub enum RecoveryError {
    /// The store directory has no manifest — nothing was ever committed
    /// here (or the directory is not a store).
    MissingManifest(PathBuf),
    /// The manifest exists but does not parse.
    BadManifest {
        /// The manifest file.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// The snapshot's bytes no longer hash to the name the manifest
    /// committed — bit rot in the checkpoint itself.
    SnapshotHashMismatch {
        /// The snapshot file.
        path: PathBuf,
        /// The content hash the manifest recorded.
        expected: u64,
        /// The hash the bytes actually have.
        actual: u64,
    },
    /// The snapshot hashed correctly but does not decode to a valid
    /// engine state (format-version skew or a writer bug).
    SnapshotDecode {
        /// The snapshot file.
        path: PathBuf,
        /// The decoder's diagnosis.
        detail: String,
    },
    /// A CRC failure *inside* the committed log: well-formed records
    /// exist beyond the bad region, so this is mid-file corruption of
    /// acknowledged history, not a torn tail — truncating would silently
    /// drop durable events.
    CorruptCommitted {
        /// The WAL segment.
        path: PathBuf,
        /// Offset of the first record that failed its checksum.
        bad_offset: u64,
        /// Offset of a later record that still parses — the proof that
        /// the damage is not a tail.
        resync_offset: u64,
    },
    /// Replay met a record whose sequence number does not continue the
    /// engine's epoch — records are missing or reordered.
    SequenceGap {
        /// The epoch the next record had to carry.
        expected: u64,
        /// The sequence number it actually carried.
        found: u64,
    },
    /// The replayed event produced a different structural digest than
    /// the one logged when the event was first applied — the recovered
    /// state has drifted from the acknowledged history.
    DigestMismatch {
        /// The event's sequence number (= engine epoch after applying).
        seq: u64,
        /// The digest recorded in the WAL at commit time.
        logged: u64,
        /// The digest the replay produced now.
        replayed: u64,
    },
    /// The engine rejected a logged event outright during replay — the
    /// snapshot and the log suffix cannot belong to the same history.
    Replay {
        /// The failing record's sequence number.
        seq: u64,
        /// The engine's error.
        error: EngineError,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt record in {} at byte {offset}: {detail}",
                path.display()
            ),
            StoreError::Recovery(e) => write!(f, "recovery failed: {e}"),
        }
    }
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::MissingManifest(dir) => {
                write!(f, "no manifest in {}: not a committed store", dir.display())
            }
            RecoveryError::BadManifest { path, detail } => {
                write!(f, "unreadable manifest {}: {detail}", path.display())
            }
            RecoveryError::SnapshotHashMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "snapshot {} hashes to {actual:016x}, manifest committed {expected:016x}",
                path.display()
            ),
            RecoveryError::SnapshotDecode { path, detail } => {
                write!(f, "snapshot {} does not decode: {detail}", path.display())
            }
            RecoveryError::CorruptCommitted {
                path,
                bad_offset,
                resync_offset,
            } => write!(
                f,
                "{}: checksum failure at byte {bad_offset} with valid records at byte \
                 {resync_offset} — committed history is damaged, refusing to truncate",
                path.display()
            ),
            RecoveryError::SequenceGap { expected, found } => {
                write!(f, "log skips from epoch {expected} to {found}")
            }
            RecoveryError::DigestMismatch {
                seq,
                logged,
                replayed,
            } => write!(
                f,
                "event #{seq} replayed to digest {replayed:016x} but {logged:016x} was logged — \
                 recovered state drifted from acknowledged history"
            ),
            RecoveryError::Replay { seq, error } => {
                write!(f, "event #{seq} no longer applies during replay: {error}")
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Recovery(e) => Some(e),
            _ => None,
        }
    }
}

impl Error for RecoveryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RecoveryError::Replay { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<RecoveryError> for StoreError {
    fn from(e: RecoveryError) -> Self {
        StoreError::Recovery(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failure() {
        let e = StoreError::from(RecoveryError::DigestMismatch {
            seq: 7,
            logged: 0xab,
            replayed: 0xcd,
        });
        let msg = e.to_string();
        assert!(msg.contains("event #7"), "{msg}");
        assert!(msg.contains("00000000000000ab"), "{msg}");
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<StoreError>();
        check::<RecoveryError>();
    }
}

//! Byte-level primitives shared by the WAL and the snapshot store: the
//! CRC-32 record checksum, the FNV-1a content hash that names snapshot
//! files, and the [`NetworkEvent`] wire form.
//!
//! Both hashes are spelled out by hand for the same reason as
//! [`fg_core::ReportDigest`]: a checked-in artifact (a WAL, a snapshot
//! name) must only ever change when *behaviour* changes, never because a
//! hasher implementation or seed did.

use fg_core::NetworkEvent;
use fg_graph::NodeId;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE) checksum of `bytes` — the per-record integrity
/// check of the WAL.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// The 64-bit FNV-1a hash of `bytes` — the content hash that names
/// snapshot files (`snap-<hash:016x>.bin`). Same constants as
/// [`fg_core::ReportDigest`], folded over raw bytes.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Event wire tags.
const TAG_INSERT: u8 = 0;
const TAG_DELETE: u8 = 1;

/// Appends the wire form of `event` to `out`: a tag byte, then the
/// little-endian node ids (inserts carry a count first).
pub(crate) fn encode_event(out: &mut Vec<u8>, event: &NetworkEvent) {
    match event {
        NetworkEvent::Insert { neighbors } => {
            out.push(TAG_INSERT);
            out.extend_from_slice(&(neighbors.len() as u32).to_le_bytes());
            for x in neighbors {
                out.extend_from_slice(&x.raw().to_le_bytes());
            }
        }
        NetworkEvent::Delete { node } => {
            out.push(TAG_DELETE);
            out.extend_from_slice(&node.raw().to_le_bytes());
        }
    }
}

/// A bounds-checked little-endian reader.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| format!("truncated at byte {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Consumes and returns everything not yet read — for trailing
    /// variable-length fields that run to the end of the buffer.
    pub(crate) fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }
}

/// Decodes one event from `cur` (the inverse of [`encode_event`]).
pub(crate) fn decode_event(cur: &mut Cursor<'_>) -> Result<NetworkEvent, String> {
    match cur.u8()? {
        TAG_INSERT => {
            let count = cur.u32()? as usize;
            let mut neighbors = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                neighbors.push(NodeId::new(cur.u32()?));
            }
            Ok(NetworkEvent::insert(neighbors))
        }
        TAG_DELETE => Ok(NetworkEvent::delete(NodeId::new(cur.u32()?))),
        tag => Err(format!("unknown event tag {tag}")),
    }
}

/// Appends the wire form of an event list: a little-endian `u32` count,
/// then each event as `encode_event` lays it out. The serving
/// protocol's submit ops and the replication stream share this with the
/// WAL so an event submitted over a socket and the record it becomes
/// agree byte-for-byte.
pub fn encode_events(out: &mut Vec<u8>, events: &[NetworkEvent]) {
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for event in events {
        encode_event(out, event);
    }
}

/// Decodes [`encode_events`] output, rejecting truncation and trailing
/// bytes.
///
/// # Errors
///
/// A human-readable description of the first malformation.
pub fn decode_events(buf: &[u8]) -> Result<Vec<NetworkEvent>, String> {
    let mut cur = Cursor::new(buf);
    let count = cur.u32()? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        events.push(decode_event(&mut cur)?);
    }
    if !cur.is_done() {
        return Err("trailing bytes after event list".to_string());
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv64_matches_report_digest_fold() {
        // Folding eight bytes here must agree with ReportDigest::word.
        let word = 0x0123_4567_89ab_cdefu64;
        let via_digest = fg_core::ReportDigest::new().word(word).value();
        assert_eq!(fnv64(&word.to_le_bytes()), via_digest);
    }

    #[test]
    fn events_round_trip() {
        let events = [
            NetworkEvent::insert([NodeId::new(3), NodeId::new(9), NodeId::new(0)]),
            NetworkEvent::delete(NodeId::new(41)),
        ];
        for event in &events {
            let mut buf = Vec::new();
            encode_event(&mut buf, event);
            let mut cur = Cursor::new(&buf);
            assert_eq!(&decode_event(&mut cur).unwrap(), event);
            assert!(cur.is_done());
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut cur = Cursor::new(&[7u8]);
        assert!(decode_event(&mut cur).unwrap_err().contains("tag"));
    }

    #[test]
    fn event_lists_round_trip_and_reject_trailing_bytes() {
        let events = vec![
            NetworkEvent::insert([NodeId::new(3), NodeId::new(9)]),
            NetworkEvent::delete(NodeId::new(41)),
        ];
        let mut buf = Vec::new();
        encode_events(&mut buf, &events);
        assert_eq!(decode_events(&buf).unwrap(), events);
        buf.push(0);
        assert!(decode_events(&buf).unwrap_err().contains("trailing"));
        assert!(decode_events(&buf[..buf.len() - 3]).is_err());
    }
}

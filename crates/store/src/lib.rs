//! `fg-store`: crash-safe durability for the Forgiving Graph.
//!
//! Three layers:
//!
//! * **WAL** ([`wal`]) — an append-only segment of checksummed,
//!   length-prefixed records, each carrying a [`fg_core::NetworkEvent`]
//!   plus the structural digest its application produced. The reader
//!   tolerates torn tails (truncate at the first bad checksum) but
//!   refuses damage inside committed history.
//! * **Snapshots** ([`snapstore`]) — content-addressed checkpoints of
//!   the full `(image, ghost, forest)` triple, committed by an atomic
//!   manifest rename. The WAL rotates to a fresh segment at every
//!   checkpoint, so tail truncation structurally cannot cross one.
//! * **[`DurableHealer`]** ([`durable`]) — wraps any [`Persistable`]
//!   self-healer: apply → log → group-commit fsync on the write path,
//!   and digest-certified recovery on [`DurableHealer::open`] — replay
//!   must reproduce every logged digest or fail with a typed
//!   [`RecoveryError`].
//! * **Replication** ([`repl`]) — a master ships its committed WAL
//!   records and checkpoints over the CRC-framed FGR1 protocol;
//!   [`Replica`]s ingest them into their own store directories under
//!   the same digest-certified refusal semantics, ending with a
//!   certificate chain ([`CHAIN_BASE`], [`chain_fold`]) bit-identical
//!   to the master's at every shared epoch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod durable;
pub mod error;
pub mod repl;
pub mod snapstore;
pub mod wal;

pub use codec::{crc32, decode_events, encode_events, fnv64};
pub use durable::{
    chain_fold, DurableHealer, DurableOptions, Persistable, RecoveryReport, CHAIN_BASE,
};
pub use error::{RecoveryError, StoreError};
pub use repl::{
    wake_acceptor, wake_addr, ReplError, ReplListener, ReplProgress, ReplRequest, ReplResponse,
    Replica, MAX_REPL_HANDLERS,
};
pub use snapstore::{
    load_snapshot, manifest_path, read_manifest, snapshot_path, sync_dir, wal_path, write_manifest,
    write_snapshot, Manifest,
};
pub use wal::{decode_records, scan_wal, WalRecord, WalScan, WalWriter, FLAG_COMMIT};

//! `fg-store`: crash-safe durability for the Forgiving Graph.
//!
//! Three layers:
//!
//! * **WAL** ([`wal`]) — an append-only segment of checksummed,
//!   length-prefixed records, each carrying a [`fg_core::NetworkEvent`]
//!   plus the structural digest its application produced. The reader
//!   tolerates torn tails (truncate at the first bad checksum) but
//!   refuses damage inside committed history.
//! * **Snapshots** ([`snapstore`]) — content-addressed checkpoints of
//!   the full `(image, ghost, forest)` triple, committed by an atomic
//!   manifest rename. The WAL rotates to a fresh segment at every
//!   checkpoint, so tail truncation structurally cannot cross one.
//! * **[`DurableHealer`]** ([`durable`]) — wraps any [`Persistable`]
//!   self-healer: apply → log → group-commit fsync on the write path,
//!   and digest-certified recovery on [`DurableHealer::open`] — replay
//!   must reproduce every logged digest or fail with a typed
//!   [`RecoveryError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod durable;
pub mod error;
pub mod snapstore;
pub mod wal;

pub use codec::{crc32, fnv64};
pub use durable::{DurableHealer, DurableOptions, Persistable, RecoveryReport};
pub use error::{RecoveryError, StoreError};
pub use snapstore::{
    load_snapshot, manifest_path, read_manifest, snapshot_path, wal_path, write_manifest,
    write_snapshot, Manifest,
};
pub use wal::{scan_wal, WalRecord, WalScan, WalWriter, FLAG_COMMIT};

//! FGR1 replication tests at the store layer: bootstrap from a shipped
//! snapshot, incremental WAL streaming, certificate-chain equality,
//! typed refusal of tampered shipments, replica/master restart
//! resilience, and the dir-entry crash-injection regression for the
//! parent-directory fsync fix.

use fg_core::{ForgivingGraph, NetworkEvent, SelfHealer};
use fg_graph::{generators, NodeId};
use fg_store::repl::{read_frame, write_frame, REPL_ERR_BAD_REQUEST};
use fg_store::{
    manifest_path, read_manifest, wake_addr, DurableHealer, DurableOptions, RecoveryError,
    ReplError, ReplListener, ReplRequest, ReplResponse, Replica, StoreError, WalRecord,
    FLAG_COMMIT,
};
use std::fs;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fg-repl-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn seed_engine() -> ForgivingGraph {
    ForgivingGraph::from_graph(&generators::barabasi_albert(24, 2, 7)).unwrap()
}

/// A deterministic applicable event script (same construction as the
/// recovery suite).
fn script(events: usize, mut seed: u64) -> Vec<NetworkEvent> {
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut scratch = seed_engine();
    let mut out = Vec::with_capacity(events);
    while out.len() < events {
        let alive: Vec<NodeId> = (0..4096)
            .map(NodeId::new)
            .filter(|&v| scratch.is_alive(v))
            .collect();
        let event = if alive.len() > 4 && rng() % 3 == 0 {
            NetworkEvent::delete(alive[(rng() % alive.len() as u64) as usize])
        } else {
            let want = 1 + (rng() % 3) as usize;
            let mut neighbors: Vec<NodeId> = Vec::new();
            let mut at = (rng() % alive.len() as u64) as usize;
            while neighbors.len() < want.min(alive.len()) {
                let v = alive[at % alive.len()];
                if !neighbors.contains(&v) {
                    neighbors.push(v);
                }
                at += 1 + (rng() % 5) as usize;
            }
            NetworkEvent::insert(neighbors)
        };
        let _ = scratch.apply_event(&event).unwrap();
        out.push(event);
    }
    out
}

fn opts() -> DurableOptions {
    DurableOptions {
        checkpoint_every: None,
        sync_every: 1,
    }
}

#[test]
fn replica_bootstraps_streams_and_certifies_identically() {
    let events = script(24, 0x1001);
    let master_dir = temp_dir("master-basic");
    let replica_dir = temp_dir("replica-basic");
    let mut master = DurableHealer::create(seed_engine(), &master_dir, opts()).unwrap();
    for event in &events[..10] {
        let _ = master.apply_event(event).unwrap();
    }
    master.sync().unwrap();

    let listener = ReplListener::bind("127.0.0.1:0", &master_dir).unwrap();
    let (mut replica, report) =
        Replica::<ForgivingGraph>::bootstrap(listener.local_addr(), &replica_dir, opts()).unwrap();
    // Bootstrap fetched the master's base checkpoint (no WAL replayed).
    assert_eq!(report.replayed, 0);
    let applied = replica.sync_to_caught_up().unwrap();
    assert_eq!(applied, 10);
    assert_eq!(replica.epoch(), master.epoch());
    assert_eq!(replica.chain_digest(), master.chain_digest());
    assert_eq!(
        replica.healer().inner().snapshot_bytes(),
        master.inner().snapshot_bytes(),
        "replica state must be byte-identical to the master's"
    );

    // Master advances; the replica streams only the delta.
    for event in &events[10..] {
        let _ = master.apply_event(event).unwrap();
    }
    master.sync().unwrap();
    let progress = replica.sync_once().unwrap();
    assert_eq!(progress.applied, 14);
    assert!(!progress.caught_up);
    assert!(replica.sync_once().unwrap().caught_up);
    assert_eq!(replica.epoch(), master.epoch());
    assert_eq!(replica.chain_digest(), master.chain_digest());

    // The replica's own store directory is independently recoverable,
    // landing on the same certificate without the master in sight.
    let (epoch, chain) = (replica.epoch(), replica.chain_digest());
    drop(replica);
    let (reopened, report) = DurableHealer::<ForgivingGraph>::open(&replica_dir, opts()).unwrap();
    assert_eq!(report.epoch, epoch);
    assert_eq!(reopened.chain_digest(), chain);
    assert_eq!(
        reopened.inner().snapshot_bytes(),
        master.inner().snapshot_bytes()
    );

    drop(listener);
    fs::remove_dir_all(&master_dir).unwrap();
    fs::remove_dir_all(&replica_dir).unwrap();
}

#[test]
fn replica_resyncs_after_master_kill_and_restart() {
    let events = script(18, 0x1002);
    let master_dir = temp_dir("master-restart");
    let replica_dir = temp_dir("replica-restart");
    let mut master = DurableHealer::create(seed_engine(), &master_dir, opts()).unwrap();
    for event in &events[..6] {
        let _ = master.apply_event(event).unwrap();
    }
    master.sync().unwrap();

    let listener = ReplListener::bind("127.0.0.1:0", &master_dir).unwrap();
    let (mut replica, _) =
        Replica::<ForgivingGraph>::bootstrap(listener.local_addr(), &replica_dir, opts()).unwrap();
    replica.sync_to_caught_up().unwrap();

    // "kill -9" the master mid-stream: drop its listener and healer
    // without checkpointing, then recover the store and serve again.
    drop(listener);
    drop(master);
    let (mut master, report) = DurableHealer::<ForgivingGraph>::open(&master_dir, opts()).unwrap();
    assert_eq!(report.replayed, 6);
    for event in &events[6..] {
        let _ = master.apply_event(event).unwrap();
    }
    master.sync().unwrap();
    let listener = ReplListener::bind("127.0.0.1:0", &master_dir).unwrap();

    // The old connection is dead; reconnect against the restarted
    // master resumes from the replica's committed epoch.
    let mut replica = {
        let (replica, report) =
            Replica::<ForgivingGraph>::bootstrap(listener.local_addr(), &replica_dir, opts())
                .unwrap();
        assert_eq!(report.replayed, 6, "replica recovers its own WAL on reopen");
        replica
    };
    assert_eq!(replica.sync_to_caught_up().unwrap(), 12);
    assert_eq!(replica.epoch(), master.epoch());
    assert_eq!(replica.chain_digest(), master.chain_digest());
    assert_eq!(
        replica.healer().inner().snapshot_bytes(),
        master.inner().snapshot_bytes()
    );

    drop(listener);
    fs::remove_dir_all(&master_dir).unwrap();
    fs::remove_dir_all(&replica_dir).unwrap();
}

/// A fake master that answers the replica's first `Fetch` with one
/// attacker-controlled response frame, after first serving an honest
/// bootstrap from `dir`.
fn one_shot_master(
    dir: PathBuf,
    response: impl FnOnce(u64) -> ReplResponse + Send + 'static,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        loop {
            let payload = match read_frame(&mut stream) {
                Ok(payload) => payload,
                Err(_) => return, // replica hung up after the refusal
            };
            match ReplRequest::parse(&payload).unwrap() {
                ReplRequest::FetchSnapshot => {
                    let manifest = read_manifest(&dir).unwrap();
                    let bytes = fg_store::load_snapshot(&dir, manifest).unwrap();
                    let honest = ReplResponse::Snapshot {
                        seq: manifest.seq,
                        hash: manifest.hash,
                        chain: manifest.chain,
                        bytes,
                    };
                    write_frame(&mut stream, &honest.encode()).unwrap();
                }
                ReplRequest::Fetch { have_epoch, .. } => {
                    write_frame(&mut stream, &response(have_epoch).encode()).unwrap();
                    return;
                }
            }
        }
    });
    (addr, handle)
}

/// Sets up a base store for the fake-master tests and a valid next
/// record the attacker can mutate.
fn attack_fixture(name: &str) -> (PathBuf, PathBuf, WalRecord) {
    let master_dir = temp_dir(&format!("attack-master-{name}"));
    let replica_dir = temp_dir(&format!("attack-replica-{name}"));
    let durable = DurableHealer::create(seed_engine(), &master_dir, opts()).unwrap();
    let base_epoch = durable.epoch();
    drop(durable);
    let next = script(1, 0x1003).remove(0);
    let mut scratch = seed_engine();
    let outcome = scratch.apply_event(&next).unwrap();
    let record = WalRecord {
        seq: base_epoch + 1,
        flags: FLAG_COMMIT,
        digest: outcome.digest(),
        event: next,
    };
    (master_dir, replica_dir, record)
}

fn ship(records: &[WalRecord]) -> ReplResponse {
    let mut raw = Vec::new();
    for record in records {
        raw.extend_from_slice(&record.to_bytes());
    }
    ReplResponse::Records {
        count: records.len() as u32,
        raw,
    }
}

#[test]
fn lying_digest_shipment_is_refused() {
    let (master_dir, replica_dir, record) = attack_fixture("digest");
    let lying = WalRecord {
        digest: record.digest ^ 1,
        ..record
    };
    let (addr, handle) = one_shot_master(master_dir.clone(), move |_| ship(&[lying]));
    let (mut replica, _) =
        Replica::<ForgivingGraph>::bootstrap(addr, &replica_dir, opts()).unwrap();
    match replica.sync_once() {
        Err(ReplError::Store(StoreError::Recovery(RecoveryError::DigestMismatch {
            seq, ..
        }))) => assert_eq!(seq, record.seq),
        other => panic!("expected DigestMismatch refusal, got {other:?}"),
    }
    // The refusal poisons the in-memory replica (the event applied
    // before its digest could be checked — same order as recovery
    // replay), but nothing was staged: the durable store still holds
    // only certified history.
    drop(replica);
    let (reopened, _) = DurableHealer::<ForgivingGraph>::open(&replica_dir, opts()).unwrap();
    assert_eq!(reopened.epoch(), record.seq - 1);
    handle.join().unwrap();
    fs::remove_dir_all(&master_dir).unwrap();
    fs::remove_dir_all(&replica_dir).unwrap();
}

#[test]
fn sequence_gap_shipment_is_refused() {
    let (master_dir, replica_dir, record) = attack_fixture("gap");
    let skipping = WalRecord {
        seq: record.seq + 4,
        ..record
    };
    let (addr, handle) = one_shot_master(master_dir.clone(), move |_| ship(&[skipping]));
    let (mut replica, _) =
        Replica::<ForgivingGraph>::bootstrap(addr, &replica_dir, opts()).unwrap();
    match replica.sync_once() {
        Err(ReplError::Store(StoreError::Recovery(RecoveryError::SequenceGap {
            expected,
            found,
        }))) => {
            assert_eq!(expected, record.seq);
            assert_eq!(found, record.seq + 4);
        }
        other => panic!("expected SequenceGap refusal, got {other:?}"),
    }
    drop(replica);
    handle.join().unwrap();
    fs::remove_dir_all(&master_dir).unwrap();
    fs::remove_dir_all(&replica_dir).unwrap();
}

#[test]
fn truncated_and_boundary_violating_shipments_are_refused() {
    // Truncated raw record range: strict parser refuses.
    let (master_dir, replica_dir, record) = attack_fixture("trunc");
    let truncated = {
        let full = ship(std::slice::from_ref(&record));
        let ReplResponse::Records { count, mut raw } = full else {
            unreachable!()
        };
        raw.truncate(raw.len() - 3);
        ReplResponse::Records { count, raw }
    };
    let (addr, handle) = one_shot_master(master_dir.clone(), move |_| truncated);
    let (mut replica, _) =
        Replica::<ForgivingGraph>::bootstrap(addr, &replica_dir, opts()).unwrap();
    assert!(
        matches!(replica.sync_once(), Err(ReplError::Malformed(_))),
        "truncated shipment must be refused as malformed"
    );
    drop(replica);
    handle.join().unwrap();
    fs::remove_dir_all(&master_dir).unwrap();
    fs::remove_dir_all(&replica_dir).unwrap();

    // A shipment not ending on a commit boundary: refused before any
    // record is applied.
    let (master_dir, replica_dir, record) = attack_fixture("boundary");
    let uncommitted = WalRecord { flags: 0, ..record };
    let (addr, handle) = one_shot_master(master_dir.clone(), move |_| ship(&[uncommitted]));
    let (mut replica, _) =
        Replica::<ForgivingGraph>::bootstrap(addr, &replica_dir, opts()).unwrap();
    match replica.sync_once() {
        Err(ReplError::Malformed(detail)) => assert!(detail.contains("commit boundary")),
        other => panic!("expected commit-boundary refusal, got {other:?}"),
    }
    assert_eq!(replica.epoch(), record.seq - 1, "nothing may be applied");
    drop(replica);
    handle.join().unwrap();
    fs::remove_dir_all(&master_dir).unwrap();
    fs::remove_dir_all(&replica_dir).unwrap();
}

#[test]
fn count_mismatch_shipment_is_refused() {
    let (master_dir, replica_dir, record) = attack_fixture("count");
    let miscounted = {
        let ReplResponse::Records { raw, .. } = ship(&[record]) else {
            unreachable!()
        };
        ReplResponse::Records { count: 2, raw }
    };
    let (addr, handle) = one_shot_master(master_dir.clone(), move |_| miscounted);
    let (mut replica, _) =
        Replica::<ForgivingGraph>::bootstrap(addr, &replica_dir, opts()).unwrap();
    match replica.sync_once() {
        Err(ReplError::Malformed(detail)) => assert!(detail.contains("claims 2")),
        other => panic!("expected count-mismatch refusal, got {other:?}"),
    }
    drop(replica);
    handle.join().unwrap();
    fs::remove_dir_all(&master_dir).unwrap();
    fs::remove_dir_all(&replica_dir).unwrap();
}

#[test]
fn malformed_request_gets_a_typed_error_frame() {
    let master_dir = temp_dir("bad-request");
    drop(DurableHealer::create(seed_engine(), &master_dir, opts()).unwrap());
    let listener = ReplListener::bind("127.0.0.1:0", &master_dir).unwrap();
    let mut stream = std::net::TcpStream::connect(listener.local_addr()).unwrap();
    // Well-framed garbage: CRC passes, the request parser refuses.
    write_frame(&mut stream, b"NOPE\x01\x00").unwrap();
    let payload = read_frame(&mut stream).unwrap();
    match ReplResponse::parse(&payload).unwrap() {
        ReplResponse::Error { code, .. } => assert_eq!(code, REPL_ERR_BAD_REQUEST),
        other => panic!("expected a typed error frame, got {other:?}"),
    }
    drop(listener);
    fs::remove_dir_all(&master_dir).unwrap();
}

#[test]
fn wake_addr_rewrites_unspecified_addresses() {
    let v4: SocketAddr = "0.0.0.0:4321".parse().unwrap();
    assert_eq!(wake_addr(v4), "127.0.0.1:4321".parse().unwrap());
    let v6: SocketAddr = "[::]:4321".parse().unwrap();
    assert_eq!(wake_addr(v6), "[::1]:4321".parse().unwrap());
    let concrete: SocketAddr = "192.0.2.7:4321".parse().unwrap();
    assert_eq!(wake_addr(concrete), concrete, "concrete addrs untouched");
}

/// The dir-entry crash injection for the parent-fsync fix: simulate a
/// crash where the checkpoint's manifest rename was lost (the pre-fix
/// hazard window) by renaming the committed manifest away and restoring
/// the previous manifest bytes. Recovery must answer with a typed
/// refusal — never a panic, never a silently wrong state built from the
/// swept-away segments the old manifest references.
#[test]
fn lost_manifest_rename_after_checkpoint_refuses_typed() {
    let events = script(8, 0x1004);
    let dir = temp_dir("lost-rename");
    let mut durable = DurableHealer::create(seed_engine(), &dir, opts()).unwrap();
    let old_manifest = fs::read(manifest_path(&dir)).unwrap();
    for event in &events {
        let _ = durable.apply_event(event).unwrap();
    }
    durable.checkpoint().unwrap();
    drop(durable);

    // Crash injection: the rename's dir entry vanishes, the old bytes
    // come back — but the checkpoint already swept the old segment.
    fs::rename(manifest_path(&dir), dir.join("MANIFEST.lost")).unwrap();
    fs::write(manifest_path(&dir), &old_manifest).unwrap();
    match DurableHealer::<ForgivingGraph>::open(&dir, opts()) {
        Err(StoreError::Io(_) | StoreError::Recovery(_)) => {}
        Ok(_) => panic!("recovery from a swept manifest must not silently succeed"),
        Err(other) => panic!("expected a typed refusal, got {other:?}"),
    }

    // Restoring the committed manifest recovers cleanly — the data the
    // fsync fix makes durable is sufficient.
    fs::remove_file(manifest_path(&dir)).unwrap();
    fs::rename(dir.join("MANIFEST.lost"), manifest_path(&dir)).unwrap();
    let (recovered, report) = DurableHealer::<ForgivingGraph>::open(&dir, opts()).unwrap();
    assert_eq!(report.replayed, 0);
    assert_eq!(recovered.epoch(), seed_engine().epoch() + 8);
    fs::remove_dir_all(&dir).unwrap();
}

//! End-to-end crash/recovery tests for [`DurableHealer`]: truncation at
//! every byte offset, bit flips, mid-batch crashes, digest drift, and
//! checkpoint rotation — each recovery certified byte-for-byte against a
//! reference engine via the deterministic snapshot encoding.

use fg_core::{EngineError, ForgivingGraph, NetworkEvent, PlacementPolicy, SelfHealer};
use fg_dist::DistHealer;
use fg_graph::{generators, NodeId};
use fg_store::{
    wal_path, DurableHealer, DurableOptions, RecoveryError, StoreError, WalRecord, FLAG_COMMIT,
};
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fg-durable-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn seed_engine() -> ForgivingGraph {
    ForgivingGraph::from_graph(&generators::barabasi_albert(24, 2, 11)).unwrap()
}

/// A deterministic adversarial script, validated against a scratch
/// replica so every event is applicable in sequence.
fn script(events: usize, mut seed: u64) -> Vec<NetworkEvent> {
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut scratch = seed_engine();
    let mut out = Vec::with_capacity(events);
    while out.len() < events {
        let alive: Vec<NodeId> = (0..4096)
            .map(NodeId::new)
            .filter(|&v| scratch.is_alive(v))
            .collect();
        let event = if alive.len() > 4 && rng() % 3 == 0 {
            NetworkEvent::delete(alive[(rng() % alive.len() as u64) as usize])
        } else {
            let want = 1 + (rng() % 3) as usize;
            let mut neighbors: Vec<NodeId> = Vec::new();
            let mut at = (rng() % alive.len() as u64) as usize;
            while neighbors.len() < want.min(alive.len()) {
                let v = alive[at % alive.len()];
                if !neighbors.contains(&v) {
                    neighbors.push(v);
                }
                at += 1 + (rng() % 5) as usize;
            }
            NetworkEvent::insert(neighbors)
        };
        let _ = scratch.apply_event(&event).unwrap();
        out.push(event);
    }
    out
}

/// Snapshot bytes of the reference engine after each event prefix:
/// `prefixes[k]` is the certified state after `k` events.
fn prefix_states(events: &[NetworkEvent]) -> Vec<Vec<u8>> {
    let mut engine = seed_engine();
    let mut out = vec![engine.snapshot_bytes()];
    for event in events {
        let _ = engine.apply_event(event).unwrap();
        out.push(engine.snapshot_bytes());
    }
    out
}

/// Builds a store, applies `events` with per-event fsync, and returns
/// the directory (writer dropped — simulating a process exit).
fn populated_store(name: &str, events: &[NetworkEvent], opts: DurableOptions) -> PathBuf {
    let dir = temp_dir(name);
    let mut durable = DurableHealer::create(seed_engine(), &dir, opts).unwrap();
    for event in events {
        let _ = durable.apply_event(event).unwrap();
    }
    durable.sync().unwrap();
    dir
}

/// Copies a store directory, truncating the WAL segment to `wal_len`.
fn clone_store(src: &Path, dst: &Path, wal_len: usize) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap().flatten() {
        let name = entry.file_name();
        let mut bytes = fs::read(entry.path()).unwrap();
        if name.to_str().unwrap().starts_with("wal-") {
            bytes.truncate(wal_len);
        }
        fs::write(dst.join(name), bytes).unwrap();
    }
}

fn live_wal(dir: &Path) -> PathBuf {
    let seq = fg_store::read_manifest(dir).unwrap().seq;
    wal_path(dir, seq)
}

fn opts(sync_every: usize) -> DurableOptions {
    DurableOptions {
        checkpoint_every: None,
        sync_every,
    }
}

#[test]
fn clean_shutdown_recovers_exact_state() {
    let events = script(30, 0x5eed_0001);
    let states = prefix_states(&events);
    let dir = populated_store("clean", &events, opts(1));

    let (recovered, report) = DurableHealer::<ForgivingGraph>::open(&dir, opts(1)).unwrap();
    assert_eq!(report.replayed, 30);
    assert_eq!(report.dropped_uncommitted, 0);
    assert_eq!(report.truncated_bytes, 0);
    assert!(!report.torn_tail);
    assert_eq!(report.epoch, report.snapshot_seq + 30);
    assert_eq!(recovered.inner().snapshot_bytes(), states[30]);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_with_empty_wal_suffix_recovers() {
    let events = script(12, 0x5eed_0002);
    let states = prefix_states(&events);
    let dir = temp_dir("ckpt-empty");
    let mut durable = DurableHealer::create(seed_engine(), &dir, opts(1)).unwrap();
    for event in &events {
        let _ = durable.apply_event(event).unwrap();
    }
    durable.checkpoint().unwrap();
    let snapshot_seq = durable.snapshot_seq();
    drop(durable);

    let (recovered, report) = DurableHealer::<ForgivingGraph>::open(&dir, opts(1)).unwrap();
    assert_eq!(report.snapshot_seq, snapshot_seq);
    assert_eq!(report.replayed, 0);
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(recovered.inner().snapshot_bytes(), states[12]);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn auto_checkpoint_rotates_and_bounds_replay() {
    let events = script(20, 0x5eed_0003);
    let states = prefix_states(&events);
    let auto = DurableOptions {
        checkpoint_every: Some(8),
        sync_every: 1,
    };
    let dir = temp_dir("auto-ckpt");
    let base_epoch = {
        let mut durable = DurableHealer::create(seed_engine(), &dir, auto).unwrap();
        let base = durable.snapshot_seq();
        for event in &events {
            let _ = durable.apply_event(event).unwrap();
        }
        // Checkpoints fired after events 8 and 16.
        assert_eq!(durable.snapshot_seq(), base + 16);
        base
    };

    // Rotation swept superseded segments: only the live one remains.
    let wals: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_str().unwrap().starts_with("wal-"))
        .collect();
    assert_eq!(wals.len(), 1, "superseded segments must be swept");

    let (recovered, report) = DurableHealer::<ForgivingGraph>::open(&dir, auto).unwrap();
    assert_eq!(report.snapshot_seq, base_epoch + 16);
    assert_eq!(report.replayed, 4);
    assert_eq!(recovered.inner().snapshot_bytes(), states[20]);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_at_every_byte_recovers_a_certified_prefix() {
    let events = script(12, 0x5eed_0004);
    let states = prefix_states(&events);
    let dir = populated_store("trunc-base", &events, opts(1));
    let wal_bytes = fs::read(live_wal(&dir)).unwrap();
    let scratch = temp_dir("trunc-case");

    for cut in 0..=wal_bytes.len() {
        clone_store(&dir, &scratch, cut);
        let (recovered, report) = DurableHealer::<ForgivingGraph>::open(&scratch, opts(1))
            .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got {e}"));
        assert!(report.replayed <= events.len());
        assert_eq!(report.epoch, report.snapshot_seq + report.replayed as u64);
        assert_eq!(
            recovered.inner().snapshot_bytes(),
            states[report.replayed],
            "cut at byte {cut} recovered a state that is not the {}-event prefix",
            report.replayed
        );
        // Recovery truncated the torn tail: a second open is clean.
        drop(recovered);
        let (_, second) = DurableHealer::<ForgivingGraph>::open(&scratch, opts(1)).unwrap();
        assert_eq!(second.replayed, report.replayed);
        assert!(!second.torn_tail);
        assert_eq!(second.truncated_bytes, 0);
    }
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn bit_flip_in_tail_truncates_but_mid_file_refuses() {
    let events = script(12, 0x5eed_0005);
    let states = prefix_states(&events);
    let dir = populated_store("flip-base", &events, opts(1));
    let wal = live_wal(&dir);
    let clean = fs::read(&wal).unwrap();

    // Flip a bit inside the FINAL record's payload: nothing valid
    // follows, so this is indistinguishable from a torn tail and must
    // truncate to the 11-event prefix.
    let mut flipped = clean.clone();
    let last = flipped.len() - 3;
    flipped[last] ^= 0x10;
    fs::write(&wal, &flipped).unwrap();
    let (recovered, report) = DurableHealer::<ForgivingGraph>::open(&dir, opts(1)).unwrap();
    assert_eq!(report.replayed, 11);
    assert!(report.torn_tail);
    assert!(report.truncated_bytes > 0);
    assert_eq!(recovered.inner().snapshot_bytes(), states[11]);
    drop(recovered);

    // Flip a bit inside the FIRST record's payload: valid records still
    // parse beyond the damage, so committed history is corrupt and
    // recovery must refuse rather than silently drop acknowledged events.
    let mut flipped = clean.clone();
    flipped[10] ^= 0x04;
    fs::write(&wal, &flipped).unwrap();
    match DurableHealer::<ForgivingGraph>::open(&dir, opts(1)) {
        Err(StoreError::Recovery(RecoveryError::CorruptCommitted { .. })) => {}
        other => panic!("expected CorruptCommitted, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn uncommitted_batch_tail_is_dropped_whole() {
    let committed = script(8, 0x5eed_0006);
    let all = script(11, 0x5eed_0006); // same seed: first 8 identical
    assert_eq!(&all[..8], &committed[..]);
    let states = prefix_states(&all);
    let dir = populated_store("midbatch", &committed, opts(1));

    // Simulate a crash mid-batch: the batch's records reached the disk
    // but its commit mark did not — append them with FLAG_COMMIT unset.
    let mut replica = ForgivingGraph::from_snapshot_bytes(&states[8]).unwrap();
    let mut tail = Vec::new();
    for event in &all[8..] {
        let outcome = replica.apply_event(event).unwrap();
        let record = WalRecord {
            seq: replica.epoch(),
            flags: 0,
            digest: outcome.digest(),
            event: event.clone(),
        };
        tail.extend_from_slice(&record.to_bytes());
    }
    let wal = live_wal(&dir);
    let mut bytes = fs::read(&wal).unwrap();
    bytes.extend_from_slice(&tail);
    fs::write(&wal, &bytes).unwrap();

    let (recovered, report) = DurableHealer::<ForgivingGraph>::open(&dir, opts(1)).unwrap();
    assert_eq!(report.replayed, 8, "no partial batch may be replayed");
    assert_eq!(report.dropped_uncommitted, 3);
    assert_eq!(report.truncated_bytes, tail.len() as u64);
    assert_eq!(recovered.inner().snapshot_bytes(), states[8]);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn digest_drift_and_sequence_gaps_are_fatal() {
    let events = script(6, 0x5eed_0007);
    let states = prefix_states(&events);
    let dir = populated_store("drift", &events, opts(1));
    let wal = live_wal(&dir);
    let clean = fs::read(&wal).unwrap();

    let mut replica = ForgivingGraph::from_snapshot_bytes(&states[6]).unwrap();
    let next = script(7, 0x5eed_0007)[6].clone();
    let outcome = replica.apply_event(&next).unwrap();

    // A committed record whose digest disagrees with what replay
    // produces: the one lie digest certification exists to catch.
    let lying = WalRecord {
        seq: replica.epoch(),
        flags: FLAG_COMMIT,
        digest: outcome.digest() ^ 1,
        event: next.clone(),
    };
    let mut bytes = clean.clone();
    bytes.extend_from_slice(&lying.to_bytes());
    fs::write(&wal, &bytes).unwrap();
    match DurableHealer::<ForgivingGraph>::open(&dir, opts(1)) {
        Err(StoreError::Recovery(RecoveryError::DigestMismatch { seq, .. })) => {
            assert_eq!(seq, replica.epoch());
        }
        other => panic!("expected DigestMismatch, got {other:?}"),
    }

    // A record that skips ahead in sequence: missing history.
    let skipping = WalRecord {
        seq: replica.epoch() + 5,
        flags: FLAG_COMMIT,
        digest: outcome.digest(),
        event: next,
    };
    let mut bytes = clean.clone();
    bytes.extend_from_slice(&skipping.to_bytes());
    fs::write(&wal, &bytes).unwrap();
    match DurableHealer::<ForgivingGraph>::open(&dir, opts(1)) {
        Err(StoreError::Recovery(RecoveryError::SequenceGap { expected, found })) => {
            assert_eq!(expected, replica.epoch());
            assert_eq!(found, replica.epoch() + 5);
        }
        other => panic!("expected SequenceGap, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_batch_commits_its_applied_prefix() {
    let dir = temp_dir("batch-prefix");
    let mut durable = DurableHealer::create(seed_engine(), &dir, opts(1)).unwrap();
    let victim = NodeId::new(3);
    let batch = [
        NetworkEvent::insert([NodeId::new(0), NodeId::new(1)]),
        NetworkEvent::delete(victim),
        NetworkEvent::delete(victim), // already dead: fails here
        NetworkEvent::insert([NodeId::new(5)]),
    ];
    let err = durable.apply_batch(&batch).unwrap_err();
    match &err {
        EngineError::AtEvent { index, source, .. } => {
            assert_eq!(*index, 2);
            assert!(matches!(**source, EngineError::NotAlive(v) if v == victim));
        }
        other => panic!("expected AtEvent, got {other:?}"),
    }
    let expected = durable.inner().snapshot_bytes();
    drop(durable);

    // The applied prefix (events 0 and 1) must have been committed
    // before the error was reported.
    let (recovered, report) = DurableHealer::<ForgivingGraph>::open(&dir, opts(1)).unwrap();
    assert_eq!(report.replayed, 2);
    assert_eq!(recovered.inner().snapshot_bytes(), expected);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn create_refuses_an_existing_store() {
    let dir = temp_dir("exists");
    let _durable = DurableHealer::create(seed_engine(), &dir, opts(1)).unwrap();
    match DurableHealer::create(seed_engine(), &dir, opts(1)) {
        Err(StoreError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::AlreadyExists),
        other => panic!("expected AlreadyExists, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// WAL sequence numbers are engine epochs, and recovery lands on a round
/// barrier: the distributed healer must advance its epoch by exactly one
/// per event, in lockstep with the sequential engine it mirrors.
#[test]
fn dist_epoch_advances_one_per_event() {
    let g = generators::barabasi_albert(24, 2, 11);
    let mut dist = DistHealer::from_graph(&g, PlacementPolicy::default());
    let mut seq = ForgivingGraph::from_graph(&g).unwrap();
    assert_eq!(dist.epoch(), seq.epoch());
    for event in script(25, 0x5eed_0008) {
        let before = dist.epoch();
        let _ = dist.apply_event(&event).unwrap();
        let _ = seq.apply_event(&event).unwrap();
        assert_eq!(dist.epoch(), before + 1, "epoch must advance 1 per event");
        assert_eq!(
            dist.epoch(),
            seq.epoch(),
            "dist and sequential epochs agree"
        );
    }
}

//! Property tests over the WAL scanner: truncation at arbitrary byte
//! offsets always yields a clean committed prefix, commit marks gate
//! replay at group boundaries, and degenerate segments scan clean.

use fg_core::NetworkEvent;
use fg_graph::NodeId;
use fg_store::{scan_wal, WalRecord, FLAG_COMMIT};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn temp_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fg-walprop-{}-{name}.log", std::process::id()))
}

/// `n` synthetic records with varied sizes; commit flag on every
/// `group`-th record and on the last.
fn synth_records(n: usize, group: usize) -> Vec<WalRecord> {
    (0..n)
        .map(|i| {
            let event = if i % 2 == 0 {
                NetworkEvent::insert((0..=(i as u32 % 4)).map(NodeId::new))
            } else {
                NetworkEvent::delete(NodeId::new(i as u32))
            };
            let commit = (i + 1) % group == 0 || i + 1 == n;
            WalRecord {
                seq: i as u64 + 1,
                flags: if commit { FLAG_COMMIT } else { 0 },
                digest: 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1),
                event,
            }
        })
        .collect()
}

fn frame(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut ends = Vec::with_capacity(records.len());
    for record in records {
        bytes.extend_from_slice(&record.to_bytes());
        ends.push(bytes.len());
    }
    (bytes, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cutting the file at ANY byte offset leaves a scan that returns an
    /// exact prefix of the original records, never resyncs, and whose
    /// committed prefix ends at a commit mark.
    #[test]
    fn truncation_yields_an_exact_committed_prefix(
        n in 1usize..24,
        group in 1usize..5,
        raw_cut in 0usize..4096,
    ) {
        let records = synth_records(n, group);
        let (bytes, ends) = frame(&records);
        let cut = raw_cut % (bytes.len() + 1);
        let path = temp_file("trunc");
        fs::write(&path, &bytes[..cut]).unwrap();

        let scan = scan_wal(&path).unwrap();
        // Complete records below the cut survive; nothing else does.
        let complete = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(scan.records.len(), complete);
        prop_assert_eq!(&scan.records[..], &records[..complete]);
        prop_assert!(scan.resync_offset.is_none(), "truncation is never mid-file damage");
        prop_assert_eq!(scan.torn, cut > scan.valid_len as usize);

        // The committed prefix ends exactly at the last commit mark.
        let committed = (0..complete).rev().find(|&i| records[i].is_commit()).map_or(0, |i| i + 1);
        prop_assert_eq!(scan.committed, committed);
        let committed_len = if committed == 0 { 0 } else { ends[committed - 1] as u64 };
        prop_assert_eq!(scan.committed_len, committed_len);

        // Recovery's truncation rule is idempotent: cutting to the
        // committed prefix and rescanning reports a clean segment.
        fs::write(&path, &bytes[..committed_len as usize]).unwrap();
        let again = scan_wal(&path).unwrap();
        prop_assert_eq!(again.committed, committed);
        prop_assert!(!again.torn);
        prop_assert_eq!(again.committed_len, committed_len);
    }

    /// With commit marks only on batch boundaries, replay never exposes a
    /// partial group: the committed count is always a whole number of
    /// groups.
    #[test]
    fn commit_marks_gate_replay_at_group_boundaries(
        n in 1usize..30,
        group in 1usize..6,
        drop_tail in 0usize..3,
    ) {
        let records = synth_records(n, group);
        let (bytes, ends) = frame(&records);
        // Drop up to `drop_tail` whole records from the end (a crash that
        // lost the commit mark of the final group).
        let keep = n.saturating_sub(drop_tail);
        let len = if keep == 0 { 0 } else { ends[keep - 1] };
        let path = temp_file("groups");
        fs::write(&path, &bytes[..len]).unwrap();

        let scan = scan_wal(&path).unwrap();
        // Every surviving committed record closes at a group boundary
        // (or the true end of the log).
        if scan.committed > 0 {
            prop_assert!(
                records[scan.committed - 1].is_commit(),
                "committed prefix must end on a commit mark"
            );
            if scan.committed < n {
                prop_assert_eq!(
                    scan.committed % group, 0,
                    "a partial group leaked into the committed prefix"
                );
            }
        }
        prop_assert_eq!(scan.resync_offset, None);
    }
}

#[test]
fn empty_wal_scans_clean() {
    let path = temp_file("empty");
    fs::write(&path, b"").unwrap();
    let scan = scan_wal(&path).unwrap();
    assert!(scan.records.is_empty());
    assert_eq!(scan.committed, 0);
    assert_eq!(scan.committed_len, 0);
    assert!(!scan.torn);
    assert_eq!(scan.resync_offset, None);
}

#[test]
fn lone_uncommitted_record_is_dropped() {
    let mut records = synth_records(1, 1);
    records[0].flags = 0;
    let (bytes, _) = frame(&records);
    let path = temp_file("lone");
    fs::write(&path, &bytes).unwrap();
    let scan = scan_wal(&path).unwrap();
    assert_eq!(scan.records.len(), 1);
    assert_eq!(scan.committed, 0, "an uncommitted record must not replay");
    assert_eq!(scan.committed_len, 0);
}

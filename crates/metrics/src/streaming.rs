//! Streaming collectors: paper metrics maintained from
//! [`HealerObserver`] callbacks instead of post-hoc graph traversal.
//!
//! The snapshot measurements ([`crate::degree_stats`],
//! [`crate::cost_stats`]) re-walk the whole graph after the fact; on the
//! ingestion hot path that re-traversal dwarfs the repairs themselves.
//! These collectors ride along with the operations: attach one to
//! `SelfHealer::apply_batch_observed` (or any `*_observed` call) and read
//! the aggregate when you need it.
//!
//! * [`StreamingDegree`] — per-node edge-unit (multigraph) degrees of the
//!   healed image and `G'`, and the worst ratio ever seen;
//! * [`StreamingCost`] — Theorem 1.3 repair-cost aggregation, one
//!   [`fg_core::RepairReport`] at a time;
//! * [`ObserverCounts`] — raw callback totals, the consistency oracle the
//!   test suites check reports against.

use crate::repair::CostStats;
use fg_core::{BatchReport, HealerObserver, InsertReport, RepairReport};
use fg_graph::{Graph, NodeId};

/// Streaming degree tracker over the image **multigraph**.
///
/// Counts edge *units* (original + virtual), which upper-bound the
/// simple-graph degrees the paper's Theorem 1.1 speaks about: two
/// virtual edges onto the same processor pair count twice here but once
/// in the simple view. Exact simple-graph checks stay with
/// [`crate::degree_stats`]; this tracker is the cheap always-on monitor.
///
/// Edge callbacks are buffered per operation and classified by the
/// op-level callback that follows them: an insertion's attachments grow
/// `G'` as well as the image, a repair's edges only touch the image.
#[derive(Debug, Clone, Default)]
pub struct StreamingDegree {
    image: Vec<i64>,
    ghost: Vec<i64>,
    pending: Vec<(NodeId, NodeId, bool)>,
    worst_ratio: f64,
}

impl StreamingDegree {
    /// A tracker starting from an empty network.
    pub fn new() -> Self {
        StreamingDegree::default()
    }

    /// A tracker seeded from `g0`, the adopted starting network (where
    /// image and ghost coincide and every multiplicity is 1).
    pub fn for_graph(g0: &Graph) -> Self {
        let mut t = StreamingDegree::new();
        for i in 0..g0.nodes_ever() {
            let d = g0.degree(NodeId::new(i as u32)) as i64;
            t.image.push(d);
            t.ghost.push(d);
        }
        t.worst_ratio = t.max_ratio();
        t
    }

    fn grow(&mut self, v: NodeId) {
        if self.image.len() <= v.index() {
            self.image.resize(v.index() + 1, 0);
            self.ghost.resize(v.index() + 1, 0);
        }
    }

    /// Image multigraph degree of `v` as tracked so far.
    pub fn image_degree(&self, v: NodeId) -> i64 {
        self.image.get(v.index()).copied().unwrap_or(0)
    }

    /// `G'` degree of `v` as tracked so far.
    pub fn ghost_degree(&self, v: NodeId) -> i64 {
        self.ghost.get(v.index()).copied().unwrap_or(0)
    }

    /// The current worst `image units / ghost degree` ratio over nodes
    /// with positive ghost degree.
    pub fn max_ratio(&self) -> f64 {
        self.image
            .iter()
            .zip(&self.ghost)
            .filter(|(_, &g)| g > 0)
            .map(|(&i, &g)| i as f64 / g as f64)
            .fold(0.0, f64::max)
    }

    /// The worst ratio observed after any completed operation (ratios can
    /// peak right after a repair and relax later as `G'` grows).
    pub fn worst_ratio_seen(&self) -> f64 {
        self.worst_ratio
    }

    fn apply_pending(&mut self, ghost_too: bool) {
        let pending = std::mem::take(&mut self.pending);
        for (u, v, added) in &pending {
            let (u, v) = (*u, *v);
            if u == v {
                // Self-loops are dropped by the homomorphism: no degree.
                continue;
            }
            let delta = if *added { 1 } else { -1 };
            self.grow(u);
            self.grow(v);
            self.image[u.index()] += delta;
            self.image[v.index()] += delta;
            if ghost_too {
                debug_assert!(*added, "G' never loses edges");
                self.ghost[u.index()] += 1;
                self.ghost[v.index()] += 1;
            }
        }
        // A node's ratio only moves when one of its edges does, so the
        // running worst needs a look at this operation's endpoints only —
        // never a full O(n) rescan on the streaming path.
        for (u, v, _) in pending {
            for w in [u, v] {
                let g = self.ghost_degree(w);
                if g > 0 {
                    self.worst_ratio = self.worst_ratio.max(self.image_degree(w) as f64 / g as f64);
                }
            }
        }
    }
}

impl HealerObserver for StreamingDegree {
    fn on_repair_edge(&mut self, u: NodeId, v: NodeId, added: bool) {
        self.pending.push((u, v, added));
    }

    fn on_insert(&mut self, _report: &InsertReport) {
        self.apply_pending(true);
    }

    fn on_delete(&mut self, _report: &RepairReport) {
        self.apply_pending(false);
    }
}

/// Streaming Theorem 1.3 cost aggregation: the same numbers as
/// [`crate::cost_stats`] without storing the reports.
///
/// Each report normalizes against its own `nodes_ever` (the `n` at its
/// deletion time), which is *more* faithful than the snapshot API's
/// single end-of-run `n`.
#[derive(Debug, Clone, Default)]
pub struct StreamingCost {
    repairs: usize,
    churn_total: u64,
    rounds_total: u64,
    max_churn: u64,
    max_normalized_churn: f64,
    max_rounds: u32,
    max_rt_leaves: u32,
}

impl StreamingCost {
    /// A collector with nothing aggregated yet.
    pub fn new() -> Self {
        StreamingCost::default()
    }

    /// Folds one repair into the aggregate.
    pub fn record(&mut self, report: &RepairReport) {
        self.repairs += 1;
        let churn = report.churn();
        self.churn_total += churn;
        self.rounds_total += u64::from(report.btv_rounds);
        self.max_churn = self.max_churn.max(churn);
        self.max_rounds = self.max_rounds.max(report.btv_rounds);
        self.max_rt_leaves = self.max_rt_leaves.max(report.rt_leaves);
        self.max_normalized_churn = self.max_normalized_churn.max(report.normalized_churn());
    }

    /// Repairs aggregated so far.
    pub fn repairs(&self) -> usize {
        self.repairs
    }

    /// The aggregate as a [`CostStats`] row.
    pub fn stats(&self) -> CostStats {
        CostStats {
            repairs: self.repairs,
            max_churn: self.max_churn,
            mean_churn: if self.repairs > 0 {
                self.churn_total as f64 / self.repairs as f64
            } else {
                0.0
            },
            max_normalized_churn: self.max_normalized_churn,
            max_rounds: self.max_rounds,
            mean_rounds: if self.repairs > 0 {
                self.rounds_total as f64 / self.repairs as f64
            } else {
                0.0
            },
            max_rt_leaves: self.max_rt_leaves,
        }
    }
}

impl HealerObserver for StreamingCost {
    fn on_delete(&mut self, report: &RepairReport) {
        self.record(report);
    }
}

/// Raw callback totals — the oracle the differential and property suites
/// compare against report aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObserverCounts {
    /// `on_insert` calls.
    pub inserts: u64,
    /// `on_delete` calls.
    pub deletes: u64,
    /// `on_repair_edge(.., added = true)` calls.
    pub edges_added: u64,
    /// `on_repair_edge(.., added = false)` calls.
    pub edges_dropped: u64,
    /// `on_batch_end` calls.
    pub batches: u64,
}

impl ObserverCounts {
    /// All-zero counts.
    pub fn new() -> Self {
        ObserverCounts::default()
    }
}

impl HealerObserver for ObserverCounts {
    fn on_insert(&mut self, _report: &InsertReport) {
        self.inserts += 1;
    }

    fn on_delete(&mut self, _report: &RepairReport) {
        self.deletes += 1;
    }

    fn on_repair_edge(&mut self, _u: NodeId, _v: NodeId, added: bool) {
        if added {
            self.edges_added += 1;
        } else {
            self.edges_dropped += 1;
        }
    }

    fn on_batch_end(&mut self, _report: &BatchReport) {
        self.batches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::{ForgivingGraph, NetworkEvent, SelfHealer};
    use fg_graph::generators;

    #[test]
    fn streaming_degree_tracks_multi_degrees_through_a_repair() {
        let g = generators::star(9);
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        let mut tracker = StreamingDegree::for_graph(&g);
        let _ = fg
            .apply_batch_observed(&[NetworkEvent::delete(NodeId::new(0))], &mut tracker)
            .unwrap();
        // Dead hub: zero image units; its ghost degree survives.
        assert_eq!(tracker.image_degree(NodeId::new(0)), 0);
        assert_eq!(tracker.ghost_degree(NodeId::new(0)), 8);
        // Every live node's tracked unit count equals the engine's
        // multigraph degree.
        for v in fg.image().iter() {
            assert_eq!(
                tracker.image_degree(v),
                i64::from(fg.multi_degree(v)),
                "unit degree mismatch at {v}"
            );
        }
        assert!(tracker.max_ratio() <= 4.0);
        assert!(tracker.worst_ratio_seen() >= tracker.max_ratio());
    }

    #[test]
    fn streaming_degree_classifies_insert_edges_as_ghost_growth() {
        let g = generators::path(3);
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        let mut tracker = StreamingDegree::for_graph(&g);
        let _ = fg
            .apply_batch_observed(
                &[NetworkEvent::insert([NodeId::new(0), NodeId::new(2)])],
                &mut tracker,
            )
            .unwrap();
        assert_eq!(tracker.ghost_degree(NodeId::new(3)), 2);
        assert_eq!(tracker.image_degree(NodeId::new(3)), 2);
        assert_eq!(tracker.ghost_degree(NodeId::new(0)), 2);
    }

    #[test]
    fn streaming_cost_matches_snapshot_cost_stats() {
        let mut fg = ForgivingGraph::from_graph(&generators::star(20)).unwrap();
        let mut streaming = StreamingCost::new();
        let mut reports = Vec::new();
        for v in 0..10u32 {
            let report = fg.delete(NodeId::new(v)).unwrap();
            streaming.record(&report);
            reports.push(report);
        }
        let snapshot = crate::cost_stats(&reports, fg.nodes_ever());
        let live = streaming.stats();
        assert_eq!(live.repairs, snapshot.repairs);
        assert_eq!(live.max_churn, snapshot.max_churn);
        assert_eq!(live.max_rounds, snapshot.max_rounds);
        assert_eq!(live.max_rt_leaves, snapshot.max_rt_leaves);
        assert!((live.mean_churn - snapshot.mean_churn).abs() < 1e-9);
        // `nodes_ever` is constant over a pure-deletion run, so even the
        // normalized envelopes coincide.
        assert!((live.max_normalized_churn - snapshot.max_normalized_churn).abs() < 1e-9);
    }

    #[test]
    fn observer_counts_match_batch_report() {
        let mut fg = ForgivingGraph::from_graph(&generators::star(12)).unwrap();
        let mut counts = ObserverCounts::new();
        let batch = fg
            .apply_batch_observed(
                &[
                    NetworkEvent::delete(NodeId::new(0)),
                    NetworkEvent::insert([NodeId::new(1), NodeId::new(2)]),
                    NetworkEvent::delete(NodeId::new(1)),
                ],
                &mut counts,
            )
            .unwrap();
        assert_eq!(counts.inserts, batch.inserts);
        assert_eq!(counts.deletes, batch.deletes);
        assert_eq!(counts.edges_added, batch.edges_added);
        assert_eq!(counts.edges_dropped, batch.edges_dropped);
        assert_eq!(counts.batches, 1);
    }
}

//! # fg-metrics — measuring the Forgiving Graph's guarantees
//!
//! Executable versions of the paper's success metrics (Figure 1):
//!
//! 1. **Degree increase** — [`degree_stats`] / [`ratio_histogram`]
//!    (Theorem 1.1: factor ≤ 3; this implementation's hard envelope is 4,
//!    see DESIGN.md §2),
//! 2. **Network stretch** — [`stretch_exact`] / [`stretch_sampled`]
//!    (Theorem 1.2: factor ≤ ⌈log₂ n⌉),
//! 3. **Repair cost** — [`cost_stats`] over the engine's repair reports
//!    (Theorem 1.3: `O(d log n)` work),
//!
//! plus [`measure`] for one-call health summaries, [`Table`] for the
//! markdown/CSV tables that EXPERIMENTS.md embeds, and the *streaming*
//! collectors ([`StreamingDegree`], [`StreamingCost`],
//! [`ObserverCounts`]) that maintain the same quantities from
//! `fg_core::HealerObserver` callbacks instead of snapshot re-traversal.
//!
//! ## Example
//!
//! ```
//! use fg_core::ForgivingGraph;
//! use fg_graph::{generators, NodeId};
//!
//! let mut fg = ForgivingGraph::from_graph(&generators::star(17))?;
//! fg.delete(NodeId::new(0))?;
//! let health = fg_metrics::measure(&fg);
//! assert!(health.connected);
//! assert!(health.stretch.max <= fg.stretch_bound() as f64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod degree;
mod repair;
mod streaming;
mod stretch;
mod summary;
mod table;

pub use degree::{degree_stats, ratio_histogram, DegreeStats};
pub use repair::{cost_stats, CostStats};
pub use streaming::{ObserverCounts, StreamingCost, StreamingDegree};
pub use stretch::{
    stretch_auto, stretch_exact, stretch_from_sources, stretch_sampled, StretchStats,
};
pub use summary::{
    measure, measure_sampled, HealthSummary, DEFAULT_EXACT_THRESHOLD, DEFAULT_STRETCH_SAMPLES,
};
pub use table::{f2, f3, Table};

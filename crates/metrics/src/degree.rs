//! Degree-increase measurement (the paper's success metric 1).
//!
//! For every live node, compare its healed-network degree against its
//! `G'` degree. Theorem 1.1 bounds the ratio by 3 (this implementation's
//! provable envelope is 4 — see DESIGN.md §2 and experiment E1).

use fg_graph::{Graph, NodeId};

/// Aggregated degree-increase statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Largest `deg_G / deg_G'` ratio over live nodes.
    pub max_ratio: f64,
    /// Mean ratio.
    pub mean_ratio: f64,
    /// A node achieving `max_ratio`.
    pub worst_node: Option<NodeId>,
    /// How many live nodes exceed ratio 3 (the paper's claimed constant).
    pub above_three: usize,
    /// Number of live nodes measured.
    pub nodes: usize,
    /// Maximum absolute healed degree.
    pub max_degree: usize,
}

/// Measures degree ratios of `image` against `ghost` over live nodes.
/// Nodes with ghost degree 0 are skipped (nothing to compare).
pub fn degree_stats(image: &Graph, ghost: &Graph) -> DegreeStats {
    let mut stats = DegreeStats {
        max_ratio: 0.0,
        mean_ratio: 0.0,
        worst_node: None,
        above_three: 0,
        nodes: 0,
        max_degree: 0,
    };
    let mut total = 0.0;
    for v in image.iter() {
        let dg = ghost.degree(v);
        if dg == 0 {
            continue;
        }
        let di = image.degree(v);
        let ratio = di as f64 / dg as f64;
        stats.nodes += 1;
        total += ratio;
        stats.max_degree = stats.max_degree.max(di);
        if ratio > stats.max_ratio {
            stats.max_ratio = ratio;
            stats.worst_node = Some(v);
        }
        if ratio > 3.0 + 1e-9 {
            stats.above_three += 1;
        }
    }
    if stats.nodes > 0 {
        stats.mean_ratio = total / stats.nodes as f64;
    }
    stats
}

/// Histogram of degree ratios in fixed buckets `[0,1], (1,2], (2,3],
/// (3,4], >4` — the shape E1 reports.
pub fn ratio_histogram(image: &Graph, ghost: &Graph) -> [usize; 5] {
    let mut hist = [0usize; 5];
    for v in image.iter() {
        let dg = ghost.degree(v);
        if dg == 0 {
            continue;
        }
        let ratio = image.degree(v) as f64 / dg as f64;
        let bucket = if ratio <= 1.0 {
            0
        } else if ratio <= 2.0 {
            1
        } else if ratio <= 3.0 {
            2
        } else if ratio <= 4.0 {
            3
        } else {
            4
        };
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::generators;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn identical_graphs_have_ratio_one() {
        let g = generators::cycle(6);
        let s = degree_stats(&g, &g);
        assert_eq!(s.max_ratio, 1.0);
        assert_eq!(s.mean_ratio, 1.0);
        assert_eq!(s.above_three, 0);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn detects_inflated_node() {
        let ghost = generators::path(4); // degrees 1,2,2,1
        let mut image = generators::path(4);
        image.add_edge(n(0), n(2)).unwrap();
        image.add_edge(n(0), n(3)).unwrap(); // node 0: degree 3 vs 1
        let s = degree_stats(&image, &ghost);
        assert_eq!(s.max_ratio, 3.0);
        assert_eq!(s.worst_node, Some(n(0)));
        assert_eq!(s.above_three, 0, "exactly 3 is within the paper bound");
    }

    #[test]
    fn histogram_buckets() {
        let ghost = generators::star(5); // hub degree 4, leaves 1
        let mut image = generators::star(5);
        image.add_edge(n(1), n(2)).unwrap(); // leaves 1,2 → ratio 2
        let h = ratio_histogram(&image, &ghost);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[0], 3, "hub + two untouched leaves stay at ratio ≤ 1");
        assert_eq!(h[1], 2, "two leaves at ratio 2");
    }

    #[test]
    fn zero_ghost_degree_nodes_are_skipped() {
        let mut ghost = generators::path(2);
        let iso = ghost.add_node();
        let mut image = generators::path(2);
        let _ = image.add_node();
        let s = degree_stats(&image, &ghost);
        assert_eq!(s.nodes, 2);
        assert!(!image.neighbors(iso).any(|_| true));
    }
}

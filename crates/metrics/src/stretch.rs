//! Network stretch measurement (the paper's success metric 2).
//!
//! Stretch compares distances in the healed network `G` against the
//! insert-only graph `G'`:
//! `max_{x,y} dist(x, y, G) / dist(x, y, G')` over live pairs, where `G'`
//! paths may pass through deleted nodes. Theorem 1.2 bounds this by
//! `⌈log₂ n⌉`.
//!
//! This module is a thin aggregation layer over the shared query path:
//! per-source vectors come from the one BFS kernel in
//! `fg_graph::traversal`, and every pair's ratio goes through
//! [`fg_core::stretch_ratio`] — the same convention
//! `fg_core::QueryOps::stretch` serves online — so offline sweeps and
//! the live query API can never disagree on what "stretch" means (the
//! query differential suite cross-checks them pair by pair).

use fg_core::stretch_ratio;
use fg_graph::{traversal, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Aggregated stretch over a set of measured pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchStats {
    /// Largest observed stretch.
    pub max: f64,
    /// Mean over measured pairs.
    pub mean: f64,
    /// Number of (ordered-once) pairs measured.
    pub pairs: usize,
    /// A witness pair achieving `max`.
    pub worst_pair: Option<(NodeId, NodeId)>,
}

impl StretchStats {
    fn empty() -> Self {
        StretchStats {
            max: 1.0,
            mean: 1.0,
            pairs: 0,
            worst_pair: None,
        }
    }
}

/// Measures stretch from every node in `sources` to all reachable live
/// nodes. Pairs disconnected in `G'` are skipped (they are legitimately
/// disconnected); a pair connected in `G'` but not in the image is a
/// healing failure and is reported as `f64::INFINITY`.
pub fn stretch_from_sources(image: &Graph, ghost: &Graph, sources: &[NodeId]) -> StretchStats {
    let mut stats = StretchStats::empty();
    let mut total = 0.0f64;
    for &x in sources {
        if !image.contains(x) {
            continue;
        }
        let dg = traversal::bfs_distances(ghost, x);
        let di = traversal::bfs_distances(image, x);
        for y in image.iter() {
            if y <= x {
                continue;
            }
            // The ghost and image may disagree on the node universe (e.g.
            // baselines that track G' lazily); missing entries mean
            // unreachable.
            let g = dg.get(y.index()).copied().flatten();
            let i = di.get(y.index()).copied().flatten();
            let Some(ratio) = stretch_ratio(g, i) else {
                continue;
            };
            stats.pairs += 1;
            total += ratio;
            if ratio > stats.max {
                stats.max = ratio;
                stats.worst_pair = Some((x, y));
            }
        }
    }
    if stats.pairs > 0 {
        stats.mean = total / stats.pairs as f64;
    }
    stats
}

/// Exact stretch over all live pairs — `O(n·m)`; for experiment-scale
/// graphs (n ≤ a few thousand).
pub fn stretch_exact(image: &Graph, ghost: &Graph) -> StretchStats {
    let sources: Vec<NodeId> = image.iter().collect();
    stretch_from_sources(image, ghost, &sources)
}

/// Exact stretch up to `threshold` live nodes, sampled (`samples` seeded
/// BFS sources) above it — so sweeps over growing `n` never go quadratic.
///
/// This is the entry point the experiment binaries use; the threshold and
/// sample count are surfaced as their `--stretch-threshold` /
/// `--stretch-samples` flags.
pub fn stretch_auto(
    image: &Graph,
    ghost: &Graph,
    threshold: usize,
    samples: usize,
    seed: u64,
) -> StretchStats {
    if image.node_count() <= threshold {
        stretch_exact(image, ghost)
    } else {
        stretch_sampled(image, ghost, samples, seed)
    }
}

/// Sampled stretch: BFS from `samples` random live sources (seeded), which
/// measures `samples · n` pairs.
pub fn stretch_sampled(image: &Graph, ghost: &Graph, samples: usize, seed: u64) -> StretchStats {
    let mut sources: Vec<NodeId> = image.iter().collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    sources.shuffle(&mut rng);
    sources.truncate(samples);
    sources.sort_unstable();
    stretch_from_sources(image, ghost, &sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::generators;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn identical_graphs_have_stretch_one() {
        let g = generators::grid(3, 3);
        let s = stretch_exact(&g, &g);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.mean, 1.0);
        assert!(s.pairs > 0);
    }

    #[test]
    fn detour_shows_up_as_stretch() {
        // Ghost: path 0-1-2. Image: 1 deleted, 0-2 connected via 3-4.
        let ghost = generators::path(3);
        let mut image = fg_graph::Graph::with_nodes(5);
        image.remove_node(n(1)).unwrap();
        image.add_edge(n(0), n(3)).unwrap();
        image.add_edge(n(3), n(4)).unwrap();
        image.add_edge(n(4), n(2)).unwrap();
        // Only measure the pair (0, 2): both live in both graphs.
        let s = stretch_from_sources(&image, &ghost, &[n(0)]);
        // dist_G'(0,2) = 2 (through the dead node), dist_G = 3.
        let ratio_02 = 3.0 / 2.0;
        assert!((s.max - ratio_02).abs() < 1e-9, "max = {}", s.max);
        assert_eq!(s.worst_pair, Some((n(0), n(2))));
    }

    #[test]
    fn disconnection_is_infinite_stretch() {
        let ghost = generators::path(3);
        let mut image = generators::path(3);
        image.remove_edge(n(1), n(2)).unwrap();
        let s = stretch_exact(&image, &ghost);
        assert!(s.max.is_infinite());
    }

    #[test]
    fn ghost_only_pairs_are_skipped() {
        // Two components in both graphs: cross-pairs don't count.
        let mut g = fg_graph::Graph::with_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        let s = stretch_exact(&g, &g);
        assert_eq!(s.pairs, 2);
    }

    #[test]
    fn auto_switches_at_the_threshold() {
        let g = generators::connected_erdos_renyi(30, 0.1, 5);
        let exact = stretch_auto(&g, &g, 30, 4, 9);
        assert_eq!(exact, stretch_exact(&g, &g));
        let sampled = stretch_auto(&g, &g, 29, 4, 9);
        assert_eq!(sampled, stretch_sampled(&g, &g, 4, 9));
        assert!(sampled.pairs < exact.pairs);
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = generators::connected_erdos_renyi(30, 0.1, 5);
        let a = stretch_sampled(&g, &g, 5, 11);
        let b = stretch_sampled(&g, &g, 5, 11);
        assert_eq!(a, b);
    }
}

//! Repair-cost aggregation over [`RepairReport`]s — the sequential
//! engine's view of Theorem 1.3's `O(d log n)` work bound.
//!
//! (Message-level counts, the literal subject of Lemma 4, come from the
//! `fg-dist` crate's instrumented protocol runs; E3 uses both.)

use fg_core::RepairReport;

/// Aggregate statistics over a sequence of repairs.
#[derive(Debug, Clone, PartialEq)]
pub struct CostStats {
    /// Number of repairs aggregated.
    pub repairs: usize,
    /// Maximum virtual-node churn in one repair.
    pub max_churn: u64,
    /// Mean churn.
    pub mean_churn: f64,
    /// Max of `churn / (d·⌈log₂ n⌉)` — the normalized Theorem 1.3
    /// envelope; bounded by a constant if the theorem's shape holds.
    pub max_normalized_churn: f64,
    /// Maximum bottom-up merge rounds in one repair.
    pub max_rounds: u32,
    /// Mean rounds.
    pub mean_rounds: f64,
    /// Largest reconstruction tree built.
    pub max_rt_leaves: u32,
}

/// Aggregates `reports`, normalizing against `nodes_ever` (the paper's
/// `n`) for the `d log n` envelope.
pub fn cost_stats(reports: &[RepairReport], nodes_ever: usize) -> CostStats {
    let log_n = (nodes_ever.max(2) as f64).log2().ceil().max(1.0);
    let mut stats = CostStats {
        repairs: reports.len(),
        max_churn: 0,
        mean_churn: 0.0,
        max_normalized_churn: 0.0,
        max_rounds: 0,
        mean_rounds: 0.0,
        max_rt_leaves: 0,
    };
    if reports.is_empty() {
        return stats;
    }
    let mut churn_total = 0u64;
    let mut rounds_total = 0u64;
    for r in reports {
        let churn = r.churn();
        churn_total += churn;
        rounds_total += u64::from(r.btv_rounds);
        stats.max_churn = stats.max_churn.max(churn);
        stats.max_rounds = stats.max_rounds.max(r.btv_rounds);
        stats.max_rt_leaves = stats.max_rt_leaves.max(r.rt_leaves);
        let d = r.ghost_degree.max(1) as f64;
        stats.max_normalized_churn = stats.max_normalized_churn.max(churn as f64 / (d * log_n));
    }
    stats.mean_churn = churn_total as f64 / reports.len() as f64;
    stats.mean_rounds = rounds_total as f64 / reports.len() as f64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::ForgivingGraph;
    use fg_graph::{generators, NodeId};

    #[test]
    fn empty_reports() {
        let s = cost_stats(&[], 100);
        assert_eq!(s.repairs, 0);
        assert_eq!(s.max_churn, 0);
    }

    #[test]
    fn aggregates_real_repairs() {
        let mut fg = ForgivingGraph::from_graph(&generators::star(20)).unwrap();
        let mut reports = Vec::new();
        for v in 0..10u32 {
            reports.push(fg.delete(NodeId::new(v)).unwrap());
        }
        let s = cost_stats(&reports, fg.nodes_ever());
        assert_eq!(s.repairs, 10);
        assert!(s.max_churn >= s.mean_churn as u64);
        assert!(s.max_rt_leaves >= 10, "hub deletion builds a large RT");
        // The O(d log n) shape: normalized churn stays below a small
        // constant.
        assert!(
            s.max_normalized_churn < 8.0,
            "normalized churn {}",
            s.max_normalized_churn
        );
    }
}

//! Experiment table rendering: aligned markdown (for EXPERIMENTS.md) and
//! CSV (for external plotting).

use std::fmt::Write as _;

/// A simple rectangular results table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(title: &str, headers: I) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders an aligned GitHub-flavoured markdown table preceded by a
    /// bold title line.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with 2 decimals ("3.00"); infinities as "∞".
pub fn f2(x: f64) -> String {
    if x.is_infinite() {
        "∞".to_string()
    } else {
        format!("{x:.2}")
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    if x.is_infinite() {
        "∞".to_string()
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new("demo", ["n", "value"]);
        t.push_row(["8", "1.00"]);
        t.push_row(["1024", "3.14"]);
        let md = t.to_markdown();
        assert!(md.starts_with("**demo**"));
        assert!(md.contains("| n    | value |"));
        assert!(md.contains("| 1024 | 3.14  |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", ["a", "b"]);
        t.push_row(["1,5", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", ["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(4.14159), "4.14");
        assert_eq!(f3(2.0), "2.000");
        assert_eq!(f2(f64::INFINITY), "∞");
    }
}

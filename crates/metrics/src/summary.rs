//! One-call health summary of a self-healing network — the row format of
//! the E5 baseline-comparison table.

use crate::degree::{degree_stats, DegreeStats};
use crate::stretch::{stretch_auto, stretch_sampled, StretchStats};
use fg_core::SelfHealer;
use fg_graph::traversal;

/// Above this many live nodes, [`measure`] samples stretch instead of
/// running the quadratic all-pairs measurement.
pub const DEFAULT_EXACT_THRESHOLD: usize = 2048;

/// BFS sources [`measure`] uses once it switches to sampling.
pub const DEFAULT_STRETCH_SAMPLES: usize = 64;

/// A full health snapshot of a healer's network.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSummary {
    /// The healer's strategy name.
    pub healer: &'static str,
    /// Live node count.
    pub alive: usize,
    /// Nodes ever seen (`n`).
    pub nodes_ever: usize,
    /// Whether the healed network is connected.
    pub connected: bool,
    /// Stretch statistics against `G'`.
    pub stretch: StretchStats,
    /// Degree-increase statistics against `G'`.
    pub degree: DegreeStats,
    /// Healed-network diameter (largest component), if nonempty.
    pub diameter: Option<u32>,
}

/// Measures `healer` with all-pairs stretch up to
/// [`DEFAULT_EXACT_THRESHOLD`] live nodes and
/// [`DEFAULT_STRETCH_SAMPLES`]-source sampled stretch above it, so
/// large-`n` sweeps never go quadratic.
pub fn measure(healer: &dyn SelfHealer) -> HealthSummary {
    measure_inner(healer, None, 0)
}

/// Measures `healer` with sampled stretch (`samples` BFS sources).
pub fn measure_sampled(healer: &dyn SelfHealer, samples: usize, seed: u64) -> HealthSummary {
    measure_inner(healer, Some(samples), seed)
}

fn measure_inner(healer: &dyn SelfHealer, samples: Option<usize>, seed: u64) -> HealthSummary {
    let image = healer.image();
    let ghost = healer.ghost();
    let stretch = match samples {
        Some(k) => stretch_sampled(image, ghost, k, seed),
        None => stretch_auto(
            image,
            ghost,
            DEFAULT_EXACT_THRESHOLD,
            DEFAULT_STRETCH_SAMPLES,
            seed,
        ),
    };
    HealthSummary {
        healer: healer.name(),
        alive: image.node_count(),
        nodes_ever: ghost.nodes_ever(),
        connected: traversal::is_connected(image),
        stretch,
        degree: degree_stats(image, ghost),
        diameter: traversal::diameter_exact(image),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::ForgivingGraph;
    use fg_graph::{generators, NodeId};

    #[test]
    fn summary_of_attacked_star() {
        let mut fg = ForgivingGraph::from_graph(&generators::star(9)).unwrap();
        let _ = fg.delete(NodeId::new(0)).unwrap();
        let s = measure(&fg);
        assert_eq!(s.healer, "forgiving-graph");
        assert_eq!(s.alive, 8);
        assert_eq!(s.nodes_ever, 9);
        assert!(s.connected);
        // Star neighbours sat at ghost distance 2; the haft(8) RT puts
        // them within 2·3 hops, so stretch ≤ 3 and diameter ≤ 6.
        assert!(s.stretch.max <= 3.0);
        assert!(s.diameter.unwrap() <= 6);
        assert!(s.degree.max_ratio <= 3.0);
    }

    #[test]
    fn sampled_matches_exact_on_small_graph() {
        let mut fg = ForgivingGraph::from_graph(&generators::cycle(10)).unwrap();
        let _ = fg.delete(NodeId::new(3)).unwrap();
        let exact = measure(&fg);
        let sampled = measure_sampled(&fg, 9, 1); // all 9 live sources
        assert_eq!(exact.stretch.max, sampled.stretch.max);
    }
}

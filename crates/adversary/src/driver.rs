//! The attack loop: run an adversary against any self-healing network.

use crate::strategies::{Adversary, AttackView};
use fg_core::{BatchReport, EngineError, NetworkEvent, SelfHealer};

/// Outcome of an attack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackLog {
    /// Every event that was applied, in order.
    pub events: Vec<NetworkEvent>,
    /// How many of them were deletions.
    pub deletions: usize,
    /// How many were insertions.
    pub insertions: usize,
    /// The per-op outcomes and aggregate envelope accounting of the run —
    /// what every repair actually did, straight from the typed API.
    pub report: BatchReport,
}

impl AttackLog {
    /// Total number of adversarial steps.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the adversary made no move at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Runs `adversary` against `healer` for at most `max_steps` moves (or
/// until the adversary gives up), applying each event as it is produced —
/// the adversary sees the healed network after every repair, exactly as in
/// the paper's model. The returned log carries every event plus the typed
/// outcome of every operation.
///
/// # Errors
///
/// Propagates the first engine error; strategies only emit legal moves,
/// so an error indicates a healer bug.
pub fn run_attack(
    healer: &mut dyn SelfHealer,
    adversary: &mut dyn Adversary,
    max_steps: usize,
) -> Result<AttackLog, EngineError> {
    let mut log = AttackLog {
        events: Vec::new(),
        deletions: 0,
        insertions: 0,
        report: BatchReport::new(),
    };
    for _ in 0..max_steps {
        let event = {
            let view = AttackView {
                image: healer.image(),
                ghost: healer.ghost(),
            };
            match adversary.next_event(view) {
                Some(e) => e,
                None => break,
            }
        };
        let outcome = healer.apply_event(&event)?;
        log.report.push(outcome);
        log.events.push(event);
    }
    // Single source of truth: the counters mirror the batch report.
    log.deletions = log.report.deletes as usize;
    log.insertions = log.report.inserts as usize;
    Ok(log)
}

/// Replays a recorded event sequence against a healer — used to subject
/// different healers (or the distributed engine) to the *same* attack —
/// returning the per-op outcomes and aggregates.
///
/// # Errors
///
/// The first engine error, wrapped as [`EngineError::AtEvent`] with the
/// index of the failing event.
pub fn replay(
    healer: &mut dyn SelfHealer,
    events: &[NetworkEvent],
) -> Result<BatchReport, EngineError> {
    healer.apply_batch(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{MaxDegreeDeleter, RandomDeleter};
    use fg_core::ForgivingGraph;
    use fg_graph::{generators, traversal, NodeId};

    #[test]
    fn attack_runs_until_floor() {
        let mut fg = ForgivingGraph::from_graph(&generators::cycle(10)).unwrap();
        let mut adv = RandomDeleter::new(1, 4);
        let log = run_attack(&mut fg, &mut adv, 100).unwrap();
        assert_eq!(log.deletions, 6);
        assert_eq!(log.insertions, 0);
        assert_eq!(log.report.deletes, 6);
        assert_eq!(log.report.repairs().count(), 6);
        assert_eq!(fg.image().node_count(), 4);
        assert!(traversal::is_connected(fg.image()));
        fg.check_invariants().unwrap();
    }

    #[test]
    fn attack_respects_max_steps() {
        let mut fg = ForgivingGraph::from_graph(&generators::cycle(10)).unwrap();
        let mut adv = MaxDegreeDeleter::new(1);
        let log = run_attack(&mut fg, &mut adv, 3).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(fg.image().node_count(), 7);
    }

    #[test]
    fn replay_reproduces_state_and_outcomes() {
        let mut a = ForgivingGraph::from_graph(&generators::grid(3, 3)).unwrap();
        let mut adv = RandomDeleter::new(9, 3);
        let log = run_attack(&mut a, &mut adv, 100).unwrap();

        let mut b = ForgivingGraph::from_graph(&generators::grid(3, 3)).unwrap();
        let replayed = replay(&mut b, &log.events).unwrap();
        assert_eq!(a, b);
        // Replaying produces the exact same typed outcomes.
        assert_eq!(replayed, log.report);
    }

    #[test]
    fn replay_pinpoints_illegal_events() {
        let mut fg = ForgivingGraph::from_graph(&generators::path(4)).unwrap();
        let events = vec![
            NetworkEvent::delete(NodeId::new(1)),
            NetworkEvent::delete(NodeId::new(1)),
        ];
        let err = replay(&mut fg, &events).unwrap_err();
        match err {
            EngineError::AtEvent { index, .. } => assert_eq!(index, 1),
            other => panic!("expected AtEvent, got {other:?}"),
        }
    }
}

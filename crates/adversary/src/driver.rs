//! The attack loop: run an adversary against any self-healing network.

use crate::strategies::{Adversary, AttackView};
use fg_core::{EngineError, NetworkEvent, SelfHealer};

/// Outcome of an attack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackLog {
    /// Every event that was applied, in order.
    pub events: Vec<NetworkEvent>,
    /// How many of them were deletions.
    pub deletions: usize,
    /// How many were insertions.
    pub insertions: usize,
}

impl AttackLog {
    /// Total number of adversarial steps.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the adversary made no move at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Runs `adversary` against `healer` for at most `max_steps` moves (or
/// until the adversary gives up), applying each event as it is produced —
/// the adversary sees the healed network after every repair, exactly as in
/// the paper's model.
///
/// # Errors
///
/// Propagates the first engine error; strategies only emit legal moves,
/// so an error indicates a healer bug.
pub fn run_attack(
    healer: &mut dyn SelfHealer,
    adversary: &mut dyn Adversary,
    max_steps: usize,
) -> Result<AttackLog, EngineError> {
    let mut log = AttackLog {
        events: Vec::new(),
        deletions: 0,
        insertions: 0,
    };
    for _ in 0..max_steps {
        let event = {
            let view = AttackView {
                image: healer.image(),
                ghost: healer.ghost(),
            };
            match adversary.next_event(view) {
                Some(e) => e,
                None => break,
            }
        };
        healer.apply_event(&event)?;
        if event.is_delete() {
            log.deletions += 1;
        } else {
            log.insertions += 1;
        }
        log.events.push(event);
    }
    Ok(log)
}

/// Replays a recorded event sequence against a healer — used to subject
/// different healers (or the distributed engine) to the *same* attack.
///
/// # Errors
///
/// Propagates the first engine error.
pub fn replay(healer: &mut dyn SelfHealer, events: &[NetworkEvent]) -> Result<(), EngineError> {
    for e in events {
        healer.apply_event(e)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{MaxDegreeDeleter, RandomDeleter};
    use fg_core::ForgivingGraph;
    use fg_graph::{generators, traversal};

    #[test]
    fn attack_runs_until_floor() {
        let mut fg = ForgivingGraph::from_graph(&generators::cycle(10)).unwrap();
        let mut adv = RandomDeleter::new(1, 4);
        let log = run_attack(&mut fg, &mut adv, 100).unwrap();
        assert_eq!(log.deletions, 6);
        assert_eq!(log.insertions, 0);
        assert_eq!(fg.image().node_count(), 4);
        assert!(traversal::is_connected(fg.image()));
        fg.check_invariants().unwrap();
    }

    #[test]
    fn attack_respects_max_steps() {
        let mut fg = ForgivingGraph::from_graph(&generators::cycle(10)).unwrap();
        let mut adv = MaxDegreeDeleter::new(1);
        let log = run_attack(&mut fg, &mut adv, 3).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(fg.image().node_count(), 7);
    }

    #[test]
    fn replay_reproduces_state() {
        let mut a = ForgivingGraph::from_graph(&generators::grid(3, 3)).unwrap();
        let mut adv = RandomDeleter::new(9, 3);
        let log = run_attack(&mut a, &mut adv, 100).unwrap();

        let mut b = ForgivingGraph::from_graph(&generators::grid(3, 3)).unwrap();
        replay(&mut b, &log.events).unwrap();
        assert_eq!(a, b);
    }
}

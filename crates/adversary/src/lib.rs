//! # fg-adversary — omniscient attack strategies
//!
//! The Forgiving Graph's adversary (paper §2) sees the whole topology and
//! the healing algorithm, and per step either deletes any node or inserts
//! a node with arbitrary attachments. This crate provides a library of
//! such adversaries — random failure, targeted hub attacks, articulation-
//! point attacks, the Theorem 2 star construction, and realistic churn —
//! plus the driver loop that runs them against any
//! [`fg_core::SelfHealer`].
//!
//! ## Example
//!
//! ```
//! use fg_adversary::{run_attack, MaxDegreeDeleter};
//! use fg_core::ForgivingGraph;
//! use fg_graph::{generators, traversal};
//!
//! let mut fg = ForgivingGraph::from_graph(&generators::barabasi_albert(40, 2, 1))?;
//! let mut attack = MaxDegreeDeleter::new(10);
//! let log = run_attack(&mut fg, &mut attack, 1_000)?;
//! assert_eq!(log.deletions, 30);
//! assert!(traversal::is_connected(fg.image()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod strategies;

pub use driver::{replay, run_attack, AttackLog};
pub use strategies::{
    articulation_points, Adversary, AttackView, ChurnAdversary, Composite, CutPointDeleter,
    MaxDegreeDeleter, PreferentialInserter, RandomDeleter, StarSmash,
};

//! Omniscient attack strategies.
//!
//! The paper's adversary "knows the network topology and our algorithm"
//! and may, per step, delete any node or insert a node with arbitrary
//! connections. Every strategy here sees the full healed network (and the
//! ghost graph) and emits the next [`NetworkEvent`]. All randomness is
//! seeded `ChaCha8`, so attack traces are reproducible.

use fg_core::NetworkEvent;
use fg_graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The adversary's omniscient view before each move.
#[derive(Debug, Clone, Copy)]
pub struct AttackView<'a> {
    /// The healed network as it currently exists.
    pub image: &'a Graph,
    /// The insert-only graph `G'`.
    pub ghost: &'a Graph,
}

impl<'a> AttackView<'a> {
    /// Live nodes in id order.
    pub fn alive(&self) -> Vec<NodeId> {
        self.image.iter().collect()
    }
}

/// An adversary: a stream of attack moves computed from full knowledge of
/// the network.
pub trait Adversary {
    /// Strategy name for experiment tables.
    fn name(&self) -> &'static str;

    /// The next move, or `None` when the strategy is done (e.g. the
    /// network is too small to keep attacking).
    fn next_event(&mut self, view: AttackView<'_>) -> Option<NetworkEvent>;
}

/// Deletes a uniformly random live node — the "random failure" regime the
/// cascading-failure literature studies.
#[derive(Debug)]
pub struct RandomDeleter {
    rng: ChaCha8Rng,
    /// Stop when this many nodes remain.
    pub floor: usize,
}

impl RandomDeleter {
    /// Creates the strategy with a deterministic seed; attacks until only
    /// `floor` nodes remain.
    pub fn new(seed: u64, floor: usize) -> Self {
        RandomDeleter {
            rng: ChaCha8Rng::seed_from_u64(seed),
            floor: floor.max(1),
        }
    }
}

impl Adversary for RandomDeleter {
    fn name(&self) -> &'static str {
        "random-delete"
    }

    fn next_event(&mut self, view: AttackView<'_>) -> Option<NetworkEvent> {
        let alive = view.alive();
        if alive.len() <= self.floor {
            return None;
        }
        let v = alive[self.rng.gen_range(0..alive.len())];
        Some(NetworkEvent::delete(v))
    }
}

/// Always deletes the highest-degree live node (ties to the smallest id) —
/// the classic targeted attack on heavy-tailed networks.
#[derive(Debug)]
pub struct MaxDegreeDeleter {
    /// Stop when this many nodes remain.
    pub floor: usize,
}

impl MaxDegreeDeleter {
    /// Attacks hubs until only `floor` nodes remain.
    pub fn new(floor: usize) -> Self {
        MaxDegreeDeleter {
            floor: floor.max(1),
        }
    }
}

impl Adversary for MaxDegreeDeleter {
    fn name(&self) -> &'static str {
        "max-degree-delete"
    }

    fn next_event(&mut self, view: AttackView<'_>) -> Option<NetworkEvent> {
        let alive = view.alive();
        if alive.len() <= self.floor {
            return None;
        }
        let v = alive
            .into_iter()
            .max_by_key(|&v| (view.image.degree(v), std::cmp::Reverse(v)))?;
        Some(NetworkEvent::delete(v))
    }
}

/// Deletes cut vertices (articulation points) of the *ghost* graph first —
/// the nodes whose loss would disconnect `G'` itself — falling back to
/// max degree. This maximises the healing work because the victim's
/// neighbourhood spans otherwise-distant regions.
#[derive(Debug)]
pub struct CutPointDeleter {
    /// Stop when this many nodes remain.
    pub floor: usize,
}

impl CutPointDeleter {
    /// Attacks articulation points until only `floor` nodes remain.
    pub fn new(floor: usize) -> Self {
        CutPointDeleter {
            floor: floor.max(1),
        }
    }
}

impl Adversary for CutPointDeleter {
    fn name(&self) -> &'static str {
        "cut-point-delete"
    }

    fn next_event(&mut self, view: AttackView<'_>) -> Option<NetworkEvent> {
        let alive = view.alive();
        if alive.len() <= self.floor {
            return None;
        }
        let cuts = articulation_points(view.image);
        let v = cuts
            .into_iter()
            .max_by_key(|&v| (view.image.degree(v), std::cmp::Reverse(v)))
            .or_else(|| {
                alive
                    .into_iter()
                    .max_by_key(|&v| (view.image.degree(v), std::cmp::Reverse(v)))
            })?;
        Some(NetworkEvent::delete(v))
    }
}

/// The Theorem 2 adversary: grow a star by inserting `spokes` nodes all
/// attached to one victim, then delete the victim. Repeats with a fresh
/// victim each round. This is the workload that forces the
/// degree-vs-stretch trade-off.
#[derive(Debug)]
pub struct StarSmash {
    rng: ChaCha8Rng,
    spokes: usize,
    inserted: usize,
    victim: Option<NodeId>,
    rounds: usize,
}

impl StarSmash {
    /// Each round inserts `spokes` spoke nodes onto a random victim and
    /// then deletes the victim; runs `rounds` rounds.
    pub fn new(seed: u64, spokes: usize, rounds: usize) -> Self {
        StarSmash {
            rng: ChaCha8Rng::seed_from_u64(seed),
            spokes: spokes.max(1),
            inserted: 0,
            victim: None,
            rounds,
        }
    }
}

impl Adversary for StarSmash {
    fn name(&self) -> &'static str {
        "star-smash"
    }

    fn next_event(&mut self, view: AttackView<'_>) -> Option<NetworkEvent> {
        if self.rounds == 0 {
            return None;
        }
        let alive = view.alive();
        if alive.is_empty() {
            return None;
        }
        let victim = match self.victim {
            Some(v) if view.image.contains(v) => v,
            _ => {
                let v = alive[self.rng.gen_range(0..alive.len())];
                self.victim = Some(v);
                self.inserted = 0;
                v
            }
        };
        if self.inserted < self.spokes {
            self.inserted += 1;
            Some(NetworkEvent::insert([victim]))
        } else {
            self.victim = None;
            self.rounds -= 1;
            Some(NetworkEvent::delete(victim))
        }
    }
}

/// Mixed churn: deletes with probability `p_delete`, otherwise inserts a
/// node attached to a random subset of live nodes (1 to `max_fan`).
/// Models realistic peer-to-peer membership churn.
#[derive(Debug)]
pub struct ChurnAdversary {
    rng: ChaCha8Rng,
    /// Probability of a deletion per step.
    pub p_delete: f64,
    /// Maximum attachment fan for insertions.
    pub max_fan: usize,
    /// Stop when this many nodes remain.
    pub floor: usize,
    steps_left: usize,
}

impl ChurnAdversary {
    /// Runs `steps` steps of seeded churn.
    pub fn new(seed: u64, p_delete: f64, max_fan: usize, floor: usize, steps: usize) -> Self {
        assert!((0.0..=1.0).contains(&p_delete), "probability out of range");
        ChurnAdversary {
            rng: ChaCha8Rng::seed_from_u64(seed),
            p_delete,
            max_fan: max_fan.max(1),
            floor: floor.max(2),
            steps_left: steps,
        }
    }
}

impl Adversary for ChurnAdversary {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn next_event(&mut self, view: AttackView<'_>) -> Option<NetworkEvent> {
        if self.steps_left == 0 {
            return None;
        }
        self.steps_left -= 1;
        let alive = view.alive();
        if alive.len() > self.floor && self.rng.gen_bool(self.p_delete) {
            let v = alive[self.rng.gen_range(0..alive.len())];
            Some(NetworkEvent::delete(v))
        } else {
            let fan = self.rng.gen_range(1..=self.max_fan.min(alive.len()));
            let mut nbrs = alive;
            nbrs.shuffle(&mut self.rng);
            nbrs.truncate(fan);
            Some(NetworkEvent::insert(nbrs))
        }
    }
}

/// Preferential-attachment growth: inserts nodes attached to
/// degree-proportional targets, modelling organic network growth between
/// attacks (use inside a [`crate::Composite`]).
#[derive(Debug)]
pub struct PreferentialInserter {
    rng: ChaCha8Rng,
    fan: usize,
    steps_left: usize,
}

impl PreferentialInserter {
    /// Inserts `steps` nodes, each attached to `fan` degree-weighted
    /// targets.
    pub fn new(seed: u64, fan: usize, steps: usize) -> Self {
        PreferentialInserter {
            rng: ChaCha8Rng::seed_from_u64(seed),
            fan: fan.max(1),
            steps_left: steps,
        }
    }
}

impl Adversary for PreferentialInserter {
    fn name(&self) -> &'static str {
        "preferential-insert"
    }

    fn next_event(&mut self, view: AttackView<'_>) -> Option<NetworkEvent> {
        if self.steps_left == 0 {
            return None;
        }
        let alive = view.alive();
        if alive.is_empty() {
            return None;
        }
        self.steps_left -= 1;
        // Degree-proportional sampling without replacement.
        let mut chosen: Vec<NodeId> = Vec::new();
        let mut guard = 0;
        while chosen.len() < self.fan.min(alive.len()) && guard < 50 * self.fan {
            guard += 1;
            let total: usize = alive.iter().map(|&v| view.image.degree(v) + 1).sum();
            let mut pick = self.rng.gen_range(0..total);
            for &v in &alive {
                let w = view.image.degree(v) + 1;
                if pick < w {
                    if !chosen.contains(&v) {
                        chosen.push(v);
                    }
                    break;
                }
                pick -= w;
            }
        }
        Some(NetworkEvent::insert(chosen))
    }
}

/// Runs a sequence of adversaries back to back.
pub struct Composite {
    name: &'static str,
    phases: Vec<Box<dyn Adversary>>,
    current: usize,
}

impl std::fmt::Debug for Composite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composite")
            .field("name", &self.name)
            .field("phases", &self.phases.len())
            .field("current", &self.current)
            .finish()
    }
}

impl Composite {
    /// Chains `phases` under a combined display name.
    pub fn new(name: &'static str, phases: Vec<Box<dyn Adversary>>) -> Self {
        Composite {
            name,
            phases,
            current: 0,
        }
    }
}

impl Adversary for Composite {
    fn name(&self) -> &'static str {
        self.name
    }

    fn next_event(&mut self, view: AttackView<'_>) -> Option<NetworkEvent> {
        while self.current < self.phases.len() {
            if let Some(e) = self.phases[self.current].next_event(AttackView {
                image: view.image,
                ghost: view.ghost,
            }) {
                return Some(e);
            }
            self.current += 1;
        }
        None
    }
}

/// A DFS frame: (node, parent, neighbour list, next index, child count).
type DfsFrame = (NodeId, Option<NodeId>, Vec<NodeId>, usize, usize);

/// Articulation points of the live graph (Tarjan's low-link DFS, iterative).
pub fn articulation_points(g: &Graph) -> Vec<NodeId> {
    let n = g.nodes_ever();
    let mut disc = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut is_cut = vec![false; n];
    let mut timer = 1u32;

    for root in g.iter() {
        if visited[root.index()] {
            continue;
        }
        // Iterative DFS with explicit frames.
        let mut stack: Vec<DfsFrame> = Vec::new();
        visited[root.index()] = true;
        disc[root.index()] = timer;
        low[root.index()] = timer;
        timer += 1;
        stack.push((root, None, g.neighbor_vec(root), 0, 0));
        while let Some(frame) = stack.last_mut() {
            let u = frame.0;
            let parent = frame.1;
            if frame.3 < frame.2.len() {
                let w = frame.2[frame.3];
                frame.3 += 1;
                if Some(w) == parent {
                    continue;
                }
                if visited[w.index()] {
                    low[u.index()] = low[u.index()].min(disc[w.index()]);
                    continue;
                }
                visited[w.index()] = true;
                disc[w.index()] = timer;
                low[w.index()] = timer;
                timer += 1;
                frame.4 += 1;
                stack.push((w, Some(u), g.neighbor_vec(w), 0, 0));
            } else {
                let children = frame.4;
                stack.pop();
                if let Some(pframe) = stack.last_mut() {
                    let p = pframe.0;
                    low[p.index()] = low[p.index()].min(low[u.index()]);
                    if pframe.1.is_some() && low[u.index()] >= disc[p.index()] {
                        is_cut[p.index()] = true;
                    }
                } else if children >= 2 {
                    // u is the DFS root: cut iff it has ≥ 2 DFS children.
                    is_cut[u.index()] = true;
                }
            }
        }
    }
    g.iter().filter(|v| is_cut[v.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::generators;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn view(g: &Graph) -> AttackView<'_> {
        AttackView { image: g, ghost: g }
    }

    #[test]
    fn articulation_points_of_path_and_star() {
        let p = generators::path(5);
        assert_eq!(
            articulation_points(&p),
            vec![n(1), n(2), n(3)],
            "interior path nodes are cuts"
        );
        let s = generators::star(6);
        assert_eq!(articulation_points(&s), vec![n(0)], "hub is the only cut");
        let c = generators::cycle(6);
        assert!(articulation_points(&c).is_empty(), "cycles have no cuts");
    }

    #[test]
    fn articulation_points_respect_components() {
        let mut g = generators::path(3);
        // Second component: a triangle (no cuts).
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(a, c).unwrap();
        assert_eq!(articulation_points(&g), vec![n(1)]);
    }

    #[test]
    fn max_degree_targets_the_hub() {
        let g = generators::star(6);
        let mut adv = MaxDegreeDeleter::new(1);
        let e = adv.next_event(view(&g)).unwrap();
        assert_eq!(e, NetworkEvent::delete(n(0)));
    }

    #[test]
    fn random_deleter_respects_floor() {
        let g = generators::path(3);
        let mut adv = RandomDeleter::new(1, 3);
        assert!(adv.next_event(view(&g)).is_none());
        let mut adv = RandomDeleter::new(1, 2);
        assert!(adv.next_event(view(&g)).is_some());
    }

    #[test]
    fn star_smash_inserts_then_deletes() {
        let g = generators::path(3);
        let mut adv = StarSmash::new(5, 3, 1);
        let mut inserts = 0;
        let mut deletes = 0;
        for _ in 0..10 {
            match adv.next_event(view(&g)) {
                Some(NetworkEvent::Insert { .. }) => inserts += 1,
                Some(NetworkEvent::Delete { .. }) => deletes += 1,
                None => break,
            }
        }
        assert_eq!(inserts, 3);
        assert_eq!(deletes, 1);
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let g = generators::cycle(8);
        let collect = |seed| {
            let mut adv = ChurnAdversary::new(seed, 0.5, 3, 2, 10);
            let mut events = Vec::new();
            while let Some(e) = adv.next_event(view(&g)) {
                events.push(e);
            }
            events
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn preferential_inserter_prefers_hubs() {
        let g = generators::star(20);
        let mut adv = PreferentialInserter::new(3, 1, 200);
        let mut hub_hits = 0;
        for _ in 0..200 {
            if let Some(NetworkEvent::Insert { neighbors }) = adv.next_event(view(&g)) {
                if neighbors.contains(&n(0)) {
                    hub_hits += 1;
                }
            }
        }
        // Degree-proportional weight of the hub is 20/58 ≈ 34%; uniform
        // sampling would hit it only 5% of the time (10/200).
        assert!(hub_hits > 40, "hub should dominate: {hub_hits}/200");
    }

    #[test]
    fn composite_chains_phases() {
        let g = generators::cycle(5);
        let mut adv = Composite::new(
            "grow-then-smash",
            vec![
                Box::new(PreferentialInserter::new(1, 1, 2)),
                Box::new(MaxDegreeDeleter::new(4)),
            ],
        );
        let mut kinds = Vec::new();
        for _ in 0..4 {
            match adv.next_event(view(&g)) {
                Some(e) => kinds.push(e.is_delete()),
                None => break,
            }
        }
        assert_eq!(kinds, vec![false, false, true, true]);
    }

    #[test]
    fn cut_point_deleter_picks_bridge_node() {
        // Two triangles joined through node 2: node 2 is the cut.
        let mut g = Graph::with_nodes(5);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
            g.add_edge(n(a), n(b)).unwrap();
        }
        let mut adv = CutPointDeleter::new(1);
        assert_eq!(adv.next_event(view(&g)), Some(NetworkEvent::delete(n(2))));
    }
}

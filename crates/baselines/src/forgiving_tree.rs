//! The Forgiving Tree (Hayes, Rustagi, Saia, Trehan; PODC 2008) — the
//! predecessor the paper improves on.
//!
//! The original Forgiving Tree maintains a spanning tree of the network;
//! when a node dies it is replaced by a balanced "reconstruction tree" of
//! its tree-children attached to its tree-parent. Its guarantees:
//!
//! * degree increases by at most an **additive** 3,
//! * **diameter** increases by at most a factor `O(log Δ)`,
//! * it needs an `O(n log n)`-message **initialisation** phase, and
//! * it handles **deletions only**.
//!
//! This baseline reproduces those semantics by running the Forgiving
//! Graph engine *restricted to a spanning tree* (exactly the lineage of
//! the two papers: the Forgiving Graph generalises reconstruction trees
//! from one spanning tree to every edge). Non-tree edges ride along
//! unprotected: when either endpoint dies they vanish without repair, so
//! distances that relied on them degrade to tree routes — which is why
//! the Forgiving Tree has no `G'`-relative stretch bound, only a diameter
//! bound, and why E5 shows it losing to the Forgiving Graph on stretch.
//!
//! Insertions (which PODC 2008 does not support) are modelled the way a
//! deployment would bolt them on: the new node becomes a tree leaf under
//! its first listed neighbour; its remaining edges are unprotected
//! non-tree edges. E9 measures the resulting degradation.

use fg_core::{EngineError, ForgivingGraph, InsertReport, RepairReport, SelfHealer};
use fg_graph::{traversal, Graph, NodeId};
use std::collections::BTreeSet;

/// The Forgiving Tree baseline healer.
#[derive(Debug, Clone, PartialEq)]
pub struct ForgivingTree {
    /// Forgiving-Graph engine over the spanning tree only.
    tree: ForgivingGraph,
    /// Live non-tree edges (unprotected).
    side: Graph,
    /// The full insert-only graph `G'` (tree + non-tree).
    ghost: Graph,
    /// Rebuilt combined view: tree image ∪ side edges.
    combined: Graph,
    /// Simulated preprocessing cost: the PODC 2008 initialisation sends
    /// `O(n log n)` messages to distribute wills; the Forgiving Graph
    /// needs none (E9 reports both).
    init_messages: u64,
}

impl ForgivingTree {
    /// Adopts `g`, paying the initialisation phase: a BFS spanning tree
    /// rooted at the smallest id.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected or has tombstoned nodes — the
    /// Forgiving Tree needs a spanning tree to exist.
    pub fn from_graph(g: &Graph) -> Self {
        assert_eq!(
            g.node_count(),
            g.nodes_ever(),
            "G0 must not contain tombstoned nodes"
        );
        assert!(
            traversal::is_connected(g),
            "the Forgiving Tree requires a connected G0"
        );
        let root = g.iter().next().expect("non-empty graph");
        let parents = traversal::bfs_parents(g, root);
        let mut tree_graph = Graph::with_nodes(g.nodes_ever());
        let mut side = Graph::with_nodes(g.nodes_ever());
        for e in g.edges() {
            let (u, v) = e.endpoints();
            let is_tree = parents[u.index()] == Some(v) || parents[v.index()] == Some(u);
            if is_tree {
                tree_graph.add_edge(u, v).expect("fresh tree edge");
            } else {
                side.add_edge(u, v).expect("fresh side edge");
            }
        }
        let tree = ForgivingGraph::from_graph(&tree_graph).expect("valid tree graph");
        let n = g.node_count().max(2) as u64;
        let init_messages = n * (64 - (n - 1).leading_zeros() as u64).max(1);
        let mut ft = ForgivingTree {
            tree,
            side,
            ghost: g.clone(),
            combined: Graph::new(),
            init_messages,
        };
        ft.rebuild();
        ft
    }

    /// The simulated `O(n log n)` initialisation message count.
    pub fn init_messages(&self) -> u64 {
        self.init_messages
    }

    /// The protected spanning-tree part of the network.
    pub fn tree_image(&self) -> &Graph {
        self.tree.image()
    }

    fn rebuild(&mut self) {
        let mut combined = Graph::with_nodes(self.ghost.nodes_ever());
        for i in 0..self.ghost.nodes_ever() {
            let v = NodeId::new(i as u32);
            if !self.tree.is_alive(v) {
                combined.remove_node(v).expect("fresh node");
            }
        }
        for e in self.tree.image().edges() {
            let _ = combined.ensure_edge(e.lo(), e.hi());
        }
        for e in self.side.edges() {
            let _ = combined.ensure_edge(e.lo(), e.hi());
        }
        self.combined = combined;
    }
}

impl SelfHealer for ForgivingTree {
    fn name(&self) -> &'static str {
        "forgiving-tree"
    }

    fn insert(&mut self, neighbors: &[NodeId]) -> Result<InsertReport, EngineError> {
        if neighbors.is_empty() {
            return Err(EngineError::EmptyNeighbourhood);
        }
        let mut seen = BTreeSet::new();
        for &x in neighbors {
            if !seen.insert(x) {
                return Err(EngineError::DuplicateNeighbour(x));
            }
            if !self.tree.is_alive(x) {
                return Err(EngineError::NotAlive(x));
            }
        }
        // Tree leaf under the first neighbour; the rest are unprotected.
        let v = self.tree.insert(&neighbors[..1])?;
        let gv = self.ghost.add_node();
        let sv = self.side.add_node();
        debug_assert_eq!(v, gv);
        debug_assert_eq!(v, sv);
        for &x in neighbors {
            self.ghost.add_edge(v, x).expect("fresh ghost edge");
        }
        for &x in &neighbors[1..] {
            self.side.add_edge(v, x).expect("fresh side edge");
        }
        self.rebuild();
        Ok(InsertReport {
            node: v,
            neighbors: neighbors.len(),
            edges_added: neighbors.len() as u64,
        })
    }

    fn delete(&mut self, v: NodeId) -> Result<RepairReport, EngineError> {
        // The tree engine's report covers the protected spanning tree;
        // widen every `G'`-relative field to the full network (degree,
        // alive neighbours, n) and account the unprotected side edges
        // that die with the victim. Virtual-machinery fields stay
        // tree-scoped — the spanning tree is all this baseline protects.
        let ghost_degree = self.ghost.degree(v);
        let alive_neighbors = self
            .ghost
            .neighbors(v)
            .filter(|&x| self.tree.is_alive(x))
            .count();
        let side_degree = if self.side.contains(v) {
            self.side.degree(v)
        } else {
            0
        };
        let mut report = self.tree.delete(v)?;
        if self.side.contains(v) {
            self.side.remove_node(v).expect("side tracks liveness");
        }
        report.ghost_degree = ghost_degree;
        report.alive_neighbors = alive_neighbors;
        report.nodes_ever = self.ghost.nodes_ever();
        report.edges_dropped += side_degree as u64;
        self.rebuild();
        Ok(report)
    }

    fn image(&self) -> &Graph {
        &self.combined
    }

    fn ghost(&self) -> &Graph {
        &self.ghost
    }

    fn is_alive(&self, v: NodeId) -> bool {
        self.tree.is_alive(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::generators;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn init_splits_tree_and_side_edges() {
        let g = generators::cycle(6);
        let ft = ForgivingTree::from_graph(&g);
        // BFS tree of a cycle has n−1 edges; exactly one side edge.
        assert_eq!(ft.tree_image().edge_count(), 5);
        assert_eq!(ft.image().edge_count(), 6);
        assert!(ft.init_messages() > 0);
    }

    #[test]
    fn deletion_keeps_tree_connected() {
        let mut ft = ForgivingTree::from_graph(&generators::star(8));
        let _ = SelfHealer::delete(&mut ft, n(0)).unwrap();
        assert!(traversal::is_connected(ft.image()));
        assert_eq!(ft.image().node_count(), 7);
    }

    #[test]
    fn side_edges_die_unprotected() {
        // Cycle: one side edge; delete one of its endpoints.
        let g = generators::cycle(6);
        let ft0 = ForgivingTree::from_graph(&g);
        let side_edge = {
            let tree = ft0.tree_image();
            g.edges().find(|e| !tree.has_edge(e.lo(), e.hi())).unwrap()
        };
        let mut ft = ForgivingTree::from_graph(&g);
        let _ = SelfHealer::delete(&mut ft, side_edge.lo()).unwrap();
        // The side edge is gone and was not replaced by anything except
        // tree healing.
        assert!(!ft.image().has_edge(side_edge.lo(), side_edge.hi()));
        assert!(traversal::is_connected(ft.image()));
    }

    #[test]
    fn insertions_become_tree_leaves() {
        let mut ft = ForgivingTree::from_graph(&generators::path(4));
        let v = SelfHealer::insert(&mut ft, &[n(1), n(3)]).unwrap().node;
        assert!(ft.image().has_edge(v, n(1)), "tree edge");
        assert!(ft.image().has_edge(v, n(3)), "side edge");
        assert_eq!(ft.tree_image().degree(v), 1, "only the first is protected");
        // Kill the tree parent: v must stay connected via tree healing.
        let _ = SelfHealer::delete(&mut ft, n(1)).unwrap();
        assert!(traversal::is_connected(ft.image()));
    }

    #[test]
    fn full_cascade_stays_connected() {
        let mut ft = ForgivingTree::from_graph(&generators::grid(3, 3));
        for v in 0..8u32 {
            let _ = SelfHealer::delete(&mut ft, n(v)).unwrap();
            assert!(traversal::is_connected(ft.image()), "after deleting {v}");
        }
        assert_eq!(ft.image().node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_g0_is_rejected() {
        let g = Graph::with_nodes(4);
        let _ = ForgivingTree::from_graph(&g);
    }

    #[test]
    fn errors_propagate() {
        let mut ft = ForgivingTree::from_graph(&generators::path(3));
        assert_eq!(
            SelfHealer::delete(&mut ft, n(9)),
            Err(EngineError::NotAlive(n(9)))
        );
        assert_eq!(
            SelfHealer::insert(&mut ft, &[n(0), n(0)]),
            Err(EngineError::DuplicateNeighbour(n(0)))
        );
    }
}

//! # fg-baselines — what the Forgiving Graph is measured against
//!
//! Implementations of [`fg_core::SelfHealer`] for:
//!
//! * the **Forgiving Tree** (PODC 2008) — the paper's direct predecessor,
//!   rebuilt as reconstruction trees over a spanning tree
//!   ([`ForgivingTree`]), and
//! * the **naive healers** — no-heal, cycle, star, clique and
//!   per-deletion binary trees — that bracket the degree/stretch design
//!   space (see [`NoHealer`] and friends).
//!
//! The E4/E5/E9 experiments run every healer under identical attack
//! traces via `fg_adversary::replay` and tabulate the paper's metrics.
//!
//! ## Example
//!
//! ```
//! use fg_baselines::{CycleHealer, NoHealer};
//! use fg_core::SelfHealer;
//! use fg_graph::{generators, traversal, NodeId};
//!
//! let g = generators::star(8);
//! let mut none = NoHealer::from_graph(&g);
//! let mut ring = CycleHealer::from_graph(&g);
//! none.delete(NodeId::new(0))?;
//! ring.delete(NodeId::new(0))?;
//! assert!(!traversal::is_connected(none.image()));
//! assert!(traversal::is_connected(ring.image()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod forgiving_tree;
mod naive;

pub use forgiving_tree::ForgivingTree;
pub use naive::{BinaryTreeHealer, CliqueHealer, CycleHealer, NoHealer, StarHealer};

//! Naive healing baselines.
//!
//! Each strategy keeps the same two views as the Forgiving Graph (healed
//! image + insert-only ghost) but repairs a deletion with a simple local
//! rule over the victim's surviving neighbours. They bracket the design
//! space the paper positions itself in:
//!
//! | healer      | degree cost          | stretch cost            |
//! |-------------|----------------------|-------------------------|
//! | none        | 0                    | ∞ (disconnects)         |
//! | cycle       | +2 per lost edge     | Θ(d) per deletion       |
//! | star        | Θ(d) at the centre   | ≤ 2 per deletion        |
//! | clique      | Θ(d) everywhere      | 1                       |
//! | binary tree | +3 per lost edge, but compounding across deletions | Θ(log d) per deletion |
//!
//! The Forgiving Graph's point is to get the binary-tree stretch with a
//! *non-compounding* multiplicative degree bound.

use fg_core::{EngineError, InsertReport, RepairReport, SelfHealer};
use fg_graph::{Graph, NodeId};
use std::collections::BTreeSet;

/// Shared insert/delete bookkeeping for the naive healers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BaseNet {
    pub image: Graph,
    pub ghost: Graph,
}

impl BaseNet {
    pub fn from_graph(g: &Graph) -> Self {
        assert_eq!(
            g.node_count(),
            g.nodes_ever(),
            "G0 must not contain tombstoned nodes"
        );
        BaseNet {
            image: g.clone(),
            ghost: g.clone(),
        }
    }

    pub fn insert(&mut self, neighbors: &[NodeId]) -> Result<NodeId, EngineError> {
        if neighbors.is_empty() {
            return Err(EngineError::EmptyNeighbourhood);
        }
        let mut seen = BTreeSet::new();
        for &x in neighbors {
            if !seen.insert(x) {
                return Err(EngineError::DuplicateNeighbour(x));
            }
            if !self.image.contains(x) {
                return Err(EngineError::NotAlive(x));
            }
        }
        let v = self.ghost.add_node();
        let iv = self.image.add_node();
        debug_assert_eq!(v, iv);
        for &x in neighbors {
            self.ghost.add_edge(v, x).expect("fresh edges");
            self.image.add_edge(v, x).expect("fresh edges");
        }
        Ok(v)
    }

    /// Removes `v` from the image, returning its surviving neighbours.
    pub fn delete(&mut self, v: NodeId) -> Result<Vec<NodeId>, EngineError> {
        self.image
            .remove_node(v)
            .map_err(|_| EngineError::NotAlive(v))
    }
}

macro_rules! impl_self_healer {
    ($ty:ty, $name:literal, $repair:expr) => {
        impl SelfHealer for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn insert(&mut self, neighbors: &[NodeId]) -> Result<InsertReport, EngineError> {
                let node = self.net.insert(neighbors)?;
                Ok(InsertReport {
                    node,
                    neighbors: neighbors.len(),
                    edges_added: neighbors.len() as u64,
                })
            }

            fn delete(&mut self, v: NodeId) -> Result<RepairReport, EngineError> {
                let ghost_degree = self.net.ghost.degree(v);
                let nodes_ever = self.net.ghost.nodes_ever();
                let neighbors = self.net.delete(v)?;
                #[allow(clippy::redundant_closure_call)]
                let edges_added: u64 = ($repair)(&mut self.net.image, &neighbors);
                // Naive healers have no virtual machinery, so the report
                // carries only the edge-level story: the victim's released
                // edges and whatever the local rule wired back in.
                Ok(RepairReport {
                    edges_added,
                    edges_dropped: neighbors.len() as u64,
                    affected_nodes: neighbors.len(),
                    ..RepairReport::for_deletion(v, ghost_degree, neighbors.len(), nodes_ever)
                })
            }

            fn image(&self) -> &Graph {
                &self.net.image
            }

            fn ghost(&self) -> &Graph {
                &self.net.ghost
            }
        }

        impl $ty {
            /// Adopts `g` as the initial network.
            pub fn from_graph(g: &Graph) -> Self {
                Self {
                    net: BaseNet::from_graph(g),
                }
            }
        }
    };
}

/// No repair at all: deletions simply remove the node. The control case —
/// E5 shows it disconnecting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoHealer {
    net: BaseNet,
}

impl_self_healer!(NoHealer, "no-heal", |_: &mut Graph, _: &[NodeId]| 0u64);

/// Connects the victim's surviving neighbours in a ring (sorted by id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleHealer {
    net: BaseNet,
}

impl_self_healer!(CycleHealer, "cycle-heal", |image: &mut Graph,
                                              nbrs: &[NodeId]|
 -> u64 {
    let mut added = 0u64;
    match nbrs.len() {
        0 | 1 => {}
        2 => {
            added += u64::from(image.ensure_edge(nbrs[0], nbrs[1]).unwrap_or(false));
        }
        _ => {
            for w in nbrs.windows(2) {
                added += u64::from(image.ensure_edge(w[0], w[1]).unwrap_or(false));
            }
            added += u64::from(
                image
                    .ensure_edge(nbrs[nbrs.len() - 1], nbrs[0])
                    .unwrap_or(false),
            );
        }
    }
    added
});

/// Connects every surviving neighbour to the smallest-id one — a local
/// star. Low stretch, catastrophic centre degree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarHealer {
    net: BaseNet,
}

impl_self_healer!(StarHealer, "star-heal", |image: &mut Graph,
                                            nbrs: &[NodeId]|
 -> u64 {
    let mut added = 0u64;
    if let Some((&center, rest)) = nbrs.split_first() {
        for &x in rest {
            added += u64::from(image.ensure_edge(center, x).unwrap_or(false));
        }
    }
    added
});

/// Connects all surviving neighbours pairwise. Perfect stretch, quadratic
/// edge growth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueHealer {
    net: BaseNet,
}

impl_self_healer!(CliqueHealer, "clique-heal", |image: &mut Graph,
                                                nbrs: &[NodeId]|
 -> u64 {
    let mut added = 0u64;
    for (i, &x) in nbrs.iter().enumerate() {
        for &y in &nbrs[i + 1..] {
            added += u64::from(image.ensure_edge(x, y).unwrap_or(false));
        }
    }
    added
});

/// Connects the surviving neighbours by a fresh balanced binary tree
/// (heap order over the sorted ids). This is "the Forgiving Graph without
/// the haft machinery": per-deletion stretch is logarithmic, but because
/// nothing is reused across deletions, degrees compound — the ablation
/// E5/E1 quantify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryTreeHealer {
    net: BaseNet,
}

impl_self_healer!(BinaryTreeHealer, "binary-tree-heal", |image: &mut Graph,
                                                         nbrs: &[NodeId]|
 -> u64 {
    let mut added = 0u64;
    for i in 1..nbrs.len() {
        added += u64::from(
            image
                .ensure_edge(nbrs[(i - 1) / 2], nbrs[i])
                .unwrap_or(false),
        );
    }
    added
});

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{generators, traversal};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn hub_delete<H: SelfHealer>(mut h: H) -> H {
        let _ = h.delete(n(0)).unwrap();
        h
    }

    #[test]
    fn no_heal_disconnects_stars() {
        let h = hub_delete(NoHealer::from_graph(&generators::star(6)));
        assert!(!traversal::is_connected(h.image()));
        assert_eq!(h.image().edge_count(), 0);
    }

    #[test]
    fn cycle_heal_builds_ring() {
        let h = hub_delete(CycleHealer::from_graph(&generators::star(6)));
        assert!(traversal::is_connected(h.image()));
        assert!(h.image().iter().all(|v| h.image().degree(v) == 2));
        assert_eq!(traversal::diameter_exact(h.image()), Some(2));
    }

    #[test]
    fn cycle_heal_two_neighbours() {
        let h = hub_delete(CycleHealer::from_graph(&generators::path(3)));
        assert!(h.image().has_edge(n(1), n(2)));
        assert_eq!(h.image().edge_count(), 1);
    }

    #[test]
    fn star_heal_concentrates_degree() {
        let h = hub_delete(StarHealer::from_graph(&generators::star(8)));
        assert!(traversal::is_connected(h.image()));
        assert_eq!(h.image().degree(n(1)), 6, "new centre absorbs everyone");
    }

    #[test]
    fn clique_heal_gives_stretch_one() {
        let h = hub_delete(CliqueHealer::from_graph(&generators::star(6)));
        assert_eq!(traversal::diameter_exact(h.image()), Some(1));
        assert_eq!(h.image().edge_count(), 5 * 4 / 2);
    }

    #[test]
    fn binary_tree_heal_is_logarithmic_per_repair() {
        let h = hub_delete(BinaryTreeHealer::from_graph(&generators::star(16)));
        assert!(traversal::is_connected(h.image()));
        let diam = traversal::diameter_exact(h.image()).unwrap();
        assert!(diam <= 2 * 4, "binary tree over 15 nodes: diameter ≤ 8");
        assert!(h.image().max_degree() <= 3);
    }

    #[test]
    fn inserts_work_for_all() {
        let mut h = CycleHealer::from_graph(&generators::path(3));
        let v = SelfHealer::insert(&mut h, &[n(0), n(2)]).unwrap().node;
        assert_eq!(v, n(3));
        assert!(h.image().has_edge(v, n(0)));
        assert!(h.ghost().has_edge(v, n(2)));
        assert_eq!(
            SelfHealer::insert(&mut h, &[]),
            Err(EngineError::EmptyNeighbourhood)
        );
        assert_eq!(
            SelfHealer::insert(&mut h, &[n(9)]),
            Err(EngineError::NotAlive(n(9)))
        );
    }

    #[test]
    fn double_delete_errors() {
        let mut h = NoHealer::from_graph(&generators::path(3));
        let _ = SelfHealer::delete(&mut h, n(1)).unwrap();
        assert_eq!(
            SelfHealer::delete(&mut h, n(1)),
            Err(EngineError::NotAlive(n(1)))
        );
    }

    #[test]
    fn ghost_never_shrinks() {
        let mut h = CliqueHealer::from_graph(&generators::cycle(5));
        let _ = SelfHealer::delete(&mut h, n(2)).unwrap();
        assert_eq!(h.ghost().node_count(), 5);
        assert_eq!(h.ghost().degree(n(2)), 2);
    }
}

//! Node identifiers.
//!
//! Every processor in the network carries a unique, totally ordered
//! [`NodeId`]. The Forgiving Graph protocol relies on this order: the
//! deterministic construction of the repair tree `BT_v` and the tie-breaking
//! inside `ComputeHaft` (Algorithm A.9 of the paper) both sort by id.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A unique identifier for a node (processor) in the network.
///
/// `NodeId`s are dense small integers handed out by the containers in this
/// workspace; they index directly into adjacency arrays. The type is a
/// newtype over `u32` so that indices, counts and ids cannot be confused.
///
/// # Examples
///
/// ```
/// use fg_graph::NodeId;
///
/// let a = NodeId::new(7);
/// assert_eq!(a.index(), 7);
/// assert_eq!(format!("{a}"), "n7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw index backing this id, for use as an array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(value: NodeId) -> Self {
        value.0
    }
}

/// An undirected edge, stored with its endpoints in sorted order so that
/// `(u, v)` and `(v, u)` compare and hash identically.
///
/// # Examples
///
/// ```
/// use fg_graph::{EdgeKey, NodeId};
///
/// let e1 = EdgeKey::new(NodeId::new(3), NodeId::new(1));
/// let e2 = EdgeKey::new(NodeId::new(1), NodeId::new(3));
/// assert_eq!(e1, e2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeKey {
    lo: NodeId,
    hi: NodeId,
}

impl EdgeKey {
    /// Creates a canonical (sorted) edge key between two distinct endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; the graphs in this workspace are simple.
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "self-loops are not representable as EdgeKey");
        if a < b {
            EdgeKey { lo: a, hi: b }
        } else {
            EdgeKey { lo: b, hi: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub const fn lo(self) -> NodeId {
        self.lo
    }

    /// The larger endpoint.
    #[inline]
    pub const fn hi(self) -> NodeId {
        self.hi
    }

    /// Both endpoints, smaller first.
    #[inline]
    pub const fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.hi)
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, from: NodeId) -> NodeId {
        if from == self.lo {
            self.hi
        } else if from == self.hi {
            self.lo
        } else {
            panic!("{from} is not an endpoint of {self}");
        }
    }
}

impl fmt::Display for EdgeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn node_id_orders_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn edge_key_is_canonical() {
        let e = EdgeKey::new(NodeId::new(9), NodeId::new(4));
        assert_eq!(e.lo(), NodeId::new(4));
        assert_eq!(e.hi(), NodeId::new(9));
        assert_eq!(e.endpoints(), (NodeId::new(4), NodeId::new(9)));
    }

    #[test]
    fn edge_key_other_endpoint() {
        let e = EdgeKey::new(NodeId::new(1), NodeId::new(2));
        assert_eq!(e.other(NodeId::new(1)), NodeId::new(2));
        assert_eq!(e.other(NodeId::new(2)), NodeId::new(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_key_other_panics_for_non_endpoint() {
        let e = EdgeKey::new(NodeId::new(1), NodeId::new(2));
        let _ = e.other(NodeId::new(3));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_key_rejects_self_loop() {
        let _ = EdgeKey::new(NodeId::new(5), NodeId::new(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(
            EdgeKey::new(NodeId::new(3), NodeId::new(1)).to_string(),
            "(n1-n3)"
        );
    }
}

//! Frozen CSR snapshots: the read-optimized layout behind epoch
//! publication.
//!
//! A [`FrozenCsr`] is an immutable compressed-sparse-row copy of a
//! [`Graph`]'s *live* structure: one contiguous `offsets` array, one
//! contiguous `targets` array, and a dense remap table between stable
//! [`NodeId`]s and dense `u32` indices `0..live`. Freezing costs one
//! linear pass (`O(live + edges)`); every query after that walks
//! cache-contiguous arrays sized by the *live* population instead of
//! tombstone-diluted `nodes_ever`-sized structures — after heavy churn
//! the live set is a small fraction of the ids ever issued, so the
//! working set shrinks by the same factor.
//!
//! The traversal kernels here are dense mirrors of
//! [`crate::traversal`]: BFS with u64-word **bitset** frontiers and
//! visited sets, and the same bidirectional meet-in-the-middle search.
//! Because the dense remap is built over live ids in ascending order it
//! is *monotone*, so ascending iteration over a CSR row is ascending
//! iteration over [`NodeId`]s — the kernels discover nodes in exactly
//! the order the live-graph kernels do, and therefore return not just
//! equal distances but **identical** distance vectors and concrete
//! paths. The differential suites lean on that.

use crate::traversal::DistanceVec;
use crate::{Graph, NodeId};

/// Dense-index sentinel: "this id is not live in the snapshot".
const DEAD: u32 = u32::MAX;

/// An immutable compressed-sparse-row snapshot of a graph's live
/// structure, with dense-id remapping and bitset BFS kernels.
///
/// Built via [`FrozenCsr::from_graph`]; see the [module docs](self) for
/// the layout and the bit-identity argument.
///
/// # Examples
///
/// ```
/// use fg_graph::{generators, FrozenCsr, NodeId};
///
/// let mut g = generators::cycle(8);
/// g.remove_node(NodeId::new(3)).unwrap();
/// let csr = FrozenCsr::from_graph(&g);
/// assert_eq!(csr.live_count(), 7);
/// assert!(!csr.contains(NodeId::new(3)));
/// // The cycle is cut open at 3: going the long way round is 6 hops.
/// assert_eq!(csr.bidirectional_distance(NodeId::new(2), NodeId::new(4)), Some(6));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenCsr {
    /// Row boundaries: node `d`'s neighbors are
    /// `targets[offsets[d] as usize..offsets[d + 1] as usize]`.
    offsets: Vec<u32>,
    /// Concatenated adjacency rows, dense ids, each row ascending.
    targets: Vec<u32>,
    /// `NodeId::index() -> dense index`, [`DEAD`]-filled for dead ids;
    /// length [`Graph::nodes_ever`].
    dense_of: Vec<u32>,
    /// `dense index -> NodeId`, ascending; length `live_count`.
    node_of: Vec<NodeId>,
}

impl FrozenCsr {
    /// The sentinel [`FrozenCsr::bfs_dense`] writes for unreachable
    /// dense indices (also the internal "not live" marker of the remap
    /// table).
    pub const UNREACHED: u32 = DEAD;

    /// Freezes the live structure of `g` into CSR form.
    ///
    /// One pass over the live nodes in ascending id order (so the dense
    /// remap is monotone), one pass over their adjacency to fill
    /// `targets`.
    pub fn from_graph(g: &Graph) -> FrozenCsr {
        let mut dense_of = vec![DEAD; g.nodes_ever()];
        let mut node_of = Vec::with_capacity(g.node_count());
        for v in g.iter() {
            dense_of[v.index()] = node_of.len() as u32;
            node_of.push(v);
        }
        let mut offsets = Vec::with_capacity(node_of.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for &v in &node_of {
            // `Graph::neighbors` yields live neighbors ascending, and the
            // remap is monotone, so each row lands ascending in dense ids.
            targets.extend(g.neighbors(v).map(|w| dense_of[w.index()]));
            offsets.push(targets.len() as u32);
        }
        FrozenCsr {
            offsets,
            targets,
            dense_of,
            node_of,
        }
    }

    /// Number of live nodes in the snapshot.
    pub fn live_count(&self) -> usize {
        self.node_of.len()
    }

    /// Size of the id universe the snapshot was taken over
    /// (`Graph::nodes_ever` at freeze time).
    pub fn nodes_ever(&self) -> usize {
        self.dense_of.len()
    }

    /// Number of undirected edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Whether `v` was live at freeze time.
    pub fn contains(&self, v: NodeId) -> bool {
        self.dense_of.get(v.index()).is_some_and(|&d| d != DEAD)
    }

    /// The dense index of `v`, if live.
    pub fn dense(&self, v: NodeId) -> Option<u32> {
        self.dense_of.get(v.index()).copied().filter(|&d| d != DEAD)
    }

    /// The [`NodeId`] behind dense index `d`.
    ///
    /// # Panics
    ///
    /// If `d >= live_count()`.
    pub fn node(&self, d: u32) -> NodeId {
        self.node_of[d as usize]
    }

    /// The live nodes, ascending — same order as [`Graph::iter`].
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_of.iter().copied()
    }

    /// Dense index `d`'s adjacency row, as ascending dense indices.
    ///
    /// Because the remap is monotone, ascending dense order is ascending
    /// [`NodeId`] order — walking a row visits neighbors exactly as
    /// [`Graph::neighbors`] does. This is the raw-row entry point for
    /// dense-space consumers (e.g. gradient-descent path recovery over a
    /// [`FrozenCsr::bfs_dense`] vector).
    ///
    /// # Panics
    ///
    /// If `d >= live_count()`.
    pub fn dense_row(&self, d: u32) -> &[u32] {
        self.row(d)
    }

    /// `v`'s dense-id adjacency row (ascending). Empty for dead ids.
    fn row(&self, d: u32) -> &[u32] {
        let (lo, hi) = (
            self.offsets[d as usize] as usize,
            self.offsets[d as usize + 1] as usize,
        );
        &self.targets[lo..hi]
    }

    /// Degree of `v`, or `None` when `v` was dead at freeze time.
    pub fn degree(&self, v: NodeId) -> Option<usize> {
        self.dense(v).map(|d| self.row(d).len())
    }

    /// `v`'s neighbors as [`NodeId`]s, ascending — same order as
    /// [`Graph::neighbors`]. Empty for dead ids.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let row = self.dense(v).map_or(&[][..], |d| self.row(d));
        row.iter().map(|&w| self.node_of[w as usize])
    }

    /// Full single-source BFS from `src` over the frozen structure,
    /// using u64-word bitset frontiers and visited sets over the dense
    /// id space.
    ///
    /// Returns exactly what [`crate::traversal::bfs_distances`] returns
    /// on the source graph: a [`DistanceVec`] indexed by
    /// [`NodeId::index`] over the full `nodes_ever` universe (dead and
    /// unreachable ids map to `None`; all-`None` when `src` is dead).
    /// Distance labels are level-synchronous and therefore independent
    /// of intra-level visit order, so the bitset schedule is free to
    /// differ from the queue schedule without changing the output.
    pub fn bfs_distances(&self, src: NodeId) -> DistanceVec {
        let mut out: DistanceVec = vec![None; self.nodes_ever()];
        let Some(s) = self.dense(src) else {
            return out;
        };
        let dist = self.bfs_dense(s);
        for (d, &v) in self.node_of.iter().enumerate() {
            if dist[d] != DEAD {
                out[v.index()] = Some(dist[d]);
            }
        }
        out
    }

    /// The dense core of [`FrozenCsr::bfs_distances`]: full single-source
    /// BFS from dense index `src`, returned as a `live_count()`-sized
    /// vector over dense indices with [`FrozenCsr::UNREACHED`] marking
    /// unreachable nodes.
    ///
    /// This is the allocation-lean entry point for serving tiers that
    /// keep per-epoch landmark vectors: the result is sized by the *live*
    /// population (4 bytes per live node), not the `nodes_ever` universe
    /// a [`DistanceVec`] spans, and no expansion pass runs.
    ///
    /// # Panics
    ///
    /// If `src >= live_count()`.
    pub fn bfs_dense(&self, src: u32) -> Vec<u32> {
        let live = self.live_count();
        let words = live.div_ceil(64);
        let s = src;
        let mut dist = vec![DEAD; live];
        let mut visited = vec![0u64; words];
        let mut frontier = vec![0u64; words];
        let mut next = vec![0u64; words];
        dist[s as usize] = 0;
        visited[s as usize / 64] |= 1u64 << (s % 64);
        frontier[s as usize / 64] |= 1u64 << (s % 64);
        let mut depth = 0u32;
        loop {
            let mut grew = false;
            for (w, &word) in frontier.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let x = w as u32 * 64 + bits.trailing_zeros();
                    bits &= bits - 1;
                    for &y in self.row(x) {
                        let (wy, my) = (y as usize / 64, 1u64 << (y % 64));
                        if visited[wy] & my == 0 {
                            visited[wy] |= my;
                            next[wy] |= my;
                            dist[y as usize] = depth + 1;
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
            depth += 1;
            std::mem::swap(&mut frontier, &mut next);
            next.fill(0);
        }
        dist
    }

    /// Length of the shortest path between `u` and `v` in the snapshot,
    /// by the same bidirectional meet-in-the-middle search as
    /// [`crate::traversal::bidirectional_distance`], run over the dense
    /// CSR arrays.
    ///
    /// `Some(0)` when `u == v` and live; `None` when either endpoint was
    /// dead at freeze time or the pair is disconnected.
    pub fn bidirectional_distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if u == v {
            return self.contains(u).then_some(0);
        }
        self.search(u, v, false).map(|(d, _, _, _)| d)
    }

    /// A shortest path from `u` to `v` inclusive, stitched at the
    /// meeting node exactly like [`crate::traversal::shortest_path`].
    ///
    /// Because the dense remap is monotone and waves are expanded in the
    /// same insertion order as the live kernel, the returned path is
    /// **node-identical** to the live kernel's path, not merely equally
    /// short.
    pub fn shortest_path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        if u == v {
            return self.contains(u).then(|| vec![u]);
        }
        let (total, meet, from_u, from_v) = self.search(u, v, true)?;
        let du = self.dense(u).expect("search found u");
        let dv = self.dense(v).expect("search found v");
        let mut path = Vec::with_capacity(total as usize + 1);
        // Walk meet → u, then reverse, then extend meet → v.
        let mut cur = meet;
        while cur != du {
            path.push(self.node(cur));
            cur = from_u.parent[cur as usize];
        }
        path.push(u);
        path.reverse();
        let mut cur = meet;
        while cur != dv {
            cur = from_v.parent[cur as usize];
            path.push(self.node(cur));
        }
        Some(path)
    }

    /// The shared bidirectional kernel: a dense mirror of
    /// `traversal::bidirectional_search` — same smaller-wave-first
    /// schedule, same strict-improvement meeting updates, same
    /// `best ≤ d_u + d_v + 1` termination proof.
    fn search(
        &self,
        u: NodeId,
        v: NodeId,
        track_parents: bool,
    ) -> Option<(u32, u32, DenseFrontier, DenseFrontier)> {
        debug_assert_ne!(u, v);
        let (du, dv) = (self.dense(u)?, self.dense(v)?);
        let n = self.live_count();
        let mut from_u = DenseFrontier::seeded(n, du, track_parents);
        let mut from_v = DenseFrontier::seeded(n, dv, track_parents);
        let mut best: Option<(u32, u32)> = None;
        loop {
            if let Some((b, meet)) = best {
                if b <= from_u.depth + from_v.depth + 1 {
                    return Some((b, meet, from_u, from_v));
                }
            }
            if from_u.wave.is_empty() || from_v.wave.is_empty() {
                return best.map(|(b, meet)| (b, meet, from_u, from_v));
            }
            let found = if from_u.wave.len() <= from_v.wave.len() {
                from_u.expand(self, &from_v)
            } else {
                from_v.expand(self, &from_u)
            };
            if let Some((total, meet)) = found {
                if best.is_none_or(|(b, _)| total < b) {
                    best = Some((total, meet));
                }
            }
        }
    }
}

/// One side of the dense bidirectional search: flat `u32` distance and
/// parent arrays ([`DEAD`]-sentinel) over the dense id space, plus the
/// current wave in discovery order.
struct DenseFrontier {
    dist: Vec<u32>,
    parent: Vec<u32>,
    wave: Vec<u32>,
    depth: u32,
}

impl DenseFrontier {
    fn seeded(n: usize, src: u32, track_parents: bool) -> DenseFrontier {
        let mut f = DenseFrontier {
            dist: vec![DEAD; n],
            parent: if track_parents {
                vec![DEAD; n]
            } else {
                Vec::new()
            },
            wave: vec![src],
            depth: 0,
        };
        f.dist[src as usize] = 0;
        if track_parents {
            f.parent[src as usize] = src;
        }
        f
    }

    /// Expands this side by one level; returns the best meeting point
    /// with `other` discovered during the expansion, as
    /// `(total distance, meeting dense id)`. A dense mirror of
    /// `traversal::Frontier::expand` — identical discovery order, so
    /// identical parents and meeting choices.
    fn expand(&mut self, csr: &FrozenCsr, other: &DenseFrontier) -> Option<(u32, u32)> {
        let mut best: Option<(u32, u32)> = None;
        let mut next = Vec::new();
        let track_parents = !self.parent.is_empty();
        for i in 0..self.wave.len() {
            let x = self.wave[i];
            for &y in csr.row(x) {
                if self.dist[y as usize] == DEAD {
                    self.dist[y as usize] = self.depth + 1;
                    if track_parents {
                        self.parent[y as usize] = x;
                    }
                    next.push(y);
                }
                if other.dist[y as usize] != DEAD {
                    let total = self.dist[y as usize] + other.dist[y as usize];
                    if best.is_none_or(|(b, _)| total < b) {
                        best = Some((total, y));
                    }
                }
            }
        }
        self.wave = next;
        self.depth += 1;
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// A churned graph: cycle + chords + pendant, several removals.
    fn churned() -> Graph {
        let mut g = crate::generators::cycle(12);
        g.add_edge(n(0), n(6)).unwrap();
        g.add_edge(n(2), n(9)).unwrap();
        let p = g.add_node();
        g.add_edge(n(4), p).unwrap();
        g.remove_node(n(5)).unwrap();
        g.remove_node(n(10)).unwrap();
        g
    }

    #[test]
    fn csr_mirrors_adjacency_exactly() {
        let g = churned();
        let csr = FrozenCsr::from_graph(&g);
        assert_eq!(csr.live_count(), g.node_count());
        assert_eq!(csr.nodes_ever(), g.nodes_ever());
        assert_eq!(csr.edge_count(), g.edge_count());
        assert_eq!(csr.iter().collect::<Vec<_>>(), g.iter().collect::<Vec<_>>());
        for i in 0..g.nodes_ever() as u32 {
            let v = n(i);
            assert_eq!(csr.contains(v), g.contains(v));
            assert_eq!(csr.degree(v), g.contains(v).then(|| g.degree(v)));
            assert_eq!(
                csr.neighbors(v).collect::<Vec<_>>(),
                g.neighbors(v).collect::<Vec<_>>(),
                "row {v}"
            );
        }
    }

    #[test]
    fn dense_remap_is_a_monotone_bijection_on_live_nodes() {
        let g = churned();
        let csr = FrozenCsr::from_graph(&g);
        let mut last = None;
        for v in g.iter() {
            let d = csr.dense(v).expect("live node has a dense id");
            assert_eq!(csr.node(d), v);
            assert!(last.is_none_or(|p| p < d), "remap not monotone at {v}");
            last = Some(d);
        }
        assert_eq!(last, Some(csr.live_count() as u32 - 1));
    }

    #[test]
    fn bitset_bfs_matches_live_bfs_exactly() {
        let g = churned();
        let csr = FrozenCsr::from_graph(&g);
        for i in 0..g.nodes_ever() as u32 {
            assert_eq!(
                csr.bfs_distances(n(i)),
                traversal::bfs_distances(&g, n(i)),
                "src {i}"
            );
        }
    }

    #[test]
    fn bidirectional_kernels_match_live_kernels_exactly() {
        let g = churned();
        let csr = FrozenCsr::from_graph(&g);
        for i in 0..g.nodes_ever() as u32 {
            for j in 0..g.nodes_ever() as u32 {
                let (u, v) = (n(i), n(j));
                assert_eq!(
                    csr.bidirectional_distance(u, v),
                    traversal::bidirectional_distance(&g, u, v),
                    "({u}, {v})"
                );
                assert_eq!(
                    csr.shortest_path(u, v),
                    traversal::shortest_path(&g, u, v),
                    "({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton_graphs_freeze() {
        let csr = FrozenCsr::from_graph(&Graph::new());
        assert_eq!(csr.live_count(), 0);
        assert_eq!(csr.bfs_distances(n(0)), Vec::<Option<u32>>::new());
        let g = Graph::with_nodes(1);
        let csr = FrozenCsr::from_graph(&g);
        assert_eq!(csr.bidirectional_distance(n(0), n(0)), Some(0));
        assert_eq!(csr.shortest_path(n(0), n(0)), Some(vec![n(0)]));
    }

    #[test]
    fn wide_graphs_cross_word_boundaries() {
        // > 64 live nodes forces multi-word bitsets.
        let g = crate::generators::cycle(200);
        let csr = FrozenCsr::from_graph(&g);
        assert_eq!(csr.bfs_distances(n(0)), traversal::bfs_distances(&g, n(0)));
        assert_eq!(csr.bidirectional_distance(n(0), n(100)), Some(100));
    }
}

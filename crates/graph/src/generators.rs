//! Deterministic workload graph generators.
//!
//! The paper's guarantees are topology-independent, so the experiment
//! harness sweeps a spectrum of initial graphs `G_0`: sparse random
//! (Erdős–Rényi), heavy-tailed (Barabási–Albert, the power-law networks the
//! related-work section discusses for cascading failures), structured (grid,
//! ring, tree) and the adversarial extreme (star — the lower-bound
//! construction of Theorem 2).
//!
//! All generators take an explicit seed and use `ChaCha8Rng`, so every
//! experiment in EXPERIMENTS.md is bit-reproducible.

use crate::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn id(i: usize) -> NodeId {
    NodeId::new(i as u32)
}

/// A path `0 – 1 – … – (n−1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(id(i - 1), id(i)).expect("fresh path edge");
    }
    g
}

/// A cycle over `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = path(n);
    g.add_edge(id(n - 1), id(0)).expect("closing edge");
    g
}

/// A star with hub `0` and `n − 1` leaves — the Theorem 2 lower-bound
/// topology.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "a star needs at least its hub");
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(id(0), id(i)).expect("fresh spoke");
    }
    g
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(id(i), id(j)).expect("fresh clique edge");
        }
    }
    g
}

/// A `w × h` grid (4-neighbourhood).
///
/// # Panics
///
/// Panics if `w == 0 || h == 0`.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let mut g = Graph::with_nodes(w * h);
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                g.add_edge(id(v), id(v + 1)).expect("fresh grid edge");
            }
            if y + 1 < h {
                g.add_edge(id(v), id(v + w)).expect("fresh grid edge");
            }
        }
    }
    g
}

/// A complete binary tree on `n` nodes in heap order (node `i` has children
/// `2i+1`, `2i+2`).
pub fn binary_tree(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(id((i - 1) / 2), id(i)).expect("fresh tree edge");
    }
    g
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Stresses low-degree periphery with high-degree spine.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "caterpillar needs a spine");
    let mut g = path(spine);
    for s in 0..spine {
        for _ in 0..legs {
            let leaf = g.add_node();
            g.add_edge(id(s), leaf).expect("fresh leg");
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)`; may be disconnected.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut r = rng(seed);
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if r.gen_bool(p) {
                g.add_edge(id(i), id(j)).expect("fresh ER edge");
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` forced connected by overlaying a uniformly random
/// spanning tree (random-permutation attachment).
pub fn connected_erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut g = erdos_renyi(n, p, seed);
    let mut r = rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut r);
    for k in 1..n {
        let u = order[k];
        let v = order[r.gen_range(0..k)];
        let _ = g.ensure_edge(id(u), id(v));
    }
    g
}

/// A uniformly random recursive tree: node `k` attaches to a uniform
/// ancestor among `0..k`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut g = Graph::with_nodes(n);
    for k in 1..n {
        let parent = r.gen_range(0..k);
        g.add_edge(id(parent), id(k)).expect("fresh tree edge");
    }
    g
}

/// Barabási–Albert preferential attachment: starts from a small clique of
/// `m + 1` nodes, then each new node attaches to `m` distinct existing
/// nodes chosen proportionally to degree. Produces the heavy-tailed degree
/// distributions of real peer-to-peer overlays.
///
/// # Panics
///
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need at least m + 1 nodes");
    let mut r = rng(seed);
    let mut g = complete(m + 1);
    // Endpoint multiset: sampling uniformly from it = degree-proportional.
    let mut endpoints: Vec<usize> = Vec::with_capacity(4 * n * m);
    for e in g.edges() {
        endpoints.push(e.lo().index());
        endpoints.push(e.hi().index());
    }
    for _ in (m + 1)..n {
        let v = g.add_node();
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[r.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            g.add_edge(v, id(t)).expect("fresh BA edge");
            endpoints.push(v.index());
            endpoints.push(t);
        }
    }
    g
}

/// A random `d`-regular graph via the configuration (pairing) model with
/// rejection, retrying until the pairing is simple. Falls back to a
/// connected ER graph of matching average degree after 200 failed attempts
/// (only plausible for tiny `n·d`).
///
/// # Panics
///
/// Panics if `n·d` is odd or `d ≥ n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be below n");
    let mut r = rng(seed);
    'attempt: for _ in 0..200 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(&mut r);
        let mut g = Graph::with_nodes(n);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || g.has_edge(id(u), id(v)) {
                continue 'attempt;
            }
            g.add_edge(id(u), id(v)).expect("checked simple");
        }
        return g;
    }
    connected_erdos_renyi(n, d as f64 / n as f64, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter_exact, is_connected};

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), 2);
        assert!(is_connected(&g));
        assert_eq!(diameter_exact(&g), Some(4));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8);
        assert_eq!(g.edge_count(), 8);
        assert!(g.iter().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.degree(NodeId::new(0)), 9);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(diameter_exact(&g), Some(2));
        assert_eq!(star(1).node_count(), 1);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(diameter_exact(&g), Some(1));
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 3);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 4 * 2 + 3 * 3); // vertical 4*2, horizontal 3*3
        assert!(is_connected(&g));
        assert_eq!(diameter_exact(&g), Some(3 + 2));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(15);
        assert_eq!(g.edge_count(), 14);
        assert!(is_connected(&g));
        assert_eq!(g.degree(NodeId::new(0)), 2);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3);
        assert_eq!(g.node_count(), 4 + 12);
        assert!(is_connected(&g));
        assert_eq!(g.degree(NodeId::new(0)), 1 + 3);
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let a = erdos_renyi(40, 0.1, 7);
        let b = erdos_renyi(40, 0.1, 7);
        let c = erdos_renyi(40, 0.1, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn er_density_is_plausible() {
        let g = erdos_renyi(100, 0.05, 1);
        let expected = 0.05 * (100.0 * 99.0 / 2.0);
        let m = g.edge_count() as f64;
        assert!(m > expected * 0.5 && m < expected * 1.5, "m = {m}");
    }

    #[test]
    fn connected_er_is_connected() {
        for seed in 0..5 {
            let g = connected_erdos_renyi(64, 0.02, seed);
            assert!(is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn random_tree_is_tree() {
        let g = random_tree(50, 3);
        assert_eq!(g.edge_count(), 49);
        assert!(is_connected(&g));
    }

    #[test]
    fn barabasi_albert_properties() {
        let g = barabasi_albert(200, 3, 11);
        assert!(is_connected(&g));
        assert_eq!(g.node_count(), 200);
        // Every late node has degree ≥ m.
        assert!(g.iter().all(|v| g.degree(v) >= 3));
        // Heavy tail: someone has far more than the minimum.
        assert!(g.max_degree() >= 10);
    }

    #[test]
    fn random_regular_is_regular() {
        let g = random_regular(30, 4, 5);
        assert!(g.iter().all(|v| g.degree(v) == 4), "degrees must all be 4");
    }

    #[test]
    #[should_panic(expected = "n*d must be even")]
    fn random_regular_rejects_odd_sum() {
        let _ = random_regular(5, 3, 0);
    }
}

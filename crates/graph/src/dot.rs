//! Graphviz DOT export for debugging and the example binaries.

use crate::{Graph, NodeId};
use std::fmt::Write as _;

/// Renders `g` as a Graphviz `graph` document.
///
/// Node labels default to their id; `highlight` nodes are filled red —
/// the examples use this to mark deleted-node neighbourhoods and helper
/// assignments.
///
/// # Examples
///
/// ```
/// use fg_graph::{generators, dot_string};
///
/// let g = generators::star(4);
/// let dot = dot_string(&g, "star", &[]);
/// assert!(dot.starts_with("graph star {"));
/// ```
pub fn dot_string(g: &Graph, name: &str, highlight: &[NodeId]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
    for v in g.iter() {
        if highlight.contains(&v) {
            let _ = writeln!(out, "  {} [style=filled, fillcolor=salmon];", v.raw());
        } else {
            let _ = writeln!(out, "  {};", v.raw());
        }
    }
    for e in g.edges() {
        let _ = writeln!(out, "  {} -- {};", e.lo().raw(), e.hi().raw());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn renders_nodes_and_edges() {
        let g = generators::path(3);
        let dot = dot_string(&g, "p3", &[NodeId::new(1)]);
        assert!(dot.contains("graph p3 {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.contains("1 [style=filled"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn skips_removed_nodes() {
        let mut g = generators::path(3);
        g.remove_node(NodeId::new(2)).unwrap();
        let dot = dot_string(&g, "g", &[]);
        assert!(!dot.contains("  2;"));
        assert!(!dot.contains("1 -- 2"));
    }
}

//! Sorted small-vec containers: the workspace's arena-friendly stand-ins
//! for `BTreeSet`/`BTreeMap`.
//!
//! Every layer of the stack keys state by dense ids ([`crate::NodeId`],
//! edge slots, virtual-node keys) and iterates it in key order so that
//! replays are bit-identical. B-trees give that order at the cost of a
//! pointer chase per comparison; for the small, hot collections a repair
//! touches (adjacency lists, per-owner virtual-node tables, per-repair
//! scratch) a single sorted `Vec` is strictly better: one contiguous
//! allocation, binary-search lookups, and `memmove` updates that stay in
//! cache.
//!
//! [`SortedSet`] and [`SortedMap`] keep exactly the `BTreeSet`/`BTreeMap`
//! semantics the code relied on — deduplicated keys, ascending iteration —
//! so swapping them in changes no observable ordering anywhere.

/// An ordered set backed by a sorted `Vec`.
///
/// # Examples
///
/// ```
/// use fg_graph::SortedSet;
///
/// let mut s = SortedSet::new();
/// assert!(s.insert(3));
/// assert!(s.insert(1));
/// assert!(!s.insert(3), "duplicates are rejected");
/// assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![1, 3]);
/// assert!(s.remove(&1));
/// assert!(!s.contains(&1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SortedSet<T> {
    items: Vec<T>,
}

impl<T> Default for SortedSet<T> {
    fn default() -> Self {
        SortedSet { items: Vec::new() }
    }
}

impl<T: Ord> SortedSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        SortedSet { items: Vec::new() }
    }

    /// An empty set with room for `n` elements.
    pub fn with_capacity(n: usize) -> Self {
        SortedSet {
            items: Vec::with_capacity(n),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `value` is in the set.
    pub fn contains(&self, value: &T) -> bool {
        self.items.binary_search(value).is_ok()
    }

    /// Inserts `value`; returns whether it was newly added.
    pub fn insert(&mut self, value: T) -> bool {
        match self.items.binary_search(&value) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, value);
                true
            }
        }
    }

    /// Removes `value`; returns whether it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        match self.items.binary_search(value) {
            Ok(pos) => {
                self.items.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// The elements as an ascending slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<&T> {
        self.items.first()
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<T: Ord> FromIterator<T> for SortedSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut items: Vec<T> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup_by(|a, b| a == b);
        SortedSet { items }
    }
}

impl<T: Ord> Extend<T> for SortedSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<T> IntoIterator for SortedSet<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a SortedSet<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// An ordered map backed by a sorted `Vec` of key–value pairs.
///
/// # Examples
///
/// ```
/// use fg_graph::SortedMap;
///
/// let mut m = SortedMap::new();
/// m.insert(2, "b");
/// m.insert(1, "a");
/// assert_eq!(m.get(&1), Some(&"a"));
/// assert_eq!(m.insert(1, "A"), Some("a"));
/// let keys: Vec<i32> = m.keys().copied().collect();
/// assert_eq!(keys, vec![1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SortedMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for SortedMap<K, V> {
    fn default() -> Self {
        SortedMap {
            entries: Vec::new(),
        }
    }
}

impl<K: Ord, V> SortedMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        SortedMap {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// Whether `key` has an entry.
    pub fn contains_key(&self, key: &K) -> bool {
        self.position(key).is_ok()
    }

    /// Borrows the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.position(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutably borrows the value for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.position(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.position(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Mutably borrows the value at `key`, inserting `default()` first if
    /// the key is absent (the `entry(..).or_insert_with(..)` pattern).
    pub fn get_or_insert_with<F: FnOnce() -> V>(&mut self, key: K, default: F) -> &mut V {
        let i = match self.position(&key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Iterates `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates with mutable values, in ascending key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// The entry with the smallest key, if any.
    pub fn first(&self) -> Option<(&K, &V)> {
        self.entries.first().map(|(k, v)| (k, v))
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for SortedMap<K, V> {
    /// Later duplicates overwrite earlier ones, matching `BTreeMap`.
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = SortedMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K, V> IntoIterator for SortedMap<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a SortedMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_keeps_ascending_unique_order() {
        let mut s = SortedSet::new();
        for v in [5, 1, 3, 1, 5, 2] {
            s.insert(v);
        }
        assert_eq!(s.as_slice(), &[1, 2, 3, 5]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.first(), Some(&1));
        assert!(s.contains(&3));
        assert!(!s.contains(&4));
        assert!(s.remove(&3));
        assert!(!s.remove(&3));
        assert_eq!(s.as_slice(), &[1, 2, 5]);
    }

    #[test]
    fn set_from_iter_dedups() {
        let s: SortedSet<i32> = [3, 1, 3, 2, 2].into_iter().collect();
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        let collected: Vec<i32> = s.into_iter().collect();
        assert_eq!(collected, vec![1, 2, 3]);
    }

    #[test]
    fn map_insert_get_remove() {
        let mut m = SortedMap::new();
        assert_eq!(m.insert(4, "d"), None);
        assert_eq!(m.insert(2, "b"), None);
        assert_eq!(m.insert(4, "D"), Some("d"));
        assert_eq!(m.get(&4), Some(&"D"));
        assert_eq!(m.len(), 2);
        *m.get_mut(&2).unwrap() = "B";
        assert_eq!(m.remove(&2), Some("B"));
        assert_eq!(m.remove(&2), None);
        assert!(!m.contains_key(&2));
    }

    #[test]
    fn map_iterates_in_key_order() {
        let m: SortedMap<i32, i32> = [(3, 30), (1, 10), (2, 20)].into_iter().collect();
        let pairs: Vec<(i32, i32)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(m.first(), Some((&1, &10)));
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![10, 20, 30]);
    }

    #[test]
    fn map_get_or_insert_with() {
        let mut m: SortedMap<i32, Vec<i32>> = SortedMap::new();
        m.get_or_insert_with(7, Vec::new).push(1);
        m.get_or_insert_with(7, Vec::new).push(2);
        assert_eq!(m.get(&7), Some(&vec![1, 2]));
    }

    #[test]
    fn map_into_iter_is_sorted() {
        let m: SortedMap<i32, &str> = [(2, "b"), (1, "a")].into_iter().collect();
        let pairs: Vec<(i32, &str)> = m.into_iter().collect();
        assert_eq!(pairs, vec![(1, "a"), (2, "b")]);
    }
}

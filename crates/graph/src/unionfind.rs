//! Disjoint-set forest (union–find) with path halving and union by size.
//!
//! Used by the core engine to group reconstruction-tree fragments after a
//! deletion shatters them, and by tests to cross-check connectivity.

/// A disjoint-set forest over `0..len` with near-constant-time operations.
///
/// # Examples
///
/// ```
/// use fg_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    sets: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
            size: vec![1; len],
            sets: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Adds a fresh singleton and returns its index.
    pub fn push(&mut self) -> usize {
        let i = self.parent.len();
        self.parent.push(i);
        self.size.push(1);
        self.sets += 1;
        i
    }

    /// Representative of `x`'s set (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of bounds.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.set_size(1), 1);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.set_size(2), 3);
        assert!(uf.connected(0, 2));
    }

    #[test]
    fn push_adds_singletons() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let a = uf.push();
        let b = uf.push();
        assert_eq!((a, b), (0, 1));
        assert_eq!(uf.set_count(), 2);
        uf.union(a, b);
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.connected(0, 99));
        assert_eq!(uf.set_size(42), 100);
    }
}

//! A simple undirected graph with stable node ids and cache-friendly,
//! sorted adjacency lists.
//!
//! This is the substrate shared by every layer of the workspace: the
//! insert-only ghost graph `G'`, the healed image graph `G`, the baselines
//! and the distributed simulator all store their topology in a [`Graph`].
//!
//! Nodes are never re-numbered: removing a node leaves a tombstone so that
//! ids stay valid for the lifetime of the experiment, matching the paper's
//! model where `n` counts every node ever seen.

use crate::sorted::SortedSet;
use crate::{EdgeKey, GraphError, NodeId};
use serde::{Deserialize, Serialize};

/// An undirected simple graph over dense [`NodeId`]s with tombstoned removal.
///
/// Adjacency lists are sorted vectors ([`SortedSet`]) — one contiguous
/// allocation per node, iterated in ascending id order — so that every
/// iteration order in the workspace is deterministic; the repair protocol
/// depends on this for reproducibility.
///
/// # Examples
///
/// ```
/// use fg_graph::Graph;
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b)?;
/// g.add_edge(b, c)?;
/// assert_eq!(g.degree(b), 2);
/// assert_eq!(g.node_count(), 3);
/// g.remove_node(b)?;
/// assert_eq!(g.node_count(), 2);
/// assert!(!g.has_edge(a, b));
/// # Ok::<(), fg_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<SortedSet<NodeId>>,
    alive: Vec<bool>,
    live_nodes: usize,
    live_edges: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Graph {
            adjacency: Vec::with_capacity(n),
            alive: Vec::with_capacity(n),
            live_nodes: 0,
            live_edges: 0,
        }
    }

    /// Creates a graph with `n` live nodes (ids `0..n`) and no edges.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adjacency: vec![SortedSet::new(); n],
            alive: vec![true; n],
            live_nodes: n,
            live_edges: 0,
        }
    }

    /// Builds a graph from an edge list, creating nodes `0..=max_id` as needed.
    ///
    /// # Errors
    ///
    /// Returns an error on self-loops or duplicate edges.
    pub fn from_edges<I>(edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::new();
        for (u, v) in edges {
            let need = u.index().max(v.index()) + 1;
            while g.adjacency.len() < need {
                g.add_node();
            }
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Adds a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.adjacency.len() as u32);
        self.adjacency.push(SortedSet::new());
        self.alive.push(true);
        self.live_nodes += 1;
        id
    }

    /// Number of live (non-removed) nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of node ids ever created, including removed ones.
    ///
    /// This is the paper's `n`: "the total number of vertices seen so far".
    pub fn nodes_ever(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Whether `v` was ever created and has not been removed.
    pub fn contains(&self, v: NodeId) -> bool {
        self.alive.get(v.index()).copied().unwrap_or(false)
    }

    /// Whether the live edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency
            .get(u.index())
            .is_some_and(|adj| adj.contains(&v))
    }

    /// Degree of `v` (0 for removed/unknown nodes).
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency.get(v.index()).map_or(0, SortedSet::len)
    }

    /// Maximum degree over live nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.iter().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Iterates over live node ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId::new(i as u32))
    }

    /// Iterates over the neighbours of `v` in increasing id order.
    ///
    /// Returns an empty iterator for removed or unknown nodes.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency
            .get(v.index())
            .into_iter()
            .flat_map(|adj| adj.iter().copied())
    }

    /// Collects the neighbours of `v` into a vector (increasing id order).
    pub fn neighbor_vec(&self, v: NodeId) -> Vec<NodeId> {
        self.neighbors(v).collect()
    }

    /// Iterates over all live edges, each reported once with `lo < hi`.
    pub fn edges(&self) -> impl Iterator<Item = EdgeKey> + '_ {
        self.iter().flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&v| u < v)
                .map(move |v| EdgeKey::new(u, v))
        })
    }

    /// Adds the edge `(u, v)`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::SelfLoop`] if `u == v`,
    /// * [`GraphError::NodeNotFound`] if either endpoint is missing,
    /// * [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !self.contains(u) {
            return Err(GraphError::NodeNotFound(u));
        }
        if !self.contains(v) {
            return Err(GraphError::NodeNotFound(v));
        }
        if !self.adjacency[u.index()].insert(v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        self.adjacency[v.index()].insert(u);
        self.live_edges += 1;
        Ok(())
    }

    /// Adds the edge `(u, v)` if absent; returns whether it was added.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::add_edge`], except duplicates are tolerated.
    pub fn ensure_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge(..)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Removes the edge `(u, v)`.
    ///
    /// # Errors
    ///
    /// [`GraphError::EdgeNotFound`] if the edge does not exist.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if !self.has_edge(u, v) {
            return Err(GraphError::EdgeNotFound(u, v));
        }
        self.adjacency[u.index()].remove(&v);
        self.adjacency[v.index()].remove(&u);
        self.live_edges -= 1;
        Ok(())
    }

    /// Removes node `v` and all incident edges, returning its former
    /// neighbours in increasing id order.
    ///
    /// The id is tombstoned, never reused.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeNotFound`] if `v` is missing or already removed.
    pub fn remove_node(&mut self, v: NodeId) -> Result<Vec<NodeId>, GraphError> {
        if !self.contains(v) {
            return Err(GraphError::NodeNotFound(v));
        }
        let neighbours: Vec<NodeId> = self.adjacency[v.index()].iter().copied().collect();
        for &u in &neighbours {
            self.adjacency[u.index()].remove(&v);
        }
        self.live_edges -= neighbours.len();
        self.adjacency[v.index()].clear();
        self.alive[v.index()] = false;
        self.live_nodes -= 1;
        Ok(neighbours)
    }

    /// Sum of degrees over live nodes (= 2 × edge count); useful in tests.
    pub fn degree_sum(&self) -> usize {
        self.iter().map(|v| self.degree(v)).sum()
    }
}

impl Extend<(NodeId, NodeId)> for Graph {
    /// Extends the graph with edges, growing the node set as needed and
    /// ignoring duplicates.
    fn extend<T: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: T) {
        for (u, v) in iter {
            let need = u.index().max(v.index()) + 1;
            while self.adjacency.len() < need {
                self.add_node();
            }
            let _ = self.ensure_edge(u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.iter().count(), 0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(n(1)), 2);
        assert!(g.has_edge(n(1), n(0)));
        assert_eq!(g.neighbor_vec(n(1)), vec![n(0), n(2)]);
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(g.add_edge(n(0), n(0)), Err(GraphError::SelfLoop(n(0))));
        g.add_edge(n(0), n(1)).unwrap();
        assert_eq!(
            g.add_edge(n(1), n(0)),
            Err(GraphError::DuplicateEdge(n(1), n(0)))
        );
        assert_eq!(g.ensure_edge(n(1), n(0)), Ok(false));
    }

    #[test]
    fn rejects_missing_nodes() {
        let mut g = Graph::with_nodes(1);
        assert_eq!(g.add_edge(n(0), n(5)), Err(GraphError::NodeNotFound(n(5))));
        assert_eq!(
            g.remove_edge(n(0), n(5)),
            Err(GraphError::EdgeNotFound(n(0), n(5)))
        );
    }

    #[test]
    fn remove_node_tombstones_and_reports_neighbours() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        g.add_edge(n(0), n(3)).unwrap();
        let nbrs = g.remove_node(n(0)).unwrap();
        assert_eq!(nbrs, vec![n(1), n(2), n(3)]);
        assert!(!g.contains(n(0)));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.nodes_ever(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.remove_node(n(0)), Err(GraphError::NodeNotFound(n(0))));
        // Id is never reused.
        let fresh = g.add_node();
        assert_eq!(fresh, n(4));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        let edges: Vec<EdgeKey> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert_eq!(g.degree_sum(), 6);
    }

    #[test]
    fn from_edges_builds_nodes() {
        let g = Graph::from_edges([(n(0), n(2)), (n(2), n(1))]).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn extend_ignores_duplicates() {
        let mut g = Graph::new();
        g.extend([(n(0), n(1)), (n(0), n(1)), (n(1), n(2))]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn graph_implements_common_traits() {
        fn assert_traits<T: Clone + std::fmt::Debug + PartialEq + Send + Sync>() {}
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_traits::<Graph>();
        assert_serde::<Graph>();
        let mut g = Graph::with_nodes(2);
        g.add_edge(n(0), n(1)).unwrap();
        assert_eq!(g.clone(), g);
    }

    #[test]
    fn removed_nodes_have_empty_neighbourhoods() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(n(0), n(1)).unwrap();
        g.remove_node(n(1)).unwrap();
        assert_eq!(g.degree(n(1)), 0);
        assert_eq!(g.neighbors(n(1)).count(), 0);
        assert_eq!(g.neighbor_vec(n(0)), Vec::<NodeId>::new());
    }
}

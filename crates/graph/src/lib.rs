//! # fg-graph — graph substrate for the Forgiving Graph workspace
//!
//! The shared foundation of the [Forgiving Graph] reproduction: a simple
//! undirected graph with stable, tombstoned node ids ([`Graph`]), BFS-based
//! measurement primitives ([`traversal`]), deterministic workload generators
//! ([`generators`]), a disjoint-set forest ([`UnionFind`]) and DOT export.
//!
//! Ids are never reused after removal because the paper's metrics are
//! defined against `G'` — the graph of *everything ever inserted* — so a
//! node id must stay meaningful after the adversary kills the node.
//!
//! [Forgiving Graph]: https://arxiv.org/abs/0902.2501
//!
//! ## Example
//!
//! ```
//! use fg_graph::{generators, traversal};
//!
//! let g = generators::connected_erdos_renyi(64, 0.05, 42);
//! assert!(traversal::is_connected(&g));
//! let d = traversal::diameter_exact(&g).unwrap();
//! assert!(d >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
mod dot;
mod error;
pub mod generators;
mod graph;
mod id;
mod sorted;
pub mod traversal;
mod unionfind;

pub use csr::FrozenCsr;
pub use dot::dot_string;
pub use error::GraphError;
pub use graph::Graph;
pub use id::{EdgeKey, NodeId};
pub use sorted::{SortedMap, SortedSet};
pub use unionfind::UnionFind;

//! Breadth-first traversal, distances, components and diameter.
//!
//! Everything the measurement layer needs to evaluate the paper's success
//! metrics: `dist(x, y, G_T)` against `dist(x, y, G'_T)` (network stretch,
//! Figure 1 of the paper) and diameters for the Forgiving Tree comparison.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// The distance vector produced by a BFS from one source.
///
/// Index by [`NodeId::index`]; `None` means unreachable (or removed).
pub type DistanceVec = Vec<Option<u32>>;

/// Runs a BFS from `src` and returns distances to every node id ever created.
///
/// Removed nodes and nodes in other components map to `None`. Returns a
/// vector of `None` if `src` itself is not live.
pub fn bfs_distances(g: &Graph, src: NodeId) -> DistanceVec {
    let mut dist: DistanceVec = vec![None; g.nodes_ever()];
    if !g.contains(src) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS parents from `src`: `parent[v] = Some(u)` when `u` discovered `v`.
///
/// `parent[src] = Some(src)` marks the root; unreachable nodes are `None`.
pub fn bfs_parents(g: &Graph, src: NodeId) -> Vec<Option<NodeId>> {
    let mut parent: Vec<Option<NodeId>> = vec![None; g.nodes_ever()];
    if !g.contains(src) {
        return parent;
    }
    let mut queue = VecDeque::new();
    parent[src.index()] = Some(src);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if parent[v.index()].is_none() {
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    parent
}

/// Length of the shortest path between `u` and `v`, if any.
///
/// Uses an early-exit BFS from `u`.
pub fn distance(g: &Graph, u: NodeId, v: NodeId) -> Option<u32> {
    if !g.contains(u) || !g.contains(v) {
        return None;
    }
    if u == v {
        return Some(0);
    }
    let mut dist: DistanceVec = vec![None; g.nodes_ever()];
    let mut queue = VecDeque::new();
    dist[u.index()] = Some(0);
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        let dx = dist[x.index()].expect("queued nodes have distances");
        for y in g.neighbors(x) {
            if dist[y.index()].is_none() {
                if y == v {
                    return Some(dx + 1);
                }
                dist[y.index()] = Some(dx + 1);
                queue.push_back(y);
            }
        }
    }
    None
}

/// Whether all live nodes are mutually reachable.
///
/// Vacuously true for graphs with zero or one live node.
pub fn is_connected(g: &Graph) -> bool {
    let mut nodes = g.iter();
    let Some(first) = nodes.next() else {
        return true;
    };
    let dist = bfs_distances(g, first);
    g.iter().all(|v| dist[v.index()].is_some())
}

/// Partitions the live nodes into connected components (each sorted, the
/// list sorted by smallest member).
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; g.nodes_ever()];
    let mut components = Vec::new();
    for root in g.iter() {
        if seen[root.index()] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        seen[root.index()] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            component.push(u);
            for v in g.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Eccentricity of `v`: the greatest distance from `v` to any reachable node.
///
/// Returns `None` when `v` is not live.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<u32> {
    if !g.contains(v) {
        return None;
    }
    Some(bfs_distances(g, v).into_iter().flatten().max().unwrap_or(0))
}

/// Exact diameter: the largest eccentricity over live nodes, ignoring
/// cross-component pairs. `None` for an empty graph.
///
/// Runs a BFS per node — O(n·m) — fine for the experiment sizes (n ≤ a few
/// thousand); larger sweeps use [`diameter_double_sweep`].
pub fn diameter_exact(g: &Graph) -> Option<u32> {
    g.iter().map(|v| eccentricity(g, v).unwrap_or(0)).max()
}

/// A fast lower bound on the diameter via the classic double-sweep
/// heuristic: BFS from an arbitrary node, then BFS again from the farthest
/// node found. Exact on trees.
pub fn diameter_double_sweep(g: &Graph) -> Option<u32> {
    let first = g.iter().next()?;
    let d1 = bfs_distances(g, first);
    let far = g
        .iter()
        .filter_map(|v| d1[v.index()].map(|d| (d, v)))
        .max()
        .map(|(_, v)| v)?;
    eccentricity(g, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphError;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn path_graph(len: usize) -> Graph {
        let mut g = Graph::with_nodes(len);
        for i in 0..len.saturating_sub(1) {
            g.add_edge(n(i as u32), n(i as u32 + 1)).unwrap();
        }
        g
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, n(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_from_removed_node_is_empty() {
        let mut g = path_graph(3);
        g.remove_node(n(0)).unwrap();
        assert!(bfs_distances(&g, n(0)).iter().all(Option::is_none));
    }

    #[test]
    fn distance_early_exit_matches_bfs() {
        let g = path_graph(6);
        assert_eq!(distance(&g, n(1), n(4)), Some(3));
        assert_eq!(distance(&g, n(2), n(2)), Some(0));
    }

    #[test]
    fn distance_across_components_is_none() {
        let mut g = path_graph(4);
        g.remove_edge(n(1), n(2)).unwrap();
        assert_eq!(distance(&g, n(0), n(3)), None);
        assert!(!is_connected(&g));
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![n(0), n(1)], vec![n(2), n(3)]]);
    }

    #[test]
    fn connectivity_trivial_cases() {
        let g = Graph::new();
        assert!(is_connected(&g));
        let g = Graph::with_nodes(1);
        assert!(is_connected(&g));
        let g = Graph::with_nodes(2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn diameter_of_path_and_cycle() -> Result<(), GraphError> {
        let g = path_graph(7);
        assert_eq!(diameter_exact(&g), Some(6));
        assert_eq!(diameter_double_sweep(&g), Some(6));

        let mut c = path_graph(6);
        c.add_edge(n(5), n(0))?;
        assert_eq!(diameter_exact(&c), Some(3));
        Ok(())
    }

    #[test]
    fn eccentricity_of_center() {
        let g = path_graph(5);
        assert_eq!(eccentricity(&g, n(2)), Some(2));
        assert_eq!(eccentricity(&g, n(0)), Some(4));
        let mut g2 = g.clone();
        g2.remove_node(n(2)).unwrap();
        assert_eq!(eccentricity(&g2, n(2)), None);
    }

    #[test]
    fn bfs_parents_form_tree() {
        let g = path_graph(4);
        let p = bfs_parents(&g, n(0));
        assert_eq!(p[0], Some(n(0)));
        assert_eq!(p[1], Some(n(0)));
        assert_eq!(p[2], Some(n(1)));
        assert_eq!(p[3], Some(n(2)));
    }

    #[test]
    fn double_sweep_is_lower_bound() {
        // Star: exact diameter 2; double sweep finds it (tree ⇒ exact).
        let mut g = Graph::with_nodes(6);
        for i in 1..6 {
            g.add_edge(n(0), n(i)).unwrap();
        }
        assert_eq!(diameter_double_sweep(&g), Some(2));
        assert_eq!(diameter_exact(&g), Some(2));
    }
}

//! Breadth-first traversal, distances, components and diameter.
//!
//! Everything the measurement layer needs to evaluate the paper's success
//! metrics: `dist(x, y, G_T)` against `dist(x, y, G'_T)` (network stretch,
//! Figure 1 of the paper) and diameters for the Forgiving Tree comparison.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// The distance vector produced by a BFS from one source.
///
/// Index by [`NodeId::index`]; `None` means unreachable (or removed).
pub type DistanceVec = Vec<Option<u32>>;

/// Runs a BFS from `src` and returns distances to every node id ever created.
///
/// Removed nodes and nodes in other components map to `None`. Returns a
/// vector of `None` if `src` itself is not live.
pub fn bfs_distances(g: &Graph, src: NodeId) -> DistanceVec {
    let mut dist: DistanceVec = vec![None; g.nodes_ever()];
    if !g.contains(src) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[src.index()] = Some(0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS parents from `src`: `parent[v] = Some(u)` when `u` discovered `v`.
///
/// `parent[src] = Some(src)` marks the root; unreachable nodes are `None`.
pub fn bfs_parents(g: &Graph, src: NodeId) -> Vec<Option<NodeId>> {
    let mut parent: Vec<Option<NodeId>> = vec![None; g.nodes_ever()];
    if !g.contains(src) {
        return parent;
    }
    let mut queue = VecDeque::new();
    parent[src.index()] = Some(src);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if parent[v.index()].is_none() {
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    parent
}

/// Length of the shortest path between `u` and `v`, if any.
///
/// Thin wrapper over [`bidirectional_distance`] — the single pairwise
/// query kernel shared by `fg_core::query::QueryOps` and the stretch
/// measurements.
pub fn distance(g: &Graph, u: NodeId, v: NodeId) -> Option<u32> {
    bidirectional_distance(g, u, v)
}

/// One frontier of a bidirectional BFS: distances, optional parents, and
/// the current wave of nodes. Parents are tracked only for
/// [`shortest_path`] — plain [`bidirectional_distance`] queries skip the
/// allocation entirely.
struct Frontier {
    dist: DistanceVec,
    parent: Vec<Option<NodeId>>,
    wave: Vec<NodeId>,
    depth: u32,
}

impl Frontier {
    fn seeded(n: usize, src: NodeId, track_parents: bool) -> Frontier {
        let mut f = Frontier {
            dist: vec![None; n],
            parent: if track_parents {
                vec![None; n]
            } else {
                Vec::new()
            },
            wave: vec![src],
            depth: 0,
        };
        f.dist[src.index()] = Some(0);
        if track_parents {
            f.parent[src.index()] = Some(src);
        }
        f
    }

    /// Expands this side by one level; returns the best meeting point
    /// with `other` discovered during the expansion, as
    /// `(total distance, meeting node)`.
    fn expand(&mut self, g: &Graph, other: &Frontier) -> Option<(u32, NodeId)> {
        let mut best: Option<(u32, NodeId)> = None;
        let mut next = Vec::new();
        let track_parents = !self.parent.is_empty();
        for &x in &self.wave {
            for y in g.neighbors(x) {
                if self.dist[y.index()].is_none() {
                    self.dist[y.index()] = Some(self.depth + 1);
                    if track_parents {
                        self.parent[y.index()] = Some(x);
                    }
                    next.push(y);
                }
                if let Some(dy) = other.dist[y.index()] {
                    let total = self.dist[y.index()].expect("just labelled") + dy;
                    if best.is_none_or(|(b, _)| total < b) {
                        best = Some((total, y));
                    }
                }
            }
        }
        self.wave = next;
        self.depth += 1;
        best
    }
}

/// Runs the bidirectional search shared by [`bidirectional_distance`] and
/// [`shortest_path`]: alternately expands the smaller frontier until the
/// best meeting point found so far provably cannot be improved. Returns
/// the distance, the best meeting node, and both frontiers.
fn bidirectional_search(
    g: &Graph,
    u: NodeId,
    v: NodeId,
    track_parents: bool,
) -> Option<(u32, NodeId, Frontier, Frontier)> {
    // The callers answer `u == v` without a search (and without paying
    // for the two O(nodes_ever) frontier allocations).
    debug_assert_ne!(u, v);
    if !g.contains(u) || !g.contains(v) {
        return None;
    }
    let n = g.nodes_ever();
    let mut from_u = Frontier::seeded(n, u, track_parents);
    let mut from_v = Frontier::seeded(n, v, track_parents);
    let mut best: Option<(u32, NodeId)> = None;
    loop {
        // Every u-v path of length ≤ d_u + d_v has a node labelled by
        // both waves (and was therefore recorded as a meeting), so once
        // the best recorded meeting is ≤ d_u + d_v + 1 it cannot be
        // beaten by anything still undiscovered.
        if let Some((b, meet)) = best {
            if b <= from_u.depth + from_v.depth + 1 {
                return Some((b, meet, from_u, from_v));
            }
        }
        if from_u.wave.is_empty() || from_v.wave.is_empty() {
            return best.map(|(b, meet)| (b, meet, from_u, from_v));
        }
        let found = if from_u.wave.len() <= from_v.wave.len() {
            from_u.expand(g, &from_v)
        } else {
            from_v.expand(g, &from_u)
        };
        if let Some((total, meet)) = found {
            if best.is_none_or(|(b, _)| total < b) {
                best = Some((total, meet));
            }
        }
    }
}

/// Length of the shortest live path between `u` and `v`, by bidirectional
/// BFS — two waves grown from both endpoints, the smaller expanded first,
/// meeting in the middle. Exact, and typically touches `O(√space)` of a
/// full single-source BFS on expander-like networks.
///
/// `Some(0)` when `u == v` and live; `None` when either endpoint is dead
/// or the pair is disconnected.
pub fn bidirectional_distance(g: &Graph, u: NodeId, v: NodeId) -> Option<u32> {
    if u == v {
        return g.contains(u).then_some(0);
    }
    bidirectional_search(g, u, v, false).map(|(d, _, _, _)| d)
}

/// A shortest live path from `u` to `v` inclusive of both endpoints, by
/// the same bidirectional kernel as [`bidirectional_distance`] (the two
/// half-paths are stitched at the meeting node).
///
/// `Some(vec![u])` when `u == v` and live; `None` when either endpoint is
/// dead or the pair is disconnected. The returned path has exactly
/// `distance(g, u, v) + 1` nodes, consecutive nodes adjacent in `g`.
pub fn shortest_path(g: &Graph, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    if u == v {
        return g.contains(u).then(|| vec![u]);
    }
    let (total, meet, from_u, from_v) = bidirectional_search(g, u, v, true)?;
    let mut path = Vec::with_capacity(total as usize + 1);
    // Walk meet → u, then reverse, then extend meet → v.
    let mut cur = meet;
    while cur != u {
        path.push(cur);
        cur = from_u.parent[cur.index()].expect("u-side labels have parents");
    }
    path.push(u);
    path.reverse();
    let mut cur = meet;
    while cur != v {
        cur = from_v.parent[cur.index()].expect("v-side labels have parents");
        path.push(cur);
    }
    Some(path)
}

/// Whether all live nodes are mutually reachable.
///
/// Vacuously true for graphs with zero or one live node.
pub fn is_connected(g: &Graph) -> bool {
    let mut nodes = g.iter();
    let Some(first) = nodes.next() else {
        return true;
    };
    let dist = bfs_distances(g, first);
    g.iter().all(|v| dist[v.index()].is_some())
}

/// Partitions the live nodes into connected components (each sorted, the
/// list sorted by smallest member).
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; g.nodes_ever()];
    let mut components = Vec::new();
    for root in g.iter() {
        if seen[root.index()] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        seen[root.index()] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            component.push(u);
            for v in g.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Eccentricity of `v`: the greatest distance from `v` to any reachable node.
///
/// Returns `None` when `v` is not live.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<u32> {
    if !g.contains(v) {
        return None;
    }
    Some(bfs_distances(g, v).into_iter().flatten().max().unwrap_or(0))
}

/// Exact diameter: the largest eccentricity over live nodes, ignoring
/// cross-component pairs. `None` for an empty graph.
///
/// Runs a BFS per node — O(n·m) — fine for the experiment sizes (n ≤ a few
/// thousand); larger sweeps use [`diameter_double_sweep`].
pub fn diameter_exact(g: &Graph) -> Option<u32> {
    g.iter().map(|v| eccentricity(g, v).unwrap_or(0)).max()
}

/// A fast lower bound on the diameter via the classic double-sweep
/// heuristic: BFS from an arbitrary node, then BFS again from the farthest
/// node found. Exact on trees.
pub fn diameter_double_sweep(g: &Graph) -> Option<u32> {
    let first = g.iter().next()?;
    let d1 = bfs_distances(g, first);
    let far = g
        .iter()
        .filter_map(|v| d1[v.index()].map(|d| (d, v)))
        .max()
        .map(|(_, v)| v)?;
    eccentricity(g, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphError;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn path_graph(len: usize) -> Graph {
        let mut g = Graph::with_nodes(len);
        for i in 0..len.saturating_sub(1) {
            g.add_edge(n(i as u32), n(i as u32 + 1)).unwrap();
        }
        g
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, n(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_from_removed_node_is_empty() {
        let mut g = path_graph(3);
        g.remove_node(n(0)).unwrap();
        assert!(bfs_distances(&g, n(0)).iter().all(Option::is_none));
    }

    #[test]
    fn distance_early_exit_matches_bfs() {
        let g = path_graph(6);
        assert_eq!(distance(&g, n(1), n(4)), Some(3));
        assert_eq!(distance(&g, n(2), n(2)), Some(0));
    }

    #[test]
    fn distance_across_components_is_none() {
        let mut g = path_graph(4);
        g.remove_edge(n(1), n(2)).unwrap();
        assert_eq!(distance(&g, n(0), n(3)), None);
        assert!(!is_connected(&g));
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![n(0), n(1)], vec![n(2), n(3)]]);
    }

    #[test]
    fn connectivity_trivial_cases() {
        let g = Graph::new();
        assert!(is_connected(&g));
        let g = Graph::with_nodes(1);
        assert!(is_connected(&g));
        let g = Graph::with_nodes(2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn diameter_of_path_and_cycle() -> Result<(), GraphError> {
        let g = path_graph(7);
        assert_eq!(diameter_exact(&g), Some(6));
        assert_eq!(diameter_double_sweep(&g), Some(6));

        let mut c = path_graph(6);
        c.add_edge(n(5), n(0))?;
        assert_eq!(diameter_exact(&c), Some(3));
        Ok(())
    }

    #[test]
    fn eccentricity_of_center() {
        let g = path_graph(5);
        assert_eq!(eccentricity(&g, n(2)), Some(2));
        assert_eq!(eccentricity(&g, n(0)), Some(4));
        let mut g2 = g.clone();
        g2.remove_node(n(2)).unwrap();
        assert_eq!(eccentricity(&g2, n(2)), None);
    }

    #[test]
    fn bfs_parents_form_tree() {
        let g = path_graph(4);
        let p = bfs_parents(&g, n(0));
        assert_eq!(p[0], Some(n(0)));
        assert_eq!(p[1], Some(n(0)));
        assert_eq!(p[2], Some(n(1)));
        assert_eq!(p[3], Some(n(2)));
    }

    #[test]
    fn bidirectional_agrees_with_single_source_bfs() {
        // A cycle with a chord and a pendant: multiple equal-length
        // routes, an off-path detour, and a dead node.
        let mut g = path_graph(8);
        g.add_edge(n(7), n(0)).unwrap();
        g.add_edge(n(2), n(6)).unwrap();
        let p = g.add_node();
        g.add_edge(n(4), p).unwrap();
        g.remove_node(n(5)).unwrap();
        for u in g.iter() {
            let ref_dist = bfs_distances(&g, u);
            for v in g.iter() {
                assert_eq!(
                    bidirectional_distance(&g, u, v),
                    ref_dist[v.index()],
                    "({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn shortest_path_is_valid_and_tight() {
        let mut g = path_graph(8);
        g.add_edge(n(7), n(0)).unwrap();
        g.add_edge(n(2), n(6)).unwrap();
        for u in g.iter() {
            for v in g.iter() {
                let d = distance(&g, u, v);
                match shortest_path(&g, u, v) {
                    None => assert_eq!(d, None, "({u}, {v})"),
                    Some(path) => {
                        assert_eq!(path.len() as u32, d.unwrap() + 1, "({u}, {v})");
                        assert_eq!(path.first(), Some(&u));
                        assert_eq!(path.last(), Some(&v));
                        for pair in path.windows(2) {
                            assert!(g.has_edge(pair[0], pair[1]), "({u}, {v}): {path:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pairwise_queries_reject_dead_endpoints() {
        let mut g = path_graph(4);
        g.remove_node(n(3)).unwrap();
        assert_eq!(bidirectional_distance(&g, n(0), n(3)), None);
        assert_eq!(bidirectional_distance(&g, n(3), n(0)), None);
        assert_eq!(shortest_path(&g, n(0), n(3)), None);
        assert_eq!(shortest_path(&g, n(2), n(2)), Some(vec![n(2)]));
        assert_eq!(bidirectional_distance(&g, n(2), n(2)), Some(0));
    }

    #[test]
    fn double_sweep_is_lower_bound() {
        // Star: exact diameter 2; double sweep finds it (tree ⇒ exact).
        let mut g = Graph::with_nodes(6);
        for i in 1..6 {
            g.add_edge(n(0), n(i)).unwrap();
        }
        assert_eq!(diameter_double_sweep(&g), Some(2));
        assert_eq!(diameter_exact(&g), Some(2));
    }
}

//! Error types for graph operations.

use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors returned by fallible graph operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The referenced node does not exist or has been removed.
    NodeNotFound(NodeId),
    /// The referenced edge does not exist.
    EdgeNotFound(NodeId, NodeId),
    /// The edge already exists (graphs here are simple).
    DuplicateEdge(NodeId, NodeId),
    /// A self-loop was requested; the graphs in this workspace are simple.
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeNotFound(v) => write!(f, "node {v} not found or removed"),
            GraphError::EdgeNotFound(u, v) => write!(f, "edge ({u}, {v}) not found"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::SelfLoop(v) => write!(f, "self-loop at {v} rejected"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GraphError::NodeNotFound(NodeId::new(3));
        assert_eq!(e.to_string(), "node n3 not found or removed");
        let e = GraphError::EdgeNotFound(NodeId::new(1), NodeId::new(2));
        assert!(e.to_string().contains("edge"));
        let e = GraphError::DuplicateEdge(NodeId::new(1), NodeId::new(2));
        assert!(e.to_string().contains("already exists"));
        let e = GraphError::SelfLoop(NodeId::new(9));
        assert!(e.to_string().contains("self-loop"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}

//! Property tests for the frozen CSR snapshot layer: construction
//! mirrors the live adjacency exactly, the dense remap is a monotone
//! bijection over the live ids, and the bitset / bidirectional kernels
//! return bit-identical answers to [`fg_graph::traversal`] on random
//! churned graphs — the contract the frozen query path is built on.

use fg_graph::{generators, traversal, FrozenCsr, Graph, NodeId};
use proptest::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Applies a random op tape over a seeded cycle: node adds, edge adds,
/// node removals and edge removals, so freezes see tombstones, isolated
/// survivors and multi-component remainders.
fn churned_graph(base: usize, ops: &[u8]) -> Graph {
    let mut g = generators::cycle(base);
    for chunk in ops.chunks_exact(3) {
        let (op, a, b) = (chunk[0] % 4, chunk[1] as u32, chunk[2] as u32);
        let total = g.nodes_ever() as u32;
        let (u, v) = (a % total, b % total);
        match op {
            0 => {
                g.add_node();
            }
            1 => {
                if u != v && g.contains(n(u)) && g.contains(n(v)) {
                    let _ = g.ensure_edge(n(u), n(v));
                }
            }
            2 => {
                if g.contains(n(u)) {
                    g.remove_node(n(u)).expect("live node");
                }
            }
            _ => {
                if g.has_edge(n(u), n(v)) {
                    g.remove_edge(n(u), n(v)).expect("edge exists");
                }
            }
        }
    }
    g
}

proptest! {
    /// Freezing loses nothing and invents nothing: counts, membership,
    /// degrees and full adjacency rows (order included) match the live
    /// graph for every id ever issued.
    #[test]
    fn frozen_csr_mirrors_live_adjacency(
        base in 3usize..80,
        ops in prop::collection::vec(any::<u8>(), 0..180),
    ) {
        let g = churned_graph(base, &ops);
        let csr = FrozenCsr::from_graph(&g);
        prop_assert_eq!(csr.live_count(), g.node_count());
        prop_assert_eq!(csr.nodes_ever(), g.nodes_ever());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        prop_assert_eq!(csr.iter().collect::<Vec<_>>(), g.iter().collect::<Vec<_>>());
        for i in 0..g.nodes_ever() as u32 {
            let v = n(i);
            prop_assert_eq!(csr.contains(v), g.contains(v));
            prop_assert_eq!(csr.degree(v), g.contains(v).then(|| g.degree(v)));
            prop_assert_eq!(
                csr.neighbors(v).collect::<Vec<_>>(),
                g.neighbors(v).collect::<Vec<_>>(),
                "row {}", v
            );
        }
    }

    /// The dense remap is a monotone bijection live ids <-> `0..live`:
    /// `node(dense(v)) == v`, dense indices strictly ascend over
    /// ascending live ids, and dead ids map to nothing.
    #[test]
    fn dense_remap_is_a_monotone_bijection(
        base in 3usize..80,
        ops in prop::collection::vec(any::<u8>(), 0..180),
    ) {
        let g = churned_graph(base, &ops);
        let csr = FrozenCsr::from_graph(&g);
        let mut last = None;
        for v in g.iter() {
            let d = csr.dense(v).expect("live node has a dense id");
            prop_assert!((d as usize) < csr.live_count());
            prop_assert_eq!(csr.node(d), v);
            prop_assert!(last.is_none_or(|p| p < d), "remap not monotone at {}", v);
            last = Some(d);
        }
        prop_assert_eq!(last, (csr.live_count() > 0).then(|| csr.live_count() as u32 - 1));
        for i in 0..g.nodes_ever() as u32 {
            if !g.contains(n(i)) {
                prop_assert_eq!(csr.dense(n(i)), None);
            }
        }
    }

    /// The bitset BFS kernel returns the *same* `DistanceVec` as the
    /// queue BFS on the live graph — including `None` at dead and
    /// unreachable ids, and all-`None` from a dead source.
    #[test]
    fn bitset_bfs_matches_queue_bfs(
        base in 3usize..80,
        ops in prop::collection::vec(any::<u8>(), 0..180),
        src in any::<u8>(),
    ) {
        let g = churned_graph(base, &ops);
        let csr = FrozenCsr::from_graph(&g);
        let s = n(u32::from(src) % g.nodes_ever() as u32);
        prop_assert_eq!(csr.bfs_distances(s), traversal::bfs_distances(&g, s));
    }

    /// The dense bidirectional search agrees with the live kernel on
    /// random pairs — equal distances, and **node-identical** concrete
    /// paths (the monotone-remap guarantee the differential suites
    /// rely on).
    #[test]
    fn bidirectional_kernels_match_live_kernels(
        base in 3usize..60,
        ops in prop::collection::vec(any::<u8>(), 0..150),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>()), 1..16),
    ) {
        let g = churned_graph(base, &ops);
        let csr = FrozenCsr::from_graph(&g);
        let total = g.nodes_ever() as u32;
        for &(a, b) in &pairs {
            let (u, v) = (n(u32::from(a) % total), n(u32::from(b) % total));
            prop_assert_eq!(
                csr.bidirectional_distance(u, v),
                traversal::bidirectional_distance(&g, u, v),
                "distance ({}, {})", u, v
            );
            prop_assert_eq!(
                csr.shortest_path(u, v),
                traversal::shortest_path(&g, u, v),
                "path ({}, {})", u, v
            );
        }
    }
}

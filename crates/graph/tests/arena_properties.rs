//! Property tests for the arena-layout invariants of `fg-graph`:
//! tombstoned ids are never reused, sorted adjacency stays canonical, and
//! the union–find behaves like a reference model.

use fg_graph::{Graph, NodeId, SortedMap, SortedSet, UnionFind};
use proptest::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Applies a random op tape to a graph, mirroring it into a naive model
/// (edge list + alive list), and returns both.
fn build_graph(ops: &[u8]) -> (Graph, Vec<bool>, Vec<(u32, u32)>) {
    let mut g = Graph::with_nodes(4);
    let mut alive = vec![true; 4];
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for chunk in ops.chunks_exact(3) {
        let (op, a, b) = (chunk[0] % 4, chunk[1], chunk[2]);
        let total = alive.len() as u32;
        let (u, v) = ((a as u32) % total, (b as u32) % total);
        match op {
            0 => {
                g.add_node();
                alive.push(true);
            }
            1 => {
                if u != v && alive[u as usize] && alive[v as usize] {
                    let added = g.ensure_edge(n(u), n(v)).expect("live endpoints");
                    let key = (u.min(v), u.max(v));
                    if added {
                        edges.push(key);
                    }
                }
            }
            2 => {
                if alive[u as usize] {
                    g.remove_node(n(u)).expect("alive node");
                    alive[u as usize] = false;
                    edges.retain(|&(x, y)| x != u && y != u);
                }
            }
            _ => {
                if let Some(pos) = edges
                    .iter()
                    .position(|&(x, y)| (x, y) == (u.min(v), u.max(v)))
                {
                    g.remove_edge(n(u), n(v)).expect("edge tracked by model");
                    edges.swap_remove(pos);
                }
            }
        }
    }
    (g, alive, edges)
}

proptest! {
    /// Ids are never reused: every fresh node id equals the number of ids
    /// ever created, regardless of interleaved removals.
    #[test]
    fn node_ids_never_reused(ops in prop::collection::vec(any::<u8>(), 0..240)) {
        let (mut g, alive, _) = build_graph(&ops);
        let ever = g.nodes_ever();
        prop_assert_eq!(ever, alive.len());
        // Tombstones stay dead and a fresh id continues the sequence.
        let fresh = g.add_node();
        prop_assert_eq!(fresh, n(ever as u32));
        for (i, &a) in alive.iter().enumerate() {
            prop_assert_eq!(g.contains(n(i as u32)), a);
            if !a {
                prop_assert_eq!(g.degree(n(i as u32)), 0);
                prop_assert!(g.remove_node(n(i as u32)).is_err(), "double remove must fail");
            }
        }
    }

    /// The graph agrees with the naive edge-list model, and every
    /// adjacency list is strictly ascending (the determinism the replay
    /// suites rely on).
    #[test]
    fn adjacency_matches_model_and_stays_sorted(ops in prop::collection::vec(any::<u8>(), 0..240)) {
        let (g, _, mut edges) = build_graph(&ops);
        edges.sort_unstable();
        let mut seen: Vec<(u32, u32)> = g.edges().map(|e| (e.lo().raw(), e.hi().raw())).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, edges);
        prop_assert_eq!(g.degree_sum(), 2 * g.edge_count());
        for v in g.iter() {
            let nbrs = g.neighbor_vec(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted adjacency at {}", v);
        }
    }

    /// Union–find vs a brute-force model: connectivity, set count and set
    /// sizes all agree after an arbitrary union tape.
    #[test]
    fn unionfind_matches_naive_model(
        len in 1usize..40,
        unions in prop::collection::vec((any::<u8>(), any::<u8>()), 0..80),
    ) {
        let mut uf = UnionFind::new(len);
        // Model: each element's set label, flood-filled on union.
        let mut label: Vec<usize> = (0..len).collect();
        for &(a, b) in &unions {
            let (a, b) = (a as usize % len, b as usize % len);
            let merged = uf.union(a, b);
            prop_assert_eq!(merged, label[a] != label[b]);
            if label[a] != label[b] {
                let (from, to) = (label[b], label[a]);
                for l in &mut label {
                    if *l == from {
                        *l = to;
                    }
                }
            }
        }
        let distinct = {
            let mut ls = label.clone();
            ls.sort_unstable();
            ls.dedup();
            ls.len()
        };
        prop_assert_eq!(uf.set_count(), distinct);
        for a in 0..len {
            prop_assert_eq!(uf.set_size(a), label.iter().filter(|&&l| l == label[a]).count());
            for b in 0..len {
                prop_assert_eq!(uf.connected(a, b), label[a] == label[b]);
            }
        }
    }

    /// Union–find `push` keeps extending the universe with singletons.
    #[test]
    fn unionfind_push_after_unions(len in 1usize..20, extra in 1usize..10) {
        let mut uf = UnionFind::new(len);
        for i in 1..len {
            uf.union(0, i);
        }
        prop_assert_eq!(uf.set_count(), 1);
        for k in 0..extra {
            let idx = uf.push();
            prop_assert_eq!(idx, len + k);
            prop_assert!(!uf.connected(0, idx));
        }
        prop_assert_eq!(uf.set_count(), 1 + extra);
        prop_assert_eq!(uf.len(), len + extra);
    }

    /// `SortedSet` behaves like a sorted, deduplicated `Vec` under random
    /// insert/remove tapes.
    #[test]
    fn sorted_set_matches_model(ops in prop::collection::vec((any::<bool>(), any::<u8>()), 0..120)) {
        let mut s: SortedSet<u8> = SortedSet::new();
        let mut model: Vec<u8> = Vec::new();
        for &(insert, v) in &ops {
            if insert {
                prop_assert_eq!(s.insert(v), !model.contains(&v));
                if !model.contains(&v) {
                    model.push(v);
                }
            } else {
                prop_assert_eq!(s.remove(&v), model.contains(&v));
                model.retain(|&x| x != v);
            }
        }
        model.sort_unstable();
        prop_assert_eq!(s.iter().copied().collect::<Vec<_>>(), model);
    }

    /// `SortedMap` behaves like `BTreeMap` under random tapes, including
    /// iteration order.
    #[test]
    fn sorted_map_matches_btreemap(ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..120)) {
        let mut m: SortedMap<u8, u8> = SortedMap::new();
        let mut model: std::collections::BTreeMap<u8, u8> = std::collections::BTreeMap::new();
        for &(k, v, insert) in &ops {
            if insert {
                prop_assert_eq!(m.insert(k, v), model.insert(k, v));
            } else {
                prop_assert_eq!(m.remove(&k), model.remove(&k));
            }
        }
        let got: Vec<(u8, u8)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        let want: Vec<(u8, u8)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }
}

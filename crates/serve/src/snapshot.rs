//! The snapshot publication layer: a writer applies event batches
//! through a healer and publishes immutable, epoch-stamped
//! [`ServeSnapshot`]s behind an atomically swapped [`Arc`]; readers pin
//! the latest snapshot for a request's lifetime and old epochs are freed
//! when the last reader releases.
//!
//! This is the decoupling the in-process query API cannot provide:
//! [`fg_core::View`] *borrows* the healer, so no write can run while a
//! read is alive. Here the writer owns the healer exclusively and the
//! readers own [`FrozenView`] copies — stage-then-commit: the writer
//! stages a full CSR snapshot off to the side, then commits it with one
//! pointer swap. A reader can never observe a torn snapshot because the
//! swap is the *only* shared mutation and it installs a fully built,
//! never-again-mutated value (see DESIGN.md §13 for the consistency
//! argument).
//!
//! Every snapshot carries its **certificate**: the `(epoch, digest)`
//! pair, where the digest chains every applied outcome's
//! [`ReportDigest`] in order. Two replicas that
//! applied the same committed history answer with the same certificate,
//! which is what makes a served answer checkable against the master's
//! WAL (ROADMAP replication item).

use crate::protocol::{Request, ResponseBody};
use fg_core::{
    BatchReport, EngineError, FrozenView, GraphView, HealOutcome, NetworkEvent, ReportDigest,
    SelfHealer,
};
use fg_store::{DurableHealer, Persistable};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// One immutable published snapshot: a [`FrozenView`] of the healer's
/// state plus the certificate of the history that produced it.
///
/// All query answering on the serving path goes through the frozen
/// view's inherent methods — dense CSR kernels, bit-identical to the
/// live [`QueryOps`](fg_core::QueryOps) path at the same epoch (the
/// loopback differential suites assert this on both backends).
#[derive(Debug)]
pub struct ServeSnapshot {
    /// The structural epoch the snapshot was taken at.
    pub epoch: u64,
    /// The chained outcome digest over the whole applied history: a
    /// fold of each event's [`HealOutcome::digest`] into one FNV-1a
    /// accumulator, in application order. [`BASE_DIGEST`] before any
    /// event.
    pub digest: u64,
    /// The frozen image+ghost CSR pair answering every query op.
    pub view: FrozenView,
}

impl ServeSnapshot {
    /// Answers one protocol *read* request against this snapshot's
    /// frozen view; `None` for the write ops (submit-event /
    /// submit-batch), which no snapshot can answer — the server routes
    /// those to its writer (or a [`NotMaster`](crate::ErrorCode::NotMaster)
    /// frame) before ever consulting a snapshot.
    ///
    /// Exactly the kernels the in-process [`QueryOps`](fg_core::QueryOps)
    /// tier runs, so a served answer at epoch `e` is bit-identical to a
    /// live query at epoch `e` — the property the loopback differential
    /// suites pin down.
    pub fn answer(&self, request: &Request) -> Option<ResponseBody> {
        Some(match *request {
            Request::Epoch => ResponseBody::Epoch,
            Request::Distance(u, v) => ResponseBody::Distance(self.view.distance(u, v)),
            Request::Path(u, v) => ResponseBody::Path(self.view.path(u, v)),
            Request::Stretch(u, v) => ResponseBody::Stretch(self.view.stretch(u, v)),
            Request::Degree(u) => ResponseBody::Degree(self.view.degree(u).map(|d| d as u64)),
            Request::Neighbors(u) => {
                ResponseBody::Neighbors(self.view.alive(u).then(|| self.view.neighbors(u)))
            }
            Request::SameComponent(u, v) => {
                ResponseBody::SameComponent(self.view.same_component(u, v))
            }
            Request::SubmitEvent(_) | Request::SubmitBatch(_) => return None,
        })
    }
}

/// The digest a fresh history starts from (the FNV-1a offset basis) —
/// what a snapshot of an untouched healer is stamped with.
pub const BASE_DIGEST: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one applied outcome into a chained history digest.
pub fn chain_digest(digest: u64, outcome: &HealOutcome) -> u64 {
    ReportDigest::new()
        .word(digest)
        .word(outcome.digest())
        .value()
}

/// The atomically swapped publication point between one writer and any
/// number of readers.
///
/// Readers call [`pin`](SnapshotHub::pin) to grab the latest snapshot
/// for a request's lifetime; the writer calls
/// [`publish`](SnapshotHub::publish) to swap in a new one. The swap is
/// a pointer store under a short critical section — readers never block
/// behind snapshot construction, and a superseded epoch is dropped the
/// moment its last pinned `Arc` goes away.
#[derive(Debug)]
pub struct SnapshotHub {
    current: RwLock<Arc<ServeSnapshot>>,
    /// The published epoch, readable without touching the lock (the
    /// bench's saturation probes poll this).
    epoch: AtomicU64,
    /// Publish notifications for [`wait_for_epoch`](SnapshotHub::wait_for_epoch).
    publish_signal: (Mutex<u64>, Condvar),
}

impl SnapshotHub {
    /// A hub initially publishing `snapshot`.
    pub fn new(snapshot: ServeSnapshot) -> SnapshotHub {
        let epoch = snapshot.epoch;
        SnapshotHub {
            current: RwLock::new(Arc::new(snapshot)),
            epoch: AtomicU64::new(epoch),
            publish_signal: (Mutex::new(epoch), Condvar::new()),
        }
    }

    /// A hub over a healer's current state with a fresh digest chain —
    /// for serving a pre-built network with no applied history.
    pub fn from_healer(healer: &(impl SelfHealer + ?Sized)) -> SnapshotHub {
        let view = healer.view();
        SnapshotHub::new(ServeSnapshot {
            epoch: view.epoch(),
            digest: BASE_DIGEST,
            view: view.freeze(),
        })
    }

    /// Pins the latest published snapshot: the returned [`Arc`] keeps
    /// exactly that epoch alive for as long as the caller holds it,
    /// regardless of how many newer epochs are published meanwhile.
    pub fn pin(&self) -> Arc<ServeSnapshot> {
        // Poison-safe: the lock only guards an Arc pointer swap, which a
        // panicking publisher cannot leave half-done.
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The currently published epoch, lock-free.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Atomically replaces the published snapshot. Readers holding pins
    /// to the superseded epoch keep it alive until they release; new
    /// pins see `snapshot`.
    pub fn publish(&self, snapshot: ServeSnapshot) {
        let epoch = snapshot.epoch;
        // Poison-safe: both locks guard single replaceable values (an
        // Arc pointer, a u64) with no invariant a panic could tear.
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(snapshot);
        self.epoch.store(epoch, Ordering::Release);
        let (lock, cvar) = &self.publish_signal;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = epoch;
        cvar.notify_all();
    }

    /// Blocks until the published epoch reaches `target` (tests and
    /// clients that need read-your-writes against a known write point).
    pub fn wait_for_epoch(&self, target: u64) {
        let (lock, cvar) = &self.publish_signal;
        // Poison-safe: the guarded value is a plain u64 epoch; a waiter
        // must keep waiting even if some publisher thread panicked.
        let mut epoch = lock.lock().unwrap_or_else(|e| e.into_inner());
        while *epoch < target {
            epoch = cvar.wait(epoch).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The writer half: owns a healer exclusively, applies event batches,
/// chains the outcome digests, and publishes one snapshot per batch to
/// a shared [`SnapshotHub`].
///
/// `Publisher` is deliberately synchronous — it is the body a writer
/// *thread* runs (see the server examples and the torture suite), but
/// it is equally usable inline when the caller wants strict control
/// over publish points.
pub struct Publisher<H> {
    healer: H,
    hub: Arc<SnapshotHub>,
    digest: u64,
}

impl<H: SelfHealer> Publisher<H> {
    /// Wraps `healer`, creating a hub that starts at its current state
    /// with a fresh digest chain.
    pub fn new(healer: H) -> Publisher<H> {
        let hub = Arc::new(SnapshotHub::from_healer(&healer));
        Publisher {
            healer,
            hub,
            digest: BASE_DIGEST,
        }
    }

    /// The hub readers should pin from.
    pub fn hub(&self) -> Arc<SnapshotHub> {
        Arc::clone(&self.hub)
    }

    /// The chained digest of everything applied so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Read access to the wrapped healer (the differential suites
    /// compare served answers against its live views between batches).
    pub fn healer(&self) -> &H {
        &self.healer
    }

    /// Applies one batch through the healer, folds every outcome into
    /// the digest chain, and publishes the post-batch snapshot.
    ///
    /// # Errors
    ///
    /// The healer's [`EngineError`]. On failure the batch's applied
    /// prefix is still published so readers see exactly the applied
    /// state, but its per-event outcomes are not retrievable post-hoc —
    /// the chain folds an error sentinel instead, deliberately marking
    /// the certificate as diverged from any clean history.
    pub fn apply_and_publish(
        &mut self,
        events: &[NetworkEvent],
    ) -> Result<BatchReport, EngineError> {
        let result = self.healer.apply_batch(events);
        match &result {
            Ok(report) => {
                for outcome in &report.outcomes {
                    self.digest = chain_digest(self.digest, outcome);
                }
            }
            Err(_) => {
                self.digest = ReportDigest::new().word(self.digest).word(u64::MAX).value();
            }
        }
        self.publish();
        result
    }

    /// Publishes the healer's current state under the current digest
    /// chain. Normally [`apply_and_publish`](Publisher::apply_and_publish)
    /// calls this; it is public for writers that reach a publish point
    /// some other way.
    pub fn publish(&mut self) {
        let view = self.healer.view();
        self.hub.publish(ServeSnapshot {
            epoch: view.epoch(),
            digest: self.digest,
            view: view.freeze(),
        });
    }

    /// Consumes the publisher, returning the healer.
    pub fn into_healer(self) -> H {
        self.healer
    }
}

impl<H: Persistable> Publisher<DurableHealer<H>> {
    /// Wraps a durable healer as the serving write master: the hub
    /// starts at the store's recovered state and the serving digest
    /// chain *resumes from the WAL's committed chain*
    /// ([`DurableHealer::chain_digest`]) — both fold the same rule from
    /// the same base, so a recovered master stamps responses exactly
    /// where its pre-crash acknowledged history left off.
    pub fn from_durable(durable: DurableHealer<H>) -> Publisher<DurableHealer<H>> {
        let digest = durable.chain_digest();
        let snapshot = {
            let view = durable.view();
            ServeSnapshot {
                epoch: view.epoch(),
                digest,
                view: view.freeze(),
            }
        };
        let hub = Arc::new(SnapshotHub::new(snapshot));
        Publisher {
            healer: durable,
            hub,
            digest,
        }
    }

    /// The master's write path: apply → log → fsync (all inside the
    /// durable healer's batch commit) → **then** publish. The ordering
    /// is asserted, not just intended: publishing requires the serving
    /// digest to equal the WAL's committed chain digest, so a snapshot
    /// whose epoch is visible to readers is always backed by fsynced
    /// WAL state.
    ///
    /// Unlike [`Publisher::apply_and_publish`] (whose in-memory healer
    /// has no authoritative chain to fall back on), an engine error
    /// does not fold a divergence sentinel: the WAL chain over the
    /// applied-and-logged prefix *is* the truth, and the serving digest
    /// resynchronizes to it before the prefix is published.
    ///
    /// # Errors
    ///
    /// The healer's [`EngineError`]; the applied prefix is durable and
    /// published.
    ///
    /// # Panics
    ///
    /// If the serving digest chain ever disagrees with the WAL's
    /// committed chain at a publish point — that would mean an epoch
    /// was about to be served that committed history cannot certify.
    pub fn apply_log_publish(
        &mut self,
        events: &[NetworkEvent],
    ) -> Result<BatchReport, EngineError> {
        let result = self.healer.apply_batch(events);
        match &result {
            Ok(report) => {
                for outcome in &report.outcomes {
                    self.digest = chain_digest(self.digest, outcome);
                }
            }
            Err(_) => {
                // The WAL logged exactly the applied prefix; its chain
                // is authoritative for what readers may now see.
                self.digest = self.healer.chain_digest();
            }
        }
        assert_eq!(
            self.digest,
            self.healer.chain_digest(),
            "apply→log→fsync→publish ordering violated: serving digest diverged from \
             the committed WAL chain"
        );
        self.publish();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::ForgivingGraph;
    use fg_graph::{generators, NodeId};

    #[test]
    fn pins_keep_superseded_epochs_alive() {
        let fg = ForgivingGraph::from_graph(&generators::cycle(8)).unwrap();
        let mut publisher = Publisher::new(fg);
        let hub = publisher.hub();
        let first = hub.pin();
        assert_eq!(first.epoch, 8);
        assert_eq!(first.digest, BASE_DIGEST);

        let _ = publisher
            .apply_and_publish(&[NetworkEvent::delete(NodeId::new(3))])
            .unwrap();
        let second = hub.pin();
        assert_eq!(second.epoch, 9);
        assert_ne!(second.digest, BASE_DIGEST);
        // The old pin still answers at its own epoch.
        assert_eq!(first.epoch, 8);
        assert!(first.view.alive(NodeId::new(3)));
        assert!(!second.view.alive(NodeId::new(3)));
    }

    #[test]
    fn superseded_snapshots_are_freed_when_released() {
        let fg = ForgivingGraph::from_graph(&generators::star(6)).unwrap();
        let mut publisher = Publisher::new(fg);
        let hub = publisher.hub();
        let pinned = hub.pin();
        let weak = Arc::downgrade(&pinned);
        let _ = publisher
            .apply_and_publish(&[NetworkEvent::insert([NodeId::new(1)])])
            .unwrap();
        // Still alive: the reader holds it (the hub no longer does).
        assert!(weak.upgrade().is_some());
        drop(pinned);
        assert!(
            weak.upgrade().is_none(),
            "superseded epoch must drop with its last pin"
        );
    }

    #[test]
    fn digest_chain_is_deterministic_across_equal_histories() {
        let events = [
            NetworkEvent::insert([NodeId::new(0), NodeId::new(2)]),
            NetworkEvent::delete(NodeId::new(1)),
            NetworkEvent::delete(NodeId::new(0)),
        ];
        let run = |batching: &[usize]| {
            let fg = ForgivingGraph::from_graph(&generators::cycle(6)).unwrap();
            let mut publisher = Publisher::new(fg);
            let mut rest: &[NetworkEvent] = &events;
            for &take in batching {
                let (head, tail) = rest.split_at(take);
                let _ = publisher.apply_and_publish(head).unwrap();
                rest = tail;
            }
            (publisher.hub().pin().epoch, publisher.digest())
        };
        // Same history, different batch boundaries: same certificate.
        assert_eq!(run(&[3]), run(&[1, 2]));
        assert_eq!(run(&[3]), run(&[1, 1, 1]));
    }

    #[test]
    fn wait_for_epoch_sees_publishes() {
        let fg = ForgivingGraph::from_graph(&generators::path(4)).unwrap();
        let mut publisher = Publisher::new(fg);
        let hub = publisher.hub();
        let waiter = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                hub.wait_for_epoch(5);
                hub.pin().epoch
            })
        };
        let _ = publisher
            .apply_and_publish(&[NetworkEvent::insert([NodeId::new(0)])])
            .unwrap();
        assert_eq!(waiter.join().unwrap(), 5);
        assert_eq!(hub.epoch(), 5);
    }
}

//! `fg-serve` — the threaded TCP query-serving subsystem.
//!
//! The paper's forgiving graph is a *distributed* data structure: it
//! exists to keep answering low-stretch queries while the network it
//! models is under attack. This crate is the serving half of that
//! story for this repo — it takes the in-process query surface
//! ([`fg_core::QueryOps`] over [`fg_core::FrozenView`]) and puts it
//! behind a socket with real writer/reader decoupling:
//!
//! - [`snapshot`]: a writer applies event batches through any
//!   [`SelfHealer`](fg_core::SelfHealer) and publishes immutable,
//!   epoch-stamped snapshots behind an atomically swapped `Arc`
//!   ([`SnapshotHub`]); readers pin the latest epoch per request and
//!   superseded epochs are freed by the last pin's drop.
//! - [`protocol`]: FGQ1, a length-prefixed CRC-framed binary protocol
//!   (framing borrowed from the WAL) with typed error frames; every
//!   response carries the `(epoch, digest)` certificate of the
//!   snapshot that answered it.
//! - [`server`]: an acceptor plus N reader threads over std
//!   `TcpListener` — bounded accept queue for backpressure, graceful
//!   shutdown, per-connection pipelining, and a hard rule that
//!   malformed input answers a typed error frame and closes, never
//!   panics.
//! - [`client`]: a blocking client with typed per-op round trips and a
//!   split [`send`](Client::send)/[`recv`](Client::recv) pair for
//!   pipelining.
//! - [`mod@write`]: the master's writer thread — workers forward FGQ1
//!   write ops (submit-event / submit-batch) as [`WriteJob`]s; the
//!   writer runs apply → WAL log → fsync → publish (ordering asserted)
//!   and acks with the post-publish `(epoch, digest)` stamp.
//! - [`replica`]: a [`ReplicaNode`] ingesting a master's FGR1 WAL
//!   stream ([`fg_store::repl`]) and republishing each synced epoch
//!   into its own hub, so a read-only server answers with certificates
//!   bit-identical to the master's at equal epochs.
//!
//! The design contract — the epoch-consistency argument, backpressure
//! and shutdown semantics, and the replication story — is written up in
//! DESIGN.md §13–§14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod protocol;
pub mod replica;
pub mod server;
pub mod snapshot;
pub mod write;

pub use client::{Client, Stamped};
pub use error::ServeError;
pub use protocol::{ErrorCode, Request, Response, ResponseBody};
pub use replica::ReplicaNode;
pub use server::{Server, ServerConfig, ServerStats};
pub use snapshot::{chain_digest, Publisher, ServeSnapshot, SnapshotHub, BASE_DIGEST};
pub use write::{spawn_writer, WriteAck, WriteJob};

//! The master's writer thread: the single owner of the durable
//! publisher, draining submitted write jobs from the server's workers.
//!
//! Every write op a worker parses becomes one [`WriteJob`] on a bounded
//! queue. The writer applies it via
//! [`Publisher::apply_log_publish`](crate::Publisher::apply_log_publish)
//! — apply → WAL log → fsync → publish, in that order, asserted — and
//! acknowledges with the post-publish `(epoch, digest)` stamp. The
//! worker frames that stamp back to the client, so a client that
//! receives a write ack holds a certificate for fsynced state: a
//! replica reaching that epoch must answer with the same digest.
//!
//! The queue is the write-side backpressure: when the writer falls
//! behind, workers block in `send` and their connections stop reading —
//! exactly the accept-queue story (DESIGN.md §13), one layer up.

use crate::snapshot::Publisher;
use fg_core::NetworkEvent;
use fg_store::{DurableHealer, Persistable};
use std::sync::mpsc::{sync_channel, Sender, SyncSender};
use std::thread::JoinHandle;

/// One submitted write: the events to apply and the channel the
/// submitting worker is blocked on.
pub struct WriteJob {
    /// The events to apply as one batch (one commit, one fsync).
    pub events: Vec<NetworkEvent>,
    /// Where the ack (or the engine error, rendered) goes. A dropped
    /// receiver — client gone mid-write — is fine; the write still
    /// committed.
    pub reply: Sender<Result<WriteAck, String>>,
}

/// The writer's acknowledgement of one applied-and-published job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// Events applied (the whole batch on success).
    pub applied: usize,
    /// The epoch the publish landed on.
    pub epoch: u64,
    /// The chained certificate digest at that epoch — equal to the
    /// WAL's committed chain, by the publish assertion.
    pub digest: u64,
}

/// Spawns the writer thread over `publisher` with a `queue_depth`-deep
/// job queue. Returns the sender to hand to
/// [`Server::bind_master`](crate::Server::bind_master) (clone it per
/// server if needed) and the join handle, which yields the publisher
/// back once every sender is dropped — shut the server down first, then
/// drop your own sender, then join to get the store back for clean
/// checkpointing.
///
/// # Panics
///
/// Propagates (via the join handle) the publish-ordering assertion in
/// [`Publisher::apply_log_publish`](crate::Publisher::apply_log_publish).
pub fn spawn_writer<H>(
    publisher: Publisher<DurableHealer<H>>,
    queue_depth: usize,
) -> (
    SyncSender<WriteJob>,
    JoinHandle<Publisher<DurableHealer<H>>>,
)
where
    H: Persistable + Send + 'static,
{
    let (tx, rx) = sync_channel::<WriteJob>(queue_depth.max(1));
    let handle = std::thread::Builder::new()
        .name("fg-serve-writer".into())
        .spawn(move || {
            let mut publisher = publisher;
            while let Ok(job) = rx.recv() {
                let reply = match publisher.apply_log_publish(&job.events) {
                    Ok(report) => Ok(WriteAck {
                        applied: report.outcomes.len(),
                        epoch: publisher.hub().epoch(),
                        digest: publisher.digest(),
                    }),
                    Err(e) => Err(e.to_string()),
                };
                // fg-lint: allow(swallowed-results): the client hung up before its ack; the write is already durable either way
                let _ = job.reply.send(reply);
            }
            publisher
        })
        .expect("spawn writer thread");
    (tx, handle)
}

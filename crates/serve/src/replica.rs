//! The read-replica serving node: a [`fg_store::Replica`] ingesting the
//! master's WAL stream, republishing each productive sync round into its
//! own [`SnapshotHub`] so a read-only [`Server`](crate::Server) can
//! answer FGQ1 queries from it.
//!
//! The stamp on every replica-served response is `(epoch,
//! chain_digest)` straight off the replica's digest-certified store —
//! the same fold over the same committed records the master ran, so a
//! client comparing a replica answer's certificate against the master's
//! at the same epoch sees bit-identical values (the replication
//! differential suite asserts exactly this for all seven read ops).
//! Write ops sent to a replica-backed server come back as typed
//! [`NotMaster`](crate::ErrorCode::NotMaster) frames.

use crate::snapshot::{ServeSnapshot, SnapshotHub};
use fg_core::{GraphView, SelfHealer};
use fg_store::{DurableOptions, Persistable, RecoveryReport, ReplError, ReplProgress, Replica};
use std::net::ToSocketAddrs;
use std::path::Path;
use std::sync::Arc;

/// A replica plus the hub it publishes into. Drive it with
/// [`sync_once`](ReplicaNode::sync_once) (or
/// [`sync_to_caught_up`](ReplicaNode::sync_to_caught_up)) from whatever
/// cadence loop fits; hand [`hub`](ReplicaNode::hub) to a read-only
/// [`Server::bind`](crate::Server::bind).
pub struct ReplicaNode<H: Persistable> {
    replica: Replica<H>,
    hub: Arc<SnapshotHub>,
}

impl<H: Persistable> ReplicaNode<H> {
    /// Bootstraps (or re-opens) a replica store at `dir` from `master`
    /// and publishes its recovered state. See
    /// [`Replica::bootstrap`] for the store-side semantics.
    ///
    /// # Errors
    ///
    /// As [`Replica::bootstrap`].
    pub fn bootstrap(
        master: impl ToSocketAddrs,
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<(ReplicaNode<H>, RecoveryReport), ReplError> {
        let (replica, report) = Replica::bootstrap(master, dir, opts)?;
        let hub = Arc::new(SnapshotHub::new(snapshot_of(&replica)));
        Ok((ReplicaNode { replica, hub }, report))
    }

    /// The hub a read-only server should serve from.
    pub fn hub(&self) -> Arc<SnapshotHub> {
        Arc::clone(&self.hub)
    }

    /// The replica's current epoch.
    pub fn epoch(&self) -> u64 {
        self.replica.epoch()
    }

    /// The replica's certificate chain digest.
    pub fn chain_digest(&self) -> u64 {
        self.replica.chain_digest()
    }

    /// The wrapped store-level replica (cadence knobs like
    /// [`Replica::max_fetch_bytes`] live there).
    pub fn replica_mut(&mut self) -> &mut Replica<H> {
        &mut self.replica
    }

    /// One fetch/apply round; publishes a fresh snapshot if anything
    /// was applied, so readers see the new epoch the moment it is
    /// locally durable — never before.
    ///
    /// # Errors
    ///
    /// As [`Replica::sync_once`]; nothing is published from a refused
    /// shipment's round.
    pub fn sync_once(&mut self) -> Result<ReplProgress, ReplError> {
        let progress = self.replica.sync_once()?;
        if progress.applied > 0 {
            self.hub.publish(snapshot_of(&self.replica));
        }
        Ok(progress)
    }

    /// Syncs until the master reports caught up, publishing once at the
    /// end if anything was applied; returns the total records applied.
    ///
    /// # Errors
    ///
    /// As [`Replica::sync_to_caught_up`].
    pub fn sync_to_caught_up(&mut self) -> Result<usize, ReplError> {
        let applied = self.replica.sync_to_caught_up()?;
        if applied > 0 {
            self.hub.publish(snapshot_of(&self.replica));
        }
        Ok(applied)
    }

    /// Re-dials the master after it restarted; the store and published
    /// snapshot are untouched.
    ///
    /// # Errors
    ///
    /// Connection failure.
    pub fn reconnect(&mut self) -> Result<(), ReplError> {
        self.replica.reconnect()
    }

    /// Unwraps the store-level replica (the hub keeps serving its last
    /// published snapshot).
    pub fn into_replica(self) -> Replica<H> {
        self.replica
    }
}

/// A snapshot of the replica's current state stamped with its
/// store-certified `(epoch, chain)` certificate.
fn snapshot_of<H: Persistable>(replica: &Replica<H>) -> ServeSnapshot {
    let digest = replica.chain_digest();
    let view = replica.healer().view();
    ServeSnapshot {
        epoch: view.epoch(),
        digest,
        view: view.freeze(),
    }
}

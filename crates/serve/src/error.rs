//! The serving layer's error type: transport failures, protocol
//! violations, and typed error frames relayed from the server.

use crate::protocol::ErrorCode;
use std::fmt;
use std::io;

/// Everything that can go wrong between a client and an `fg-serve`
/// server.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed (connect, read, write, bind).
    Io(io::Error),
    /// The peer's bytes violate the FGQ1 framing or payload rules —
    /// bad magic, bad CRC, oversized length prefix, truncated payload.
    /// Carries a human-readable description of the violation.
    Malformed(String),
    /// The server answered with a typed error frame instead of a result.
    Server {
        /// The machine-readable error class.
        code: ErrorCode,
        /// The server's description of what it rejected.
        message: String,
    },
    /// The connection closed mid-frame — the peer went away.
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Malformed(detail) => write!(f, "malformed FGQ1 frame: {detail}"),
            ServeError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ServeError::Disconnected => write!(f, "connection closed mid-frame"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

//! FGQ1 — the length-prefixed binary query protocol.
//!
//! ## Frame format
//!
//! Every message in either direction is one CRC-framed record, exactly
//! like the WAL's (`fg_store::wal`):
//!
//! ```text
//! [len: u32 LE][crc: u32 LE][payload]
//! ```
//!
//! `len` is the payload length (bounded by [`MAX_FRAME_PAYLOAD`]); `crc`
//! is CRC-32 (IEEE) over the payload. A frame whose length prefix is
//! oversized, whose checksum fails, or whose payload violates the rules
//! below is *malformed*: the server answers with a typed error frame and
//! closes the connection — it never panics and never guesses.
//!
//! ## Request payload
//!
//! ```text
//! [magic "FGQ1": 4B][version: u8][request id: u64 LE][op: u8][args]
//! ```
//!
//! Ops and their args (node ids are `u32 LE`):
//!
//! | tag | op              | args                    |
//! |-----|-----------------|-------------------------|
//! | 0   | epoch           | —                       |
//! | 1   | distance        | `u, v`                  |
//! | 2   | path            | `u, v`                  |
//! | 3   | stretch         | `u, v`                  |
//! | 4   | degree          | `u`                     |
//! | 5   | neighbors       | `u`                     |
//! | 6   | same-component  | `u, v`                  |
//! | 7   | submit-event    | event list (count = 1)  |
//! | 8   | submit-batch    | event list              |
//!
//! Ops 7–8 are **writes**: the event list is the WAL's own wire form
//! (`fg_store::encode_events` — a `u32` count then tagged events), so a
//! submitted event and the record it becomes agree byte-for-byte. Only
//! a master (a server wired to a writer) accepts them; replicas and
//! read-only servers answer a typed [`ErrorCode::NotMaster`] frame and
//! keep the connection open — op-level refusals, unlike framing
//! violations, do not close the connection. A successful write's
//! response is stamped with the *post-apply* `(epoch, digest)`
//! certificate, making every acknowledged write verifiable against the
//! WAL chain.
//!
//! ## Response payload
//!
//! ```text
//! [magic][version][request id: u64][status: u8][epoch: u64][digest: u64][body]
//! ```
//!
//! `status` 0 is success; the body then repeats the op tag followed by
//! the op-specific result (optional values are a presence byte, node
//! lists are a `u32` count then ids). Any other `status` is an
//! [`ErrorCode`] and the body is a `u16`-length-prefixed UTF-8 message.
//! **Every** response — success or error — carries the `(epoch, digest)`
//! stamp of the snapshot that answered it (zeros when no snapshot was
//! ever published), the certificate replication will check against the
//! master's committed history.

use crate::error::ServeError;
use fg_core::NetworkEvent;
use fg_graph::NodeId;
use fg_store::{crc32, decode_events, encode_events};

/// The four magic bytes opening every FGQ1 payload.
pub const MAGIC: [u8; 4] = *b"FGQ1";

/// The protocol version this crate speaks.
pub const VERSION: u8 = 1;

/// Upper bound on a sane frame payload; a length prefix past this is
/// framing garbage and the connection is closed without buffering it.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Smallest well-formed request payload: magic + version + id + op.
pub const MIN_REQUEST_PAYLOAD: usize = 4 + 1 + 8 + 1;

/// The machine-readable error classes a server can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Framing violation: bad CRC, truncated payload, or garbage where
    /// a frame header should be. The connection closes after this frame.
    Malformed = 1,
    /// The payload does not open with `FGQ1` at a version this server
    /// speaks. The connection closes after this frame.
    BadMagic = 2,
    /// The op tag is not one this server knows.
    UnknownOp = 3,
    /// The op's argument bytes are truncated or carry trailing garbage.
    BadPayload = 4,
    /// The server is shutting down and will not answer.
    ShuttingDown = 5,
    /// The frame's length prefix exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized = 6,
    /// A write op (submit-event / submit-batch) reached a server that
    /// is not a write master — a replica or a read-only server. The
    /// connection stays open; reads still work.
    NotMaster = 7,
    /// The write master accepted the op but the engine refused the
    /// event(s) (e.g. deleting a dead node). Any applied prefix of a
    /// batch **is** durable and published; the message says where it
    /// stopped. The connection stays open.
    WriteFailed = 8,
}

impl ErrorCode {
    /// Decodes a status byte into an error code, if it is one.
    pub fn from_status(status: u8) -> Option<ErrorCode> {
        match status {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::BadMagic),
            3 => Some(ErrorCode::UnknownOp),
            4 => Some(ErrorCode::BadPayload),
            5 => Some(ErrorCode::ShuttingDown),
            6 => Some(ErrorCode::Oversized),
            7 => Some(ErrorCode::NotMaster),
            8 => Some(ErrorCode::WriteFailed),
            _ => None,
        }
    }
}

/// One query request — the client-side view of the ops table above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// The snapshot epoch the server is currently answering at.
    Epoch,
    /// Exact shortest-path hops between two nodes in the healed image.
    Distance(NodeId, NodeId),
    /// A concrete shortest image path between two nodes.
    Path(NodeId, NodeId),
    /// Image distance over ghost (`G'`) distance for a pair.
    Stretch(NodeId, NodeId),
    /// A node's image degree.
    Degree(NodeId),
    /// A node's image neighbors, ascending.
    Neighbors(NodeId),
    /// Whether two nodes are live and mutually reachable.
    SameComponent(NodeId, NodeId),
    /// Apply one adversarial event through the master's writer (WAL
    /// logged and fsynced before the response stamp is taken).
    SubmitEvent(NetworkEvent),
    /// Apply a batch of events atomically through the master's writer.
    SubmitBatch(Vec<NetworkEvent>),
}

impl Request {
    /// This request's op tag.
    pub fn op(&self) -> u8 {
        match self {
            Request::Epoch => 0,
            Request::Distance(..) => 1,
            Request::Path(..) => 2,
            Request::Stretch(..) => 3,
            Request::Degree(..) => 4,
            Request::Neighbors(..) => 5,
            Request::SameComponent(..) => 6,
            Request::SubmitEvent(_) => 7,
            Request::SubmitBatch(_) => 8,
        }
    }

    /// Whether this op mutates state (and is therefore master-only).
    pub fn is_write(&self) -> bool {
        matches!(self, Request::SubmitEvent(_) | Request::SubmitBatch(_))
    }

    /// The framed wire bytes of this request under `request_id`.
    pub fn to_frame(&self, request_id: u64) -> Vec<u8> {
        let mut payload = Vec::with_capacity(MIN_REQUEST_PAYLOAD + 8);
        payload.extend_from_slice(&MAGIC);
        payload.push(VERSION);
        payload.extend_from_slice(&request_id.to_le_bytes());
        payload.push(self.op());
        match self {
            Request::Epoch => {}
            Request::Degree(u) | Request::Neighbors(u) => {
                payload.extend_from_slice(&u.raw().to_le_bytes());
            }
            Request::Distance(u, v)
            | Request::Path(u, v)
            | Request::Stretch(u, v)
            | Request::SameComponent(u, v) => {
                payload.extend_from_slice(&u.raw().to_le_bytes());
                payload.extend_from_slice(&v.raw().to_le_bytes());
            }
            Request::SubmitEvent(event) => {
                encode_events(&mut payload, std::slice::from_ref(event));
            }
            Request::SubmitBatch(events) => encode_events(&mut payload, events),
        }
        frame(&payload)
    }

    /// Parses a request payload (the bytes inside a verified frame).
    ///
    /// # Errors
    ///
    /// The [`ErrorCode`] the server must answer with, plus a
    /// human-readable detail: [`ErrorCode::BadMagic`] when the payload
    /// does not open with `FGQ1` at [`VERSION`], [`ErrorCode::UnknownOp`]
    /// for an unassigned op tag, and [`ErrorCode::BadPayload`] for
    /// truncated or over-long argument bytes. When the request id was
    /// readable before the failure it is returned alongside, so the
    /// error frame can echo it.
    pub fn parse(payload: &[u8]) -> Result<(u64, Request), (Option<u64>, ErrorCode, String)> {
        if payload.len() < MIN_REQUEST_PAYLOAD {
            return Err((
                None,
                ErrorCode::BadPayload,
                format!(
                    "request payload is {} bytes; the fixed header alone is {MIN_REQUEST_PAYLOAD}",
                    payload.len()
                ),
            ));
        }
        if payload[..4] != MAGIC {
            return Err((
                None,
                ErrorCode::BadMagic,
                format!("payload opens with {:02x?}, not \"FGQ1\"", &payload[..4]),
            ));
        }
        if payload[4] != VERSION {
            return Err((
                None,
                ErrorCode::BadMagic,
                format!(
                    "protocol version {} (this server speaks {VERSION})",
                    payload[4]
                ),
            ));
        }
        let id = u64::from_le_bytes(arr(&payload[5..13]));
        let op = payload[13];
        let args = &payload[14..];
        let one = |args: &[u8]| -> Result<NodeId, String> {
            if args.len() != 4 {
                return Err(format!(
                    "op {op} takes one node id (4 bytes), got {}",
                    args.len()
                ));
            }
            Ok(NodeId::new(u32::from_le_bytes(arr(args))))
        };
        let two = |args: &[u8]| -> Result<(NodeId, NodeId), String> {
            if args.len() != 8 {
                return Err(format!(
                    "op {op} takes two node ids (8 bytes), got {}",
                    args.len()
                ));
            }
            Ok((
                NodeId::new(u32::from_le_bytes(arr(&args[..4]))),
                NodeId::new(u32::from_le_bytes(arr(&args[4..]))),
            ))
        };
        let request = match op {
            0 => {
                if args.is_empty() {
                    Ok(Request::Epoch)
                } else {
                    Err(format!("epoch takes no args, got {} bytes", args.len()))
                }
            }
            1 => two(args).map(|(u, v)| Request::Distance(u, v)),
            2 => two(args).map(|(u, v)| Request::Path(u, v)),
            3 => two(args).map(|(u, v)| Request::Stretch(u, v)),
            4 => one(args).map(Request::Degree),
            5 => one(args).map(Request::Neighbors),
            6 => two(args).map(|(u, v)| Request::SameComponent(u, v)),
            7 => decode_events(args)
                .map_err(|detail| format!("submit-event list does not decode: {detail}"))
                .and_then(|mut events| match (events.pop(), events.is_empty()) {
                    (Some(event), true) => Ok(Request::SubmitEvent(event)),
                    (popped, _) => Err(format!(
                        "submit-event takes exactly one event, got {}",
                        events.len() + usize::from(popped.is_some())
                    )),
                }),
            8 => decode_events(args)
                .map(Request::SubmitBatch)
                .map_err(|detail| format!("submit-batch list does not decode: {detail}")),
            other => {
                return Err((
                    Some(id),
                    ErrorCode::UnknownOp,
                    format!("unknown op tag {other}"),
                ))
            }
        };
        match request {
            Ok(r) => Ok((id, r)),
            Err(detail) => Err((Some(id), ErrorCode::BadPayload, detail)),
        }
    }
}

/// A successful response's op-specific result.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Answer to [`Request::Epoch`] — the stamp in the header is the
    /// answer.
    Epoch,
    /// Answer to [`Request::Distance`].
    Distance(Option<u32>),
    /// Answer to [`Request::Path`].
    Path(Option<Vec<NodeId>>),
    /// Answer to [`Request::Stretch`].
    Stretch(Option<f64>),
    /// Answer to [`Request::Degree`].
    Degree(Option<u64>),
    /// Answer to [`Request::Neighbors`] (`None` when the node is dead).
    Neighbors(Option<Vec<NodeId>>),
    /// Answer to [`Request::SameComponent`].
    SameComponent(bool),
    /// Answer to [`Request::SubmitEvent`] — the post-apply stamp in the
    /// header is the acknowledgement.
    EventSubmitted,
    /// Answer to [`Request::SubmitBatch`] — how many events applied
    /// (always the full batch on success).
    BatchSubmitted(u32),
}

impl ResponseBody {
    /// The op tag this body answers.
    pub fn op(&self) -> u8 {
        match self {
            ResponseBody::Epoch => 0,
            ResponseBody::Distance(_) => 1,
            ResponseBody::Path(_) => 2,
            ResponseBody::Stretch(_) => 3,
            ResponseBody::Degree(_) => 4,
            ResponseBody::Neighbors(_) => 5,
            ResponseBody::SameComponent(_) => 6,
            ResponseBody::EventSubmitted => 7,
            ResponseBody::BatchSubmitted(_) => 8,
        }
    }
}

/// One decoded response frame: the request it answers, the snapshot
/// certificate, and either a result body or a typed error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id this frame answers (0 when the server
    /// could not read one out of a malformed request).
    pub request_id: u64,
    /// The epoch of the snapshot that answered (0 before any publish).
    pub epoch: u64,
    /// The chained outcome digest of that snapshot (see
    /// [`crate::snapshot::ServeSnapshot`]).
    pub digest: u64,
    /// The result, or the typed error the server answered with.
    pub body: Result<ResponseBody, (ErrorCode, String)>,
}

impl Response {
    /// Encodes a success response into framed wire bytes.
    pub fn ok_frame(request_id: u64, epoch: u64, digest: u64, body: &ResponseBody) -> Vec<u8> {
        let mut payload = response_header(request_id, 0, epoch, digest);
        payload.push(body.op());
        fn push_ids(payload: &mut Vec<u8>, ids: &[NodeId]) {
            payload.extend_from_slice(&(ids.len() as u32).to_le_bytes());
            for id in ids {
                payload.extend_from_slice(&id.raw().to_le_bytes());
            }
        }
        match body {
            ResponseBody::Epoch => {}
            ResponseBody::Distance(d) => match d {
                Some(d) => {
                    payload.push(1);
                    payload.extend_from_slice(&d.to_le_bytes());
                }
                None => payload.push(0),
            },
            ResponseBody::Path(p) | ResponseBody::Neighbors(p) => match p {
                Some(ids) => {
                    payload.push(1);
                    push_ids(&mut payload, ids);
                }
                None => payload.push(0),
            },
            ResponseBody::Stretch(s) => match s {
                Some(s) => {
                    payload.push(1);
                    payload.extend_from_slice(&s.to_bits().to_le_bytes());
                }
                None => payload.push(0),
            },
            ResponseBody::Degree(d) => match d {
                Some(d) => {
                    payload.push(1);
                    payload.extend_from_slice(&d.to_le_bytes());
                }
                None => payload.push(0),
            },
            ResponseBody::SameComponent(c) => payload.push(u8::from(*c)),
            ResponseBody::EventSubmitted => {}
            ResponseBody::BatchSubmitted(n) => payload.extend_from_slice(&n.to_le_bytes()),
        }
        frame(&payload)
    }

    /// Encodes a typed error response into framed wire bytes.
    pub fn error_frame(
        request_id: u64,
        epoch: u64,
        digest: u64,
        code: ErrorCode,
        message: &str,
    ) -> Vec<u8> {
        let mut payload = response_header(request_id, code as u8, epoch, digest);
        let msg = message.as_bytes();
        let take = msg.len().min(u16::MAX as usize);
        payload.extend_from_slice(&(take as u16).to_le_bytes());
        payload.extend_from_slice(&msg[..take]);
        frame(&payload)
    }

    /// Parses a response payload (the bytes inside a verified frame).
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] when the payload violates the response
    /// rules — the transport gave us a well-framed record that is not a
    /// well-formed FGQ1 response.
    pub fn parse(payload: &[u8]) -> Result<Response, ServeError> {
        let mut c = Dec::new(payload);
        let magic = c.bytes(4)?;
        if magic != MAGIC {
            return Err(ServeError::Malformed(format!(
                "response opens with {magic:02x?}, not \"FGQ1\""
            )));
        }
        let version = c.u8()?;
        if version != VERSION {
            return Err(ServeError::Malformed(format!(
                "response version {version} (this client speaks {VERSION})"
            )));
        }
        let request_id = c.u64()?;
        let status = c.u8()?;
        let epoch = c.u64()?;
        let digest = c.u64()?;
        if status != 0 {
            let code = ErrorCode::from_status(status)
                .ok_or_else(|| ServeError::Malformed(format!("unknown error status {status}")))?;
            let len = c.u16()? as usize;
            let message = String::from_utf8_lossy(c.bytes(len)?).into_owned();
            c.finish()?;
            return Ok(Response {
                request_id,
                epoch,
                digest,
                body: Err((code, message)),
            });
        }
        let op = c.u8()?;
        let body = match op {
            0 => ResponseBody::Epoch,
            1 => ResponseBody::Distance(match c.u8()? {
                0 => None,
                1 => Some(c.u32()?),
                other => return Err(bad_presence(other)),
            }),
            2 => ResponseBody::Path(c.opt_ids()?),
            3 => ResponseBody::Stretch(match c.u8()? {
                0 => None,
                1 => Some(f64::from_bits(c.u64()?)),
                other => return Err(bad_presence(other)),
            }),
            4 => ResponseBody::Degree(match c.u8()? {
                0 => None,
                1 => Some(c.u64()?),
                other => return Err(bad_presence(other)),
            }),
            5 => ResponseBody::Neighbors(c.opt_ids()?),
            6 => ResponseBody::SameComponent(match c.u8()? {
                0 => false,
                1 => true,
                other => return Err(bad_presence(other)),
            }),
            7 => ResponseBody::EventSubmitted,
            8 => ResponseBody::BatchSubmitted(c.u32()?),
            other => {
                return Err(ServeError::Malformed(format!(
                    "response carries unknown op tag {other}"
                )))
            }
        };
        c.finish()?;
        Ok(Response {
            request_id,
            epoch,
            digest,
            body: Ok(body),
        })
    }
}

fn bad_presence(byte: u8) -> ServeError {
    ServeError::Malformed(format!("presence byte must be 0 or 1, got {byte}"))
}

fn response_header(request_id: u64, status: u8, epoch: u64, digest: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + 1 + 8 + 1 + 8 + 8 + 16);
    payload.extend_from_slice(&MAGIC);
    payload.push(VERSION);
    payload.extend_from_slice(&request_id.to_le_bytes());
    payload.push(status);
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload.extend_from_slice(&digest.to_le_bytes());
    payload
}

/// Wraps a payload in the `[len][crc]` frame header.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    let mut framed = Vec::with_capacity(8 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

/// Validates a frame header, returning the payload length to read.
///
/// # Errors
///
/// [`ErrorCode::Oversized`] (with detail) when the length prefix
/// exceeds [`MAX_FRAME_PAYLOAD`] — the one violation detectable before
/// reading the payload.
pub fn parse_frame_header(header: [u8; 8]) -> Result<(usize, u32), (ErrorCode, String)> {
    let len = u32::from_le_bytes(arr(&header[..4])) as usize;
    let crc = u32::from_le_bytes(arr(&header[4..]));
    if len > MAX_FRAME_PAYLOAD {
        return Err((
            ErrorCode::Oversized,
            format!("length prefix {len} exceeds the {MAX_FRAME_PAYLOAD}-byte cap"),
        ));
    }
    Ok((len, crc))
}

/// Verifies a frame payload against its header checksum.
///
/// # Errors
///
/// [`ErrorCode::Malformed`] (with detail) on a CRC mismatch.
pub fn verify_frame(payload: &[u8], crc: u32) -> Result<(), (ErrorCode, String)> {
    let actual = crc32(payload);
    if actual != crc {
        return Err((
            ErrorCode::Malformed,
            format!("payload CRC {actual:#010x} does not match header {crc:#010x}"),
        ));
    }
    Ok(())
}

/// Copies up to `N` leading bytes of `src` into a fixed array without a
/// panic path (`zip` stops at the shorter side). Every caller checks the
/// length first; a short `src` would zero-fill the tail rather than
/// panic — protocol parsing must never take down a worker (panic-freedom
/// invariant, DESIGN.md §15).
fn arr<const N: usize>(src: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    for (dst, byte) in out.iter_mut().zip(src) {
        *dst = *byte;
    }
    out
}

/// A bounds-checked little-endian payload reader.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(ServeError::Malformed(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        };
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(arr(self.bytes(2)?)))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(arr(self.bytes(4)?)))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(arr(self.bytes(8)?)))
    }

    /// `[presence][count][ids...]` — the optional node-list shape.
    fn opt_ids(&mut self) -> Result<Option<Vec<NodeId>>, ServeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let count = self.u32()? as usize;
                // Each id is 4 bytes; the bound keeps a lying count from
                // allocating past the frame it arrived in.
                if count * 4 > self.buf.len() - self.pos {
                    return Err(ServeError::Malformed(format!(
                        "node list claims {count} ids but only {} payload bytes remain",
                        self.buf.len() - self.pos
                    )));
                }
                let mut ids = Vec::with_capacity(count);
                for _ in 0..count {
                    ids.push(NodeId::new(self.u32()?));
                }
                Ok(Some(ids))
            }
            other => Err(bad_presence(other)),
        }
    }

    /// Asserts the payload was consumed exactly.
    fn finish(self) -> Result<(), ServeError> {
        if self.pos != self.buf.len() {
            return Err(ServeError::Malformed(format!(
                "{} trailing bytes after a complete payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn payload_of(frame: &[u8]) -> &[u8] {
        &frame[8..]
    }

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Epoch,
            Request::Distance(n(3), n(9)),
            Request::Path(n(0), n(4)),
            Request::Stretch(n(7), n(7)),
            Request::Degree(n(2)),
            Request::Neighbors(n(11)),
            Request::SameComponent(n(1), n(5)),
            Request::SubmitEvent(NetworkEvent::delete(n(3))),
            Request::SubmitBatch(vec![
                NetworkEvent::insert([n(1), n(2)]),
                NetworkEvent::delete(n(0)),
            ]),
        ];
        for (i, req) in cases.into_iter().enumerate() {
            let framed = req.to_frame(i as u64 + 40);
            let (len, crc) = parse_frame_header(framed[..8].try_into().unwrap()).unwrap();
            assert_eq!(len, framed.len() - 8);
            verify_frame(payload_of(&framed), crc).unwrap();
            let (id, parsed) = Request::parse(payload_of(&framed)).unwrap();
            assert_eq!(id, i as u64 + 40);
            assert_eq!(parsed, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let bodies = [
            ResponseBody::Epoch,
            ResponseBody::Distance(Some(17)),
            ResponseBody::Distance(None),
            ResponseBody::Path(Some(vec![n(1), n(2), n(3)])),
            ResponseBody::Path(None),
            ResponseBody::Stretch(Some(1.5)),
            ResponseBody::Stretch(Some(f64::INFINITY)),
            ResponseBody::Stretch(None),
            ResponseBody::Degree(Some(4)),
            ResponseBody::Degree(None),
            ResponseBody::Neighbors(Some(Vec::new())),
            ResponseBody::Neighbors(None),
            ResponseBody::SameComponent(true),
            ResponseBody::SameComponent(false),
            ResponseBody::EventSubmitted,
            ResponseBody::BatchSubmitted(3),
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let framed = Response::ok_frame(i as u64, 99, 0xdead_beef, &body);
            let (len, crc) = parse_frame_header(framed[..8].try_into().unwrap()).unwrap();
            assert_eq!(len, framed.len() - 8);
            verify_frame(payload_of(&framed), crc).unwrap();
            let parsed = Response::parse(payload_of(&framed)).unwrap();
            assert_eq!(parsed.request_id, i as u64);
            assert_eq!(parsed.epoch, 99);
            assert_eq!(parsed.digest, 0xdead_beef);
            assert_eq!(parsed.body, Ok(body));
        }
    }

    #[test]
    fn error_frames_round_trip() {
        let framed = Response::error_frame(7, 12, 34, ErrorCode::UnknownOp, "op tag 250");
        let parsed = Response::parse(payload_of(&framed)).unwrap();
        assert_eq!(parsed.request_id, 7);
        assert_eq!(parsed.epoch, 12);
        assert_eq!(
            parsed.body,
            Err((ErrorCode::UnknownOp, "op tag 250".to_string()))
        );
    }

    #[test]
    fn malformed_requests_are_classified() {
        // Too short for the fixed header.
        let (_, code, _) = Request::parse(b"FGQ1").unwrap_err();
        assert_eq!(code, ErrorCode::BadPayload);
        // Wrong magic.
        let mut framed = Request::Epoch.to_frame(1);
        framed[8] = b'X';
        let (_, code, _) = Request::parse(payload_of(&framed)).unwrap_err();
        assert_eq!(code, ErrorCode::BadMagic);
        // Wrong version.
        let mut framed = Request::Epoch.to_frame(1);
        framed[12] = 9;
        let (_, code, _) = Request::parse(payload_of(&framed)).unwrap_err();
        assert_eq!(code, ErrorCode::BadMagic);
        // Unknown op echoes the request id.
        let mut framed = Request::Epoch.to_frame(77);
        framed[21] = 200;
        let (id, code, _) = Request::parse(payload_of(&framed)).unwrap_err();
        assert_eq!((id, code), (Some(77), ErrorCode::UnknownOp));
        // Truncated args.
        let framed = Request::Distance(n(1), n(2)).to_frame(5);
        let (id, code, _) =
            Request::parse(&payload_of(&framed)[..payload_of(&framed).len() - 3]).unwrap_err();
        assert_eq!((id, code), (Some(5), ErrorCode::BadPayload));
        // Trailing garbage after complete args.
        let mut bytes = payload_of(&Request::Degree(n(1)).to_frame(6)).to_vec();
        bytes.push(0);
        let (id, code, _) = Request::parse(&bytes).unwrap_err();
        assert_eq!((id, code), (Some(6), ErrorCode::BadPayload));
        // submit-event must carry exactly one event.
        let two_events = vec![NetworkEvent::delete(n(1)), NetworkEvent::delete(n(2))];
        let mut bytes = payload_of(&Request::SubmitBatch(two_events).to_frame(8)).to_vec();
        bytes[13] = 7; // rewrite the op tag to submit-event
        let (id, code, _) = Request::parse(&bytes).unwrap_err();
        assert_eq!((id, code), (Some(8), ErrorCode::BadPayload));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_reading() {
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        let (code, _) = parse_frame_header(header).unwrap_err();
        assert_eq!(code, ErrorCode::Oversized);
    }

    #[test]
    fn crc_flips_are_caught() {
        let framed = Request::Distance(n(1), n(2)).to_frame(3);
        let (_, crc) = parse_frame_header(framed[..8].try_into().unwrap()).unwrap();
        let mut payload = payload_of(&framed).to_vec();
        payload[0] ^= 0x40;
        let (code, _) = verify_frame(&payload, crc).unwrap_err();
        assert_eq!(code, ErrorCode::Malformed);
    }
}

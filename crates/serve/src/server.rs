//! The N-reader-thread TCP server.
//!
//! One acceptor thread feeds accepted connections into a **bounded**
//! queue consumed by `readers` worker threads — the queue bound is the
//! connection cap, and a full queue blocks the acceptor, which in turn
//! leaves further clients waiting in the OS accept backlog
//! (backpressure without a single dropped connection). Each worker
//! serves one connection at a time, frame by frame, pinning the latest
//! published snapshot per request; a client may pipeline requests
//! freely and responses come back in request order.
//!
//! Protocol violations (bad CRC, oversized length prefix, bad magic,
//! unknown op, truncated args) are answered with one typed error frame
//! and the connection is closed — never a panic, never a guess at
//! resynchronization. A connection that disappears mid-frame is simply
//! released. See DESIGN.md §13 for the full semantics.

use crate::protocol::{parse_frame_header, verify_frame, ErrorCode, Request, Response};
use crate::snapshot::SnapshotHub;
use crate::write::{WriteAck, WriteJob};
use fg_core::NetworkEvent;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Reader (worker) threads serving connections.
    pub readers: usize,
    /// Connection cap: the bound of the accepted-connection queue. When
    /// `readers` connections are being served and this many more are
    /// queued, the acceptor blocks and further clients wait in the OS
    /// accept backlog.
    pub max_connections: usize,
    /// How long a worker blocks in a socket read before re-checking the
    /// shutdown flag. Purely a shutdown-latency knob — partial frame
    /// bytes are preserved across timeouts.
    pub read_timeout: Duration,
    /// Crash-injection hook for the panic-isolation regression test: a
    /// worker panics when it is about to answer this request id. Leave
    /// `None` (the default) everywhere outside tests.
    #[doc(hidden)]
    pub panic_on_request_id: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            readers: 4,
            max_connections: 64,
            read_timeout: Duration::from_millis(50),
            panic_on_request_id: None,
        }
    }
}

/// Monotonic counters the server maintains; all reads are `Relaxed` —
/// they are observability, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    accepted: AtomicU64,
    served: AtomicU64,
    protocol_errors: AtomicU64,
    disconnects: AtomicU64,
    connection_panics: AtomicU64,
}

impl ServerStats {
    /// Connections accepted since bind.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Successful responses written.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Typed error frames written (framing violations also close the
    /// connection; op-level refusals like
    /// [`NotMaster`](ErrorCode::NotMaster) leave it open).
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Connections that vanished mid-frame.
    pub fn disconnects(&self) -> u64 {
        self.disconnects.load(Ordering::Relaxed)
    }

    /// Connections whose serving panicked. Each panic is caught at the
    /// worker loop: the connection drops, the worker keeps serving —
    /// one poisoned connection can never take the server down.
    pub fn connection_panics(&self) -> u64 {
        self.connection_panics.load(Ordering::Relaxed)
    }
}

/// A running server: an acceptor plus `readers` workers over a shared
/// [`SnapshotHub`]. Dropping the handle shuts the server down
/// gracefully (prefer calling [`shutdown`](Server::shutdown) to make
/// the join explicit).
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
}

impl Server {
    /// Binds `addr` and starts serving `hub`'s published snapshots,
    /// read-only: write ops are answered with a typed
    /// [`NotMaster`](ErrorCode::NotMaster) frame. This is what a
    /// replica runs.
    ///
    /// # Errors
    ///
    /// The bind failure, verbatim.
    pub fn bind(
        addr: impl ToSocketAddrs,
        hub: Arc<SnapshotHub>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Server::bind_inner(addr, hub, None, config)
    }

    /// Binds `addr` as the **write master**: read ops are served from
    /// `hub` like [`Server::bind`], and write ops (submit-event /
    /// submit-batch) are forwarded to the writer thread behind
    /// `writer` (see [`crate::write::spawn_writer`]), whose post-apply
    /// `(epoch, digest)` stamp acknowledges them.
    ///
    /// # Errors
    ///
    /// The bind failure, verbatim.
    pub fn bind_master(
        addr: impl ToSocketAddrs,
        hub: Arc<SnapshotHub>,
        writer: SyncSender<WriteJob>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Server::bind_inner(addr, hub, Some(writer), config)
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        hub: Arc<SnapshotHub>,
        writer: Option<SyncSender<WriteJob>>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let (tx, rx) = sync_channel::<TcpStream>(config.max_connections.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.readers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let hub = Arc::clone(&hub);
                let shutdown = Arc::clone(&shutdown);
                let stats = Arc::clone(&stats);
                let timeout = config.read_timeout;
                let writer = writer.clone();
                let panic_on = config.panic_on_request_id;
                std::thread::Builder::new()
                    .name(format!("fg-serve-reader-{i}"))
                    .spawn(move || {
                        worker_loop(&rx, &hub, &shutdown, &stats, timeout, &writer, panic_on)
                    })
                    .expect("spawn reader thread")
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("fg-serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &tx, &shutdown, &stats))
                .expect("spawn acceptor thread")
        };

        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            stats,
        })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Signals shutdown and joins every thread. In-flight requests
    /// finish; connections popped from the queue afterwards are answered
    /// with a [`ShuttingDown`](ErrorCode::ShuttingDown) frame and
    /// closed; idle connections close within one read timeout.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept(). The bound
        // address may be unspecified (`0.0.0.0` / `::`), which is not a
        // portable connect target — wake_acceptor rewrites it to
        // loopback and retries briefly, so shutdown() cannot hang in
        // join behind a wildcard bind.
        fg_store::repl::wake_acceptor(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            // fg-lint: allow(swallowed-results): a panicked acceptor already counted; shutdown must still drain the workers
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            // fg-lint: allow(swallowed-results): worker panics are counted per-connection; join here only waits for exit
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) {
    loop {
        let stream = listener.accept();
        if shutdown.load(Ordering::SeqCst) {
            // The wake connection (or whoever raced it) is dropped;
            // dropping `tx` below is what releases idle workers.
            break;
        }
        match stream {
            Ok((stream, _peer)) => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                // Blocking send onto the bounded queue IS the
                // backpressure: a full queue parks the acceptor here and
                // later clients wait in the OS accept backlog.
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => {
                // Transient accept failure (e.g. the peer reset before
                // we got to it); keep serving.
                continue;
            }
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    hub: &SnapshotHub,
    shutdown: &AtomicBool,
    stats: &ServerStats,
    timeout: Duration,
    writer: &Option<SyncSender<WriteJob>>,
    panic_on: Option<u64>,
) {
    loop {
        // Holding the mutex across recv() is the textbook sharing of an
        // mpsc receiver: exactly one idle worker waits in recv(), the
        // rest queue on the mutex. A sibling worker that panicked while
        // holding the lock poisons it, but the Receiver itself carries
        // no invariant a half-finished recv() could break — recover the
        // guard rather than cascading the panic through every worker.
        let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        let Ok(stream) = next else {
            return; // Acceptor gone: no more connections will ever come.
        };
        if shutdown.load(Ordering::SeqCst) {
            reject_shutting_down(stream, hub);
            continue;
        }
        // One connection's panic (a bug, or the test crash hook) must
        // not kill the worker: catch it, count it, drop the connection,
        // keep serving the queue.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            serve_connection(stream, hub, shutdown, stats, timeout, writer, panic_on);
        }));
        if outcome.is_err() {
            stats.connection_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Tells a late connection the server is going away, then closes it.
fn reject_shutting_down(mut stream: TcpStream, hub: &SnapshotHub) {
    let snapshot = hub.pin();
    let frame = Response::error_frame(
        0,
        snapshot.epoch,
        snapshot.digest,
        ErrorCode::ShuttingDown,
        "server is shutting down",
    );
    // fg-lint: allow(swallowed-results): best-effort farewell to a peer we are about to close anyway
    let _ = stream.write_all(&frame);
}

/// What an interruptible exact read ended with.
enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// The peer closed after `got` of the wanted bytes.
    Eof { got: usize },
    /// The shutdown flag went up while waiting for bytes.
    Shutdown,
    /// A hard I/O error.
    Failed,
}

/// `read_exact` that a read timeout can interrupt: on `WouldBlock` /
/// `TimedOut` the shutdown flag is polled and, when clear, the read
/// resumes **with the partial bytes preserved** — a slow client never
/// corrupts framing.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> ReadOutcome {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return ReadOutcome::Eof { got },
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return ReadOutcome::Shutdown;
                }
            }
            Err(_) => return ReadOutcome::Failed,
        }
    }
    ReadOutcome::Full
}

/// Serves one connection until it closes, errors, or shutdown.
fn serve_connection(
    mut stream: TcpStream,
    hub: &SnapshotHub,
    shutdown: &AtomicBool,
    stats: &ServerStats,
    timeout: Duration,
    writer: &Option<SyncSender<WriteJob>>,
    panic_on: Option<u64>,
) {
    // fg-lint: allow(swallowed-results): nodelay is a latency hint; serving correctly without it beats dropping the connection
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(timeout)).is_err() {
        // Without a read timeout, read_full cannot poll the shutdown
        // flag and this connection could pin its worker forever — drop
        // it rather than serve unboundedly.
        stats.disconnects.fetch_add(1, Ordering::Relaxed);
        return;
    }
    loop {
        // Frame header: [len][crc].
        let mut header = [0u8; 8];
        match read_full(&mut stream, &mut header, shutdown) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof { got: 0 } => return, // Clean close between frames.
            ReadOutcome::Eof { .. } => {
                stats.disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            ReadOutcome::Shutdown | ReadOutcome::Failed => return,
        }
        let (len, crc) = match parse_frame_header(header) {
            Ok(parsed) => parsed,
            Err((code, detail)) => {
                send_protocol_error(&mut stream, hub, stats, 0, code, &detail);
                return;
            }
        };
        let mut payload = vec![0u8; len];
        match read_full(&mut stream, &mut payload, shutdown) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof { .. } => {
                stats.disconnects.fetch_add(1, Ordering::Relaxed);
                return;
            }
            ReadOutcome::Shutdown | ReadOutcome::Failed => return,
        }
        if let Err((code, detail)) = verify_frame(&payload, crc) {
            send_protocol_error(&mut stream, hub, stats, 0, code, &detail);
            return;
        }
        match Request::parse(&payload) {
            Ok((request_id, request)) => {
                if panic_on == Some(request_id) {
                    // fg-lint: allow(panic-freedom): the torture suite's deliberate crash hook — this panic IS the fault being injected
                    panic!("crash hook: panicking on request id {request_id}");
                }
                // Write ops are destructured here so serve_write takes
                // the events themselves — no "is it really a write?"
                // branch can be reached downstream.
                let request = match request {
                    Request::SubmitEvent(event) => {
                        if !serve_write(
                            &mut stream,
                            hub,
                            stats,
                            writer,
                            request_id,
                            vec![event],
                            true,
                        ) {
                            return;
                        }
                        continue;
                    }
                    Request::SubmitBatch(events) => {
                        if !serve_write(&mut stream, hub, stats, writer, request_id, events, false)
                        {
                            return;
                        }
                        continue;
                    }
                    read_op => read_op,
                };
                // Pin once per request: the whole answer — including the
                // stamp — comes from one published snapshot, whatever
                // the writer does meanwhile.
                let snapshot = hub.pin();
                let Some(body) = snapshot.answer(&request) else {
                    // Unreachable by construction (writes peeled off
                    // above), but a refused answer must degrade to an
                    // error frame, never a panic.
                    send_protocol_error(
                        &mut stream,
                        hub,
                        stats,
                        request_id,
                        ErrorCode::Malformed,
                        "request reached the read path without a read answer",
                    );
                    return;
                };
                let frame = Response::ok_frame(request_id, snapshot.epoch, snapshot.digest, &body);
                if stream.write_all(&frame).is_err() {
                    stats.disconnects.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                stats.served.fetch_add(1, Ordering::Relaxed);
            }
            Err((request_id, code, detail)) => {
                send_protocol_error(
                    &mut stream,
                    hub,
                    stats,
                    request_id.unwrap_or(0),
                    code,
                    &detail,
                );
                return;
            }
        }
    }
}

/// Handles one write op (submit-event / submit-batch). Returns `false`
/// only when the connection is gone — op-level refusals ([`NotMaster`]
/// (ErrorCode::NotMaster), [`WriteFailed`](ErrorCode::WriteFailed)) are
/// answered in-band and leave the connection open.
fn serve_write(
    stream: &mut TcpStream,
    hub: &SnapshotHub,
    stats: &ServerStats,
    writer: &Option<SyncSender<WriteJob>>,
    request_id: u64,
    events: Vec<NetworkEvent>,
    single: bool,
) -> bool {
    let Some(writer) = writer else {
        return send_op_error(
            stream,
            hub,
            stats,
            request_id,
            ErrorCode::NotMaster,
            "this node is a read replica; submit writes to the master",
        );
    };
    let (reply_tx, reply_rx) = channel();
    let job = WriteJob {
        events,
        reply: reply_tx,
    };
    let outcome = match writer.send(job) {
        Ok(()) => reply_rx
            .recv()
            .unwrap_or_else(|_| Err("writer thread exited before acknowledging".into())),
        Err(_) => Err("writer thread is gone".into()),
    };
    match outcome {
        Ok(WriteAck {
            applied,
            epoch,
            digest,
        }) => {
            let body = if single {
                crate::protocol::ResponseBody::EventSubmitted
            } else {
                crate::protocol::ResponseBody::BatchSubmitted(applied as u32)
            };
            // The stamp on a write ack is the writer's post-publish
            // (epoch, digest) — the state the write landed in, not
            // whatever snapshot this worker could pin.
            let frame = Response::ok_frame(request_id, epoch, digest, &body);
            if stream.write_all(&frame).is_err() {
                stats.disconnects.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            stats.served.fetch_add(1, Ordering::Relaxed);
            true
        }
        Err(detail) => send_op_error(
            stream,
            hub,
            stats,
            request_id,
            ErrorCode::WriteFailed,
            &detail,
        ),
    }
}

/// Writes one typed **op-level** error frame and keeps the connection
/// open (unlike [`send_protocol_error`], which precedes a close).
/// Returns `false` if the peer vanished mid-write.
fn send_op_error(
    stream: &mut TcpStream,
    hub: &SnapshotHub,
    stats: &ServerStats,
    request_id: u64,
    code: ErrorCode,
    detail: &str,
) -> bool {
    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    let snapshot = hub.pin();
    let frame = Response::error_frame(request_id, snapshot.epoch, snapshot.digest, code, detail);
    if stream.write_all(&frame).is_err() {
        stats.disconnects.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    true
}

/// Writes one typed error frame (stamped like any response) and counts
/// it; the caller closes the connection by returning.
fn send_protocol_error(
    stream: &mut TcpStream,
    hub: &SnapshotHub,
    stats: &ServerStats,
    request_id: u64,
    code: ErrorCode,
    detail: &str,
) {
    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    let snapshot = hub.pin();
    let frame = Response::error_frame(request_id, snapshot.epoch, snapshot.digest, code, detail);
    // fg-lint: allow(swallowed-results): the connection closes right after this frame; a failed farewell changes nothing
    let _ = stream.write_all(&frame);
}

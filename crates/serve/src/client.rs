//! The blocking FGQ1 client.
//!
//! [`Client`] speaks the protocol over one `TcpStream`. Every typed
//! helper ([`distance`](Client::distance), [`path`](Client::path), …)
//! is one synchronous round trip returning a [`Stamped`] value — the
//! answer plus the `(epoch, digest)` certificate of the snapshot that
//! produced it. For pipelining, [`send`](Client::send) and
//! [`recv`](Client::recv) split the round trip: queue any number of
//! requests, then drain responses in order (the server answers each
//! connection's requests strictly in arrival order).

use crate::error::ServeError;
use crate::protocol::{parse_frame_header, verify_frame, Request, Response, ResponseBody};
use fg_core::NetworkEvent;
use fg_graph::NodeId;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A value plus the certificate of the snapshot that answered it.
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped<T> {
    /// The answering snapshot's structural epoch.
    pub epoch: u64,
    /// The answering snapshot's chained outcome digest.
    pub digest: u64,
    /// The answer itself.
    pub value: T,
}

/// One FGQ1 connection to an `fg-serve` server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// The connect failure as [`ServeError::Io`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 1 })
    }

    /// Writes one request frame without waiting for the response;
    /// returns the request id the response will echo. Pair with
    /// [`recv`](Client::recv) — responses on a connection arrive in
    /// request order.
    ///
    /// # Errors
    ///
    /// The socket write failure.
    pub fn send(&mut self, request: &Request) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&request.to_frame(id))?;
        Ok(id)
    }

    /// Reads the next response frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] if the connection closed between or
    /// inside frames, [`ServeError::Malformed`] if the server's bytes
    /// violate the protocol, [`ServeError::Io`] on transport failure.
    /// A typed error frame is **not** an `Err` here — it comes back as
    /// the [`Response::body`]'s error arm, because the caller may be
    /// probing for exactly that.
    pub fn recv(&mut self) -> Result<Response, ServeError> {
        let mut header = [0u8; 8];
        read_all(&mut self.stream, &mut header)?;
        let (len, crc) =
            parse_frame_header(header).map_err(|(_, detail)| ServeError::Malformed(detail))?;
        let mut payload = vec![0u8; len];
        read_all(&mut self.stream, &mut payload)?;
        verify_frame(&payload, crc).map_err(|(_, detail)| ServeError::Malformed(detail))?;
        Response::parse(&payload)
    }

    /// One full round trip, surfacing typed error frames as
    /// [`ServeError::Server`].
    ///
    /// # Errors
    ///
    /// Everything [`recv`](Client::recv) can fail with, plus
    /// [`ServeError::Server`] for a typed error frame and
    /// [`ServeError::Malformed`] if the response echoes the wrong
    /// request id or answers the wrong op.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Stamped<ResponseBody>, ServeError> {
        let id = self.send(request)?;
        let response = self.recv()?;
        if response.request_id != id {
            return Err(ServeError::Malformed(format!(
                "response echoes request id {}, expected {id}",
                response.request_id
            )));
        }
        match response.body {
            Ok(body) => {
                if body.op() != request.op() {
                    return Err(ServeError::Malformed(format!(
                        "response answers op {}, expected {}",
                        body.op(),
                        request.op()
                    )));
                }
                Ok(Stamped {
                    epoch: response.epoch,
                    digest: response.digest,
                    value: body,
                })
            }
            Err((code, message)) => Err(ServeError::Server { code, message }),
        }
    }

    /// The server's current `(epoch, digest)` certificate — the stamp
    /// *is* the answer.
    ///
    /// # Errors
    ///
    /// As [`roundtrip`](Client::roundtrip).
    pub fn epoch(&mut self) -> Result<Stamped<()>, ServeError> {
        let stamped = self.roundtrip(&Request::Epoch)?;
        Ok(Stamped {
            epoch: stamped.epoch,
            digest: stamped.digest,
            value: (),
        })
    }

    /// Served [`FrozenView::distance`](fg_core::FrozenView::distance).
    ///
    /// # Errors
    ///
    /// As [`roundtrip`](Client::roundtrip).
    pub fn distance(&mut self, u: NodeId, v: NodeId) -> Result<Stamped<Option<u32>>, ServeError> {
        match self.roundtrip(&Request::Distance(u, v))? {
            Stamped {
                epoch,
                digest,
                value: ResponseBody::Distance(d),
            } => Ok(Stamped {
                epoch,
                digest,
                value: d,
            }),
            _ => Err(wrong_body("distance")),
        }
    }

    /// Served [`FrozenView::path`](fg_core::FrozenView::path).
    ///
    /// # Errors
    ///
    /// As [`roundtrip`](Client::roundtrip).
    pub fn path(
        &mut self,
        u: NodeId,
        v: NodeId,
    ) -> Result<Stamped<Option<Vec<NodeId>>>, ServeError> {
        match self.roundtrip(&Request::Path(u, v))? {
            Stamped {
                epoch,
                digest,
                value: ResponseBody::Path(p),
            } => Ok(Stamped {
                epoch,
                digest,
                value: p,
            }),
            _ => Err(wrong_body("path")),
        }
    }

    /// Served [`FrozenView::stretch`](fg_core::FrozenView::stretch).
    ///
    /// # Errors
    ///
    /// As [`roundtrip`](Client::roundtrip).
    pub fn stretch(&mut self, u: NodeId, v: NodeId) -> Result<Stamped<Option<f64>>, ServeError> {
        match self.roundtrip(&Request::Stretch(u, v))? {
            Stamped {
                epoch,
                digest,
                value: ResponseBody::Stretch(s),
            } => Ok(Stamped {
                epoch,
                digest,
                value: s,
            }),
            _ => Err(wrong_body("stretch")),
        }
    }

    /// Served [`FrozenView::degree`](fg_core::FrozenView::degree).
    ///
    /// # Errors
    ///
    /// As [`roundtrip`](Client::roundtrip).
    pub fn degree(&mut self, u: NodeId) -> Result<Stamped<Option<u64>>, ServeError> {
        match self.roundtrip(&Request::Degree(u))? {
            Stamped {
                epoch,
                digest,
                value: ResponseBody::Degree(d),
            } => Ok(Stamped {
                epoch,
                digest,
                value: d,
            }),
            _ => Err(wrong_body("degree")),
        }
    }

    /// Served [`FrozenView::neighbors`](fg_core::FrozenView::neighbors)
    /// (`None` when the node is dead).
    ///
    /// # Errors
    ///
    /// As [`roundtrip`](Client::roundtrip).
    pub fn neighbors(&mut self, u: NodeId) -> Result<Stamped<Option<Vec<NodeId>>>, ServeError> {
        match self.roundtrip(&Request::Neighbors(u))? {
            Stamped {
                epoch,
                digest,
                value: ResponseBody::Neighbors(ids),
            } => Ok(Stamped {
                epoch,
                digest,
                value: ids,
            }),
            _ => Err(wrong_body("neighbors")),
        }
    }

    /// Served [`FrozenView::same_component`](fg_core::FrozenView::same_component).
    ///
    /// # Errors
    ///
    /// As [`roundtrip`](Client::roundtrip).
    pub fn same_component(&mut self, u: NodeId, v: NodeId) -> Result<Stamped<bool>, ServeError> {
        match self.roundtrip(&Request::SameComponent(u, v))? {
            Stamped {
                epoch,
                digest,
                value: ResponseBody::SameComponent(c),
            } => Ok(Stamped {
                epoch,
                digest,
                value: c,
            }),
            _ => Err(wrong_body("same-component")),
        }
    }

    /// Submits one event to the master's writer. The returned stamp is
    /// the **post-apply** `(epoch, digest)` — the fsynced state the
    /// write landed in. A replica answers with
    /// [`NotMaster`](crate::ErrorCode::NotMaster) (as
    /// [`ServeError::Server`]) and keeps the connection usable.
    ///
    /// # Errors
    ///
    /// As [`roundtrip`](Client::roundtrip).
    pub fn submit_event(&mut self, event: NetworkEvent) -> Result<Stamped<()>, ServeError> {
        match self.roundtrip(&Request::SubmitEvent(event))? {
            Stamped {
                epoch,
                digest,
                value: ResponseBody::EventSubmitted,
            } => Ok(Stamped {
                epoch,
                digest,
                value: (),
            }),
            _ => Err(wrong_body("submit-event")),
        }
    }

    /// Submits a batch of events (one commit, one fsync) to the
    /// master's writer; the value is the number of events applied.
    /// Stamp and replica semantics as [`submit_event`](Client::submit_event).
    ///
    /// # Errors
    ///
    /// As [`roundtrip`](Client::roundtrip).
    pub fn submit_batch(&mut self, events: Vec<NetworkEvent>) -> Result<Stamped<u32>, ServeError> {
        match self.roundtrip(&Request::SubmitBatch(events))? {
            Stamped {
                epoch,
                digest,
                value: ResponseBody::BatchSubmitted(applied),
            } => Ok(Stamped {
                epoch,
                digest,
                value: applied,
            }),
            _ => Err(wrong_body("submit-batch")),
        }
    }

    /// The underlying stream, for tests that need socket-level control
    /// (half-close, raw writes).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

fn wrong_body(op: &str) -> ServeError {
    // roundtrip() already rejects op-tag mismatches; this arm is
    // unreachable unless the protocol enum grows out of sync.
    ServeError::Malformed(format!("response body does not answer {op}"))
}

/// `read_exact` that reports a closed peer as [`ServeError::Disconnected`].
fn read_all(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ServeError> {
    match stream.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(ServeError::Disconnected),
        Err(e) => Err(ServeError::Io(e)),
    }
}

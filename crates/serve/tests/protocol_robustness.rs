//! Protocol robustness: the server must survive any byte stream a
//! client can throw at it — truncations at every byte boundary,
//! bit-flipped CRCs, oversized length prefixes, garbage payloads, and
//! abrupt mid-request disconnects — by answering a typed error frame
//! (or closing cleanly), never by panicking or wedging. After every
//! attack the same server must still answer a well-formed request.

use fg_core::ForgivingGraph;
use fg_graph::generators;
use fg_graph::NodeId;
use fg_serve::protocol::{frame, parse_frame_header, verify_frame, MAX_FRAME_PAYLOAD};
use fg_serve::{
    Client, ErrorCode, Publisher, Request, Response, Server, ServerConfig, SnapshotHub,
};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A small served snapshot plus the certificate every response must carry.
fn fixture() -> (Server, SocketAddr, u64, u64) {
    let engine = ForgivingGraph::from_graph(&generators::star(9)).expect("fresh G0");
    let publisher = Publisher::new(engine);
    let hub: Arc<SnapshotHub> = publisher.hub();
    let (epoch, digest) = (hub.epoch(), publisher.digest());
    let server = Server::bind(("127.0.0.1", 0), hub, ServerConfig::default()).expect("bind");
    let addr = server.addr();
    (server, addr, epoch, digest)
}

/// Proof of life: a fresh well-formed round trip against `addr` still
/// answers correctly — the definition of "the attack did not wedge the
/// server".
fn assert_still_serving(addr: SocketAddr, epoch: u64, digest: u64) {
    let mut client = Client::connect(addr).expect("server must keep accepting");
    let stamped = client
        .distance(NodeId::new(1), NodeId::new(2))
        .expect("server must keep answering");
    assert_eq!(stamped.epoch, epoch);
    assert_eq!(stamped.digest, digest);
    assert_eq!(stamped.value, Some(2), "star leaves are 2 apart");
}

/// Writes `bytes` raw, half-closes the write side, and drains whatever
/// the server sends back, parsed frame by frame. Returns the error
/// codes of any error frames received before the server closed the
/// connection. Panics if the server neither answers nor closes within
/// the read timeout — a wedged reader thread.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<ErrorCode> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    // The peer may already have responded and closed; a send error then
    // is the broken-pipe echo of that, not a failure of the test.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut codes = Vec::new();
    loop {
        let mut header = [0u8; 8];
        match stream.read_exact(&mut header) {
            Ok(()) => {}
            Err(_) => return codes, // clean close (or half a header)
        }
        let (len, crc) = parse_frame_header(header).expect("server frames its own responses");
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).expect("whole response");
        verify_frame(&payload, crc).expect("server responses carry valid CRCs");
        let response = Response::parse(&payload).expect("server responses parse");
        match response.body {
            Ok(_) => {}
            Err((code, _)) => codes.push(code),
        }
    }
}

/// One well-formed frame for every op, used as the truncation corpus.
fn corpus() -> Vec<Vec<u8>> {
    let (u, v) = (NodeId::new(1), NodeId::new(2));
    [
        Request::Epoch,
        Request::Distance(u, v),
        Request::Path(u, v),
        Request::Stretch(u, v),
        Request::Degree(u),
        Request::Neighbors(u),
        Request::SameComponent(u, v),
    ]
    .iter()
    .enumerate()
    .map(|(i, r)| r.to_frame(i as u64 + 1))
    .collect()
}

#[test]
fn every_truncation_of_every_op_is_survived() {
    let (server, addr, epoch, digest) = fixture();
    for full in corpus() {
        // Every strict prefix, byte-exhaustively: mid-header, mid-CRC,
        // mid-payload. The server sees EOF mid-frame and must close
        // without panicking; it never answers a half request.
        for cut in 0..full.len() {
            let codes = send_raw(addr, &full[..cut]);
            assert!(
                codes.is_empty(),
                "truncation at {cut}/{} drew error frames {codes:?} for silence",
                full.len()
            );
        }
        // The untruncated frame still answers.
        let codes = send_raw(addr, &full);
        assert!(codes.is_empty(), "full frame must answer ok, got {codes:?}");
    }
    assert_still_serving(addr, epoch, digest);
    server.shutdown();
}

#[test]
fn every_flipped_bit_in_the_crc_is_rejected() {
    let (server, addr, epoch, digest) = fixture();
    let full = Request::Distance(NodeId::new(1), NodeId::new(2)).to_frame(9);
    for bit in 0..32 {
        let mut bad = full.clone();
        bad[4 + bit / 8] ^= 1 << (bit % 8); // bytes 4..8 are the CRC
        let codes = send_raw(addr, &bad);
        assert_eq!(
            codes,
            vec![ErrorCode::Malformed],
            "CRC bit {bit} must draw a malformed error frame"
        );
    }
    assert_still_serving(addr, epoch, digest);
    server.shutdown();
}

#[test]
fn every_flipped_payload_byte_is_rejected_or_reinterpreted_never_fatal() {
    let (server, addr, epoch, digest) = fixture();
    let full = Request::SameComponent(NodeId::new(1), NodeId::new(2)).to_frame(5);
    for i in 8..full.len() {
        let mut bad = full.clone();
        bad[i] ^= 0x40;
        // A payload flip breaks the CRC: always exactly one error frame.
        let codes = send_raw(addr, &bad);
        assert_eq!(
            codes,
            vec![ErrorCode::Malformed],
            "payload byte {i} flip must fail the CRC"
        );
    }
    assert_still_serving(addr, epoch, digest);
    server.shutdown();
}

#[test]
fn oversized_length_prefixes_are_rejected_without_allocation() {
    let (server, addr, epoch, digest) = fixture();
    for len in [
        (MAX_FRAME_PAYLOAD + 1) as u32,
        u32::MAX,
        u32::MAX - 7,
        (1u32 << 30) + 1,
    ] {
        let mut header = Vec::new();
        header.extend_from_slice(&len.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        let codes = send_raw(addr, &header);
        assert_eq!(
            codes,
            vec![ErrorCode::Oversized],
            "length {len} must draw an oversized error frame"
        );
    }
    assert_still_serving(addr, epoch, digest);
    server.shutdown();
}

#[test]
fn wrong_magic_version_op_and_trailing_bytes_answer_typed_errors() {
    let (server, addr, epoch, digest) = fixture();
    let base = Request::Epoch.to_frame(3);

    let mut bad_magic = base.clone();
    bad_magic[8] = b'X'; // first payload byte is the magic
    rewrite_crc(&mut bad_magic);
    assert_eq!(send_raw(addr, &bad_magic), vec![ErrorCode::BadMagic]);

    let mut bad_version = base.clone();
    bad_version[12] = 99; // payload byte 4 is the version
    rewrite_crc(&mut bad_version);
    assert_eq!(send_raw(addr, &bad_version), vec![ErrorCode::BadMagic]);

    let mut bad_op = base.clone();
    bad_op[21] = 200; // payload byte 13 is the op tag
    rewrite_crc(&mut bad_op);
    assert_eq!(send_raw(addr, &bad_op), vec![ErrorCode::UnknownOp]);

    // A distance op with trailing junk after its arguments.
    let mut trailing = Request::Distance(NodeId::new(0), NodeId::new(1)).to_frame(4)[8..].to_vec();
    trailing.extend_from_slice(&[0xde, 0xad]);
    assert_eq!(
        send_raw(addr, &frame(&trailing)),
        vec![ErrorCode::BadPayload]
    );

    // A payload shorter than any legal request.
    assert_eq!(send_raw(addr, &frame(b"FGQ1")), vec![ErrorCode::BadPayload]);

    assert_still_serving(addr, epoch, digest);
    server.shutdown();
}

/// Recomputes the CRC header field after the payload was tampered with,
/// so the frame fails *semantic* checks rather than the checksum.
fn rewrite_crc(framed: &mut [u8]) {
    let crc = fg_store::crc32(&framed[8..]);
    framed[4..8].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn abrupt_disconnects_mid_pipeline_leave_the_server_healthy() {
    let (server, addr, epoch, digest) = fixture();
    for round in 0..20u64 {
        let mut client = Client::connect(addr).expect("connect");
        // Pipeline a few requests, read back only some of them, then
        // drop the socket with responses still in flight.
        for i in 0..4 {
            client
                .send(&Request::Distance(NodeId::new(0), NodeId::new(i)))
                .expect("send");
        }
        for _ in 0..(round % 4) {
            let response = client.recv().expect("early responses arrive");
            assert!(response.body.is_ok());
        }
        drop(client); // RST or FIN mid-stream, server's problem now
    }
    assert_still_serving(addr, epoch, digest);
    let stats = server.stats();
    assert_eq!(
        stats.protocol_errors(),
        0,
        "disconnects are not protocol errors"
    );
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary garbage never panics the server and never wedges the
    /// connection: the server either closes or answers error frames,
    /// within the timeout, and keeps serving afterwards.
    #[test]
    fn fuzz_garbage_streams_never_wedge(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let (server, addr, epoch, digest) = fixture();
        let _ = send_raw(addr, &bytes);
        assert_still_serving(addr, epoch, digest);
        server.shutdown();
    }

    /// Any mutation of a valid frame draws at most one error frame and
    /// leaves the server serving.
    #[test]
    fn fuzz_mutated_frames_never_wedge(
        idx in 0usize..7,
        pos in 0usize..30,
        mask in 1u8..255,
    ) {
        let (server, addr, epoch, digest) = fixture();
        let mut bad = corpus()[idx].clone();
        let pos = pos % bad.len();
        bad[pos] ^= mask;
        let codes = send_raw(addr, &bad);
        prop_assert!(codes.len() <= 1, "one bad frame, at most one error frame: {codes:?}");
        assert_still_serving(addr, epoch, digest);
        server.shutdown();
    }
}

//! Concurrency torture: many pipelining clients hammer the server
//! while a writer churns the healer and republishes snapshots as fast
//! as it can. The invariants under fire:
//!
//! * every response's epoch is an epoch the writer actually published
//!   (never a torn, skipped, or invented one), and its digest is the
//!   certificate recorded for that epoch;
//! * every served answer is bit-identical to what the retained snapshot
//!   for its epoch computes fresh — a reader is never served a mix of
//!   two epochs;
//! * superseded snapshots are freed once the last pin drops (epoch
//!   retirement), while the currently published one stays alive.

use fg_core::{ForgivingGraph, NetworkEvent, SelfHealer};
use fg_graph::NodeId;
use fg_serve::{
    Client, Publisher, Request, ResponseBody, ServeSnapshot, Server, ServerConfig, SnapshotHub,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// A deterministic, always-legal churn trace: alternate inserting a
/// leaf under a live node with deleting a recently inserted one.
fn churn_events(rounds: usize) -> Vec<NetworkEvent> {
    let mut events = Vec::with_capacity(rounds * 2);
    for i in 0..rounds {
        events.push(NetworkEvent::insert([NodeId::new((i % 8) as u32)]));
        if i % 2 == 1 {
            // Delete the node the *previous* insert created: ids grow
            // densely, so nodes_ever-1 after an insert is that leaf —
            // but we do not know ids here, so delete a long-lived hub
            // spoke instead every few rounds.
            events.push(NetworkEvent::insert([NodeId::new(((i + 3) % 8) as u32)]));
        }
    }
    events
}

/// One client observation: the stamp plus the request and served body.
struct Observation {
    epoch: u64,
    digest: u64,
    request: Request,
    body: ResponseBody,
}

#[test]
fn readers_never_observe_unpublished_or_torn_epochs() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 60;

    let engine = ForgivingGraph::from_graph(&fg_graph::generators::star(9)).expect("fresh G0");
    let mut publisher = Publisher::new(engine);
    let hub: Arc<SnapshotHub> = publisher.hub();

    // Epoch → retained snapshot, recorded by the single writer. The
    // initial publish is in before any client connects.
    let retained: Arc<Mutex<HashMap<u64, Arc<ServeSnapshot>>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let first = hub.pin();
    let early_weak: Weak<ServeSnapshot> = Arc::downgrade(&first);
    retained.lock().unwrap().insert(first.epoch, first);

    let server = Server::bind(
        ("127.0.0.1", 0),
        hub.clone(),
        // One reader per client: every connection is served concurrently,
        // so the pre-churn barrier below cannot starve (a worker serves
        // one connection for its whole lifetime).
        ServerConfig {
            readers: CLIENTS,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // The schedule is made deterministic at its endpoints so the race
    // assertions below cannot flake under load: every client observes
    // the initial epoch *before* the writer starts (barrier), and
    // chases the final epoch after its rounds — the racing middle stays
    // fully unsynchronized.
    let events = churn_events(120);
    let final_epoch = hub.epoch() + events.len() as u64;
    let start_gate = Arc::new(std::sync::Barrier::new(CLIENTS + 1));

    let writer_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let retained = Arc::clone(&retained);
        let hub = Arc::clone(&hub);
        let done = Arc::clone(&writer_done);
        let gate = Arc::clone(&start_gate);
        std::thread::spawn(move || {
            gate.wait();
            for chunk in events.chunks(3) {
                let _ = publisher.apply_and_publish(chunk).expect("legal churn");
                // Single writer: the pin taken right after publish IS the
                // snapshot just published, so the map holds every epoch
                // any client can ever be served.
                let pin = hub.pin();
                retained.lock().unwrap().insert(pin.epoch, pin);
            }
            done.store(true, Ordering::Release);
            publisher
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let gate = Arc::clone(&start_gate);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut log: Vec<Observation> = Vec::with_capacity(ROUNDS * 5 + 2);
                // Pre-churn observation: the writer is still parked on
                // the barrier, so this records the initial epoch.
                let stamped = client.roundtrip(&Request::Epoch).expect("roundtrip");
                log.push(Observation {
                    epoch: stamped.epoch,
                    digest: stamped.digest,
                    request: Request::Epoch,
                    body: stamped.value,
                });
                gate.wait();
                for round in 0..ROUNDS {
                    let u = NodeId::new(((c * 7 + round) % 24) as u32);
                    let v = NodeId::new(((c * 13 + round * 5) % 24) as u32);
                    for request in [
                        Request::Distance(u, v),
                        Request::Path(u, v),
                        Request::Degree(u),
                        Request::Neighbors(u),
                        Request::SameComponent(u, v),
                    ] {
                        let stamped = client.roundtrip(&request).expect("roundtrip");
                        log.push(Observation {
                            epoch: stamped.epoch,
                            digest: stamped.digest,
                            request,
                            body: stamped.value,
                        });
                    }
                }
                // Chase the writer home: keep polling until the final
                // epoch is served, so every client provably crosses at
                // least one publish.
                loop {
                    let stamped = client.roundtrip(&Request::Epoch).expect("roundtrip");
                    let epoch = stamped.epoch;
                    log.push(Observation {
                        epoch,
                        digest: stamped.digest,
                        request: Request::Epoch,
                        body: stamped.value,
                    });
                    if epoch == final_epoch {
                        return log;
                    }
                }
            })
        })
        .collect();

    let logs: Vec<Vec<Observation>> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let publisher = writer.join().expect("writer thread");
    assert!(writer_done.load(Ordering::Acquire));

    // Re-verify every observation against the retained snapshot of its
    // claimed epoch: the stamp must name a published epoch, carry that
    // epoch's digest, and the body must equal a fresh computation on
    // that very snapshot — the epoch-consistency contract.
    let retained = Arc::try_unwrap(retained)
        .map_err(|_| "writer kept the map")
        .unwrap()
        .into_inner()
        .unwrap();
    let mut checked = 0usize;
    let mut epochs_seen: Vec<u64> = Vec::new();
    for obs in logs.iter().flatten() {
        let snapshot = retained
            .get(&obs.epoch)
            .unwrap_or_else(|| panic!("epoch {} was never published", obs.epoch));
        assert_eq!(
            obs.digest, snapshot.digest,
            "digest mismatch at {}",
            obs.epoch
        );
        assert_eq!(
            obs.body,
            snapshot
                .answer(&obs.request)
                .expect("torture traffic is read-only"),
            "answer diverged from retained epoch {} for {:?}",
            obs.epoch,
            obs.request
        );
        epochs_seen.push(obs.epoch);
        checked += 1;
    }
    assert!(checked >= CLIENTS * (ROUNDS * 5 + 2));
    // The run provably raced across publishes: every client saw the
    // pre-churn epoch and chased down the final one.
    epochs_seen.sort_unstable();
    epochs_seen.dedup();
    assert!(
        epochs_seen.len() >= 2,
        "torture run never raced a publish — got only epochs {epochs_seen:?}"
    );
    assert!(epochs_seen.contains(&final_epoch));
    // Final certificate agreement: the hub's last epoch is the
    // publisher's, and it is retained.
    assert_eq!(hub.epoch(), publisher.healer().epoch());
    assert!(retained.contains_key(&hub.epoch()));

    let stats = server.stats();
    assert_eq!(stats.protocol_errors(), 0, "well-formed traffic only");
    assert!(stats.served() as usize >= checked);
    server.shutdown();

    // Retirement: dropping the retained map releases the last pins on
    // superseded epochs; only the hub's current snapshot stays alive.
    let last_epoch = hub.epoch();
    drop(retained);
    assert!(
        early_weak.upgrade().is_none() || first_epoch_is_current(&hub, &early_weak),
        "superseded snapshot leaked after all pins dropped"
    );
    assert_eq!(hub.pin().epoch, last_epoch, "current snapshot must survive");
}

/// The one legitimate way the earliest snapshot can still be alive: no
/// publish ever superseded it (it is still the hub's current epoch).
fn first_epoch_is_current(hub: &SnapshotHub, weak: &Weak<ServeSnapshot>) -> bool {
    weak.upgrade().is_some_and(|s| s.epoch == hub.epoch())
}

#[test]
fn slow_reader_keeps_its_pinned_epoch_alive_until_drop() {
    // A reader holding a pin across many publishes keeps exactly its
    // epoch alive; releasing it frees the snapshot even though the hub
    // has long moved on.
    let engine = ForgivingGraph::from_graph(&fg_graph::generators::star(6)).expect("fresh G0");
    let mut publisher = Publisher::new(engine);
    let hub = publisher.hub();

    let pinned = hub.pin();
    let pinned_epoch = pinned.epoch;
    let weak = Arc::downgrade(&pinned);

    for chunk in churn_events(30).chunks(2) {
        let _ = publisher.apply_and_publish(chunk).expect("legal churn");
    }
    assert!(hub.epoch() > pinned_epoch, "publishes advanced the epoch");
    // Still alive while pinned, and still answering from its own epoch.
    assert_eq!(pinned.epoch, pinned_epoch);
    assert!(weak.upgrade().is_some(), "pin must keep the epoch alive");

    drop(pinned);
    assert!(
        weak.upgrade().is_none(),
        "dropping the last pin must free the superseded snapshot"
    );
}

//! Server-liveness regressions and the write path: a panicking
//! connection must never take a worker (or the server) down, shutdown
//! must complete behind a wildcard (`0.0.0.0`) bind, and FGQ1 write ops
//! must round-trip on a master / answer typed `NotMaster` refusals on a
//! read-only server — in both cases leaving the connection usable.

use fg_core::{ForgivingGraph, NetworkEvent, SelfHealer};
use fg_graph::{generators, NodeId};
use fg_serve::{
    spawn_writer, Client, ErrorCode, Publisher, Request, ServeError, Server, ServerConfig,
};
use fg_store::{DurableHealer, DurableOptions};
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::mpsc::channel;
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fg-serve-res-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts() -> DurableOptions {
    DurableOptions {
        checkpoint_every: None,
        sync_every: 1,
    }
}

#[test]
fn a_panicking_connection_is_isolated_and_counted() {
    let engine = ForgivingGraph::from_graph(&generators::star(9)).unwrap();
    let publisher = Publisher::new(engine);
    let hub = publisher.hub();
    // One reader: if the panic killed the worker, nothing could ever be
    // served again — the strongest form of the isolation claim.
    let config = ServerConfig {
        readers: 1,
        panic_on_request_id: Some(0xdead),
        ..ServerConfig::default()
    };
    let server = Server::bind(("127.0.0.1", 0), hub, config).unwrap();
    let addr = server.addr();

    // Trip the crash hook: the connection dies without a response.
    let mut victim = Client::connect(addr).unwrap();
    victim
        .stream()
        .write_all(&Request::Epoch.to_frame(0xdead))
        .unwrap();
    match victim.recv() {
        Err(ServeError::Disconnected) => {}
        other => panic!("panicked connection must just drop, got {other:?}"),
    }

    // The same lone worker keeps serving fresh connections.
    let mut client = Client::connect(addr).unwrap();
    let stamped = client.distance(NodeId::new(1), NodeId::new(2)).unwrap();
    assert_eq!(stamped.value, Some(2));
    assert_eq!(server.stats().connection_panics(), 1);
    server.shutdown();
}

#[test]
fn shutdown_completes_behind_a_wildcard_bind() {
    let engine = ForgivingGraph::from_graph(&generators::cycle(6)).unwrap();
    let publisher = Publisher::new(engine);
    // The regression: the shutdown wake used to connect to the bound
    // address verbatim, and connecting to 0.0.0.0 is non-portable — on
    // platforms where it fails outright the acceptor never wakes and
    // shutdown() hangs in join. The wake must rewrite to loopback.
    let server = Server::bind(("0.0.0.0", 0), publisher.hub(), ServerConfig::default()).unwrap();
    let (done_tx, done_rx) = channel();
    std::thread::spawn(move || {
        server.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("shutdown wedged behind a 0.0.0.0 bind");
}

#[test]
fn read_only_server_refuses_writes_typed_and_stays_usable() {
    let engine = ForgivingGraph::from_graph(&generators::star(9)).unwrap();
    let publisher = Publisher::new(engine);
    let server = Server::bind(("127.0.0.1", 0), publisher.hub(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    match client.submit_event(NetworkEvent::insert([NodeId::new(1)])) {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::NotMaster),
        other => panic!("expected a NotMaster frame, got {other:?}"),
    }
    match client.submit_batch(vec![NetworkEvent::delete(NodeId::new(3))]) {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::NotMaster),
        other => panic!("expected a NotMaster frame, got {other:?}"),
    }
    // The refusal is op-level: the same connection still answers reads.
    let stamped = client.distance(NodeId::new(1), NodeId::new(2)).unwrap();
    assert_eq!(stamped.value, Some(2));
    server.shutdown();
}

#[test]
fn master_applies_writes_and_acks_with_post_apply_stamps() {
    let dir = temp_dir("master-writes");
    let engine = ForgivingGraph::from_graph(&generators::star(9)).unwrap();
    let durable = DurableHealer::create(engine, &dir, opts()).unwrap();
    let base_epoch = durable.epoch();
    let publisher = Publisher::from_durable(durable);
    let hub = publisher.hub();
    let (writer, writer_handle) = spawn_writer(publisher, 16);
    let server = Server::bind_master(
        ("127.0.0.1", 0),
        hub,
        writer.clone(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // One event: the ack's stamp is the post-apply epoch.
    let ack = client
        .submit_event(NetworkEvent::insert([NodeId::new(1), NodeId::new(2)]))
        .unwrap();
    assert_eq!(ack.epoch, base_epoch + 1);

    // A batch: applied count and a further-advanced stamp.
    let batch = client
        .submit_batch(vec![
            NetworkEvent::insert([NodeId::new(0)]),
            NetworkEvent::delete(NodeId::new(3)),
        ])
        .unwrap();
    assert_eq!(batch.value, 2);
    assert_eq!(batch.epoch, base_epoch + 3);

    // Read-your-writes: the read stamp matches the last ack, and the
    // write is visible.
    let read = client.degree(NodeId::new(1)).unwrap();
    assert_eq!(read.epoch, batch.epoch);
    assert_eq!(read.digest, batch.digest);

    // An engine-refused write answers WriteFailed and keeps the
    // connection (deleting an already-dead node).
    match client.submit_event(NetworkEvent::delete(NodeId::new(3))) {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::WriteFailed),
        other => panic!("expected a WriteFailed frame, got {other:?}"),
    }
    let still = client.epoch().unwrap();
    assert_eq!(still.epoch, batch.epoch);

    // Orderly teardown hands the durable store back via the writer.
    server.shutdown();
    drop(writer);
    let publisher = writer_handle.join().unwrap();
    let durable = publisher.into_healer();
    assert_eq!(durable.epoch(), base_epoch + 3);
    drop(durable);

    // Everything acked is on disk: recovery replays it.
    let (recovered, report) = DurableHealer::<ForgivingGraph>::open(&dir, opts()).unwrap();
    assert_eq!(report.epoch, base_epoch + 3);
    drop(recovered);
    fs::remove_dir_all(&dir).unwrap();
}

//! The per-node actor: local protocol state and message handlers.
//!
//! A processor owns exactly the virtual nodes whose slots it simulates
//! (`key.slot.owner == self.id`) plus per-repair scratch: taint marks,
//! fragment-seed collectors, and `BT_v` anchor duties. Everything a
//! handler needs beyond that arrives either in the message or in the
//! repair's [`Shared`] context (the victim's will — data the victim
//! replicated to its image neighbours while alive).

use fg_core::plan::{plan_compute_haft, WireTree};
use fg_core::{PlacementPolicy, Slot, VKey};
use fg_graph::{NodeId, SortedMap, SortedSet};

use crate::executor::Effect;
use crate::message::{Message, OrderKey, Payload, Target};

/// Structural accounting for one repair, filled in as the protocol runs —
/// the distributed counterpart of the quantities the sequential engine
/// reads off its own stats. The simulator aggregates these globally (it
/// can see every actor); a deployment would fold them into the repair's
/// existing message flow.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub(crate) struct RepairTally {
    pub fragments: usize,
    pub trees_collected: usize,
    pub buckets: usize,
    pub edges_added: u64,
    pub edges_dropped: u64,
    pub helpers_created: u64,
    pub helpers_freed: u64,
    pub leaves_created: u64,
    pub leaves_removed: u64,
}

impl RepairTally {
    /// Folds a shard's partial tally into this one. Every field is a sum,
    /// so the fold is order-independent — shard tallies merge to the same
    /// totals at any thread count.
    pub(crate) fn absorb(&mut self, part: &RepairTally) {
        self.fragments += part.fragments;
        self.trees_collected += part.trees_collected;
        self.buckets += part.buckets;
        self.edges_added += part.edges_added;
        self.edges_dropped += part.edges_dropped;
        self.helpers_created += part.helpers_created;
        self.helpers_freed += part.helpers_freed;
        self.leaves_created += part.leaves_created;
        self.leaves_removed += part.leaves_removed;
    }
}

/// One virtual node's local record — the distributed counterpart of the
/// reference engine's forest entry (paper Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct VState {
    pub parent: Option<VKey>,
    pub left: Option<VKey>,
    pub right: Option<VKey>,
    pub leaves: u32,
    pub height: u32,
    pub rep: Slot,
}

impl VState {
    fn leaf(slot: Slot) -> Self {
        VState {
            parent: None,
            left: None,
            right: None,
            leaves: 1,
            height: 0,
            rep: slot,
        }
    }

    fn is_complete(&self) -> bool {
        self.leaves == 1u32 << self.height.min(31)
    }
}

/// The victim's links for one of its virtual nodes, as recorded in the will.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VLinks {
    pub parent: Option<VKey>,
    pub left: Option<VKey>,
    pub right: Option<VKey>,
}

/// Repair-wide read-only context: the victim's will plus derived data every
/// image neighbour computes identically (the paper's point — `BT_v` and the
/// merge blueprint are pure functions of exchanged data).
#[derive(Debug)]
pub(crate) struct Shared {
    pub victim: NodeId,
    /// The victim's live `G'` neighbours (original image edges released).
    pub alive_nbrs: SortedSet<NodeId>,
    /// The victim's virtual nodes and their links.
    pub removed: SortedMap<VKey, VLinks>,
    /// The sorted `BT_v` positions: surviving virtual neighbours of the
    /// victim's nodes plus the fresh leaves.
    pub anchors: Vec<VKey>,
    pub anchor_set: SortedSet<VKey>,
    pub policy: PlacementPolicy,
}

impl Shared {
    fn is_removed(&self, key: VKey) -> bool {
        self.removed.contains_key(&key)
    }
}

/// Mutable per-step environment for one handler invocation.
///
/// Handlers never touch global observables directly: they append
/// outbound messages and *effects* (image edge units, the `BT_v` root
/// deposit), each stamped with the canonical [`OrderKey`] of the message
/// or trigger being processed (`cur`). The coordinator merges the
/// per-shard effect logs at the round barrier and applies them in
/// canonical order — which is what makes the thread count unobservable
/// (DESIGN.md §9). Structural counters accumulate in a per-shard
/// [`RepairTally`] and merge by summation.
pub(crate) struct Ctx<'a> {
    pub outbox: &'a mut Vec<Message>,
    pub effects: &'a mut Vec<(OrderKey, Effect)>,
    pub tally: &'a mut RepairTally,
    /// Canonical key of the message/trigger this handler is running for.
    pub cur: OrderKey,
}

impl Ctx<'_> {
    /// Records one image edge unit to add at the barrier.
    fn edge_add(&mut self, u: NodeId, v: NodeId) {
        self.effects
            .push((self.cur, Effect::Edge { u, v, added: true }));
    }

    /// Records one image edge unit to drop at the barrier.
    fn edge_drop(&mut self, u: NodeId, v: NodeId) {
        self.effects
            .push((self.cur, Effect::Edge { u, v, added: false }));
    }

    /// Records the `BT_v` root's final reconstruction-tree deposit.
    fn set_btv_root(&mut self, root: Option<WireTree>) {
        self.effects.push((self.cur, Effect::BtvRoot(root)));
    }
}

/// A fragment collector at the fragment's seed.
#[derive(Debug, Default)]
pub(crate) struct SeedState {
    pub trees: Vec<WireTree>,
    pub anchors: SortedSet<VKey>,
}

/// One `BT_v` position's merge state, held by the anchor's owner.
#[derive(Debug)]
pub(crate) struct AnchorDuty {
    pub pos: usize,
    pub bucket: Vec<WireTree>,
    pub waiting_children: usize,
    pub pending_strips: usize,
    pub parts: Vec<WireTree>,
    pub merged: bool,
}

/// A per-node actor.
#[derive(Debug, Default)]
pub(crate) struct Processor {
    pub id: NodeId,
    pub vnodes: SortedMap<VKey, VState>,
    // --- per-repair scratch ---
    tainted: SortedSet<VKey>,
    pub seeds: SortedMap<VKey, SeedState>,
    pub duties: SortedMap<VKey, AnchorDuty>,
    /// Outgoing-message counter for canonical ordering; monotone within a
    /// repair, reset at quiescence. A processor's handling sequence is
    /// itself canonical, so these numbers are identical at any thread
    /// count.
    next_seq: u32,
}

impl Processor {
    pub(crate) fn new(id: NodeId) -> Self {
        Processor {
            id,
            ..Processor::default()
        }
    }

    /// Clears the per-repair scratch once the deletion has quiesced.
    pub(crate) fn end_repair(&mut self) {
        self.tainted.clear();
        self.seeds.clear();
        self.duties.clear();
        self.next_seq = 0;
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, dst: NodeId, payload: Payload) {
        let seq = self.next_seq;
        self.next_seq += 1;
        ctx.outbox.push(Message {
            src: self.id,
            dst,
            seq,
            payload,
        });
    }

    fn vnode(&self, key: VKey) -> &VState {
        self.vnodes
            .get(&key)
            .unwrap_or_else(|| panic!("{}: dangling virtual node {key}", self.id))
    }

    fn vnode_mut(&mut self, key: VKey) -> &mut VState {
        let id = self.id;
        self.vnodes
            .get_mut(&key)
            .unwrap_or_else(|| panic!("{id}: dangling virtual node {key}"))
    }

    // ------------------------------------------------------------------
    // Phase 0 — failure detection: the will arrives.
    // ------------------------------------------------------------------

    /// Processes the victim's will: releases the original edge, plants the
    /// fresh leaf, detaches from the victim's virtual nodes, marks local
    /// taint, registers walk seeds, and takes up `BT_v` anchor duties.
    pub(crate) fn receive_will(&mut self, shared: &Shared, ctx: &mut Ctx<'_>) {
        // Original edge (self, victim): release it and plant the fresh leaf
        // that will represent this lost edge in the reconstruction tree.
        if shared.alive_nbrs.contains(&self.id) {
            ctx.edge_drop(self.id, shared.victim);
            let slot = Slot::new(self.id, shared.victim);
            let prev = self.vnodes.insert(slot.real(), VState::leaf(slot));
            assert!(prev.is_none(), "fresh leaf {} already exists", slot.real());
            ctx.tally.leaves_created += 1;
            self.seeds
                .get_or_insert_with(slot.real(), SeedState::default);
        }

        // Detach from the victim's virtual nodes.
        let mine: Vec<VKey> = self.vnodes.keys().copied().collect();
        for key in mine {
            let links = self.vnode(key).clone();
            let parent_removed = links.parent.is_some_and(|p| shared.is_removed(p));
            let mut removed_children = 0usize;
            if links.left.is_some_and(|c| shared.is_removed(c)) {
                self.vnode_mut(key).left = None;
                removed_children += 1;
            }
            if links.right.is_some_and(|c| shared.is_removed(c)) {
                self.vnode_mut(key).right = None;
                removed_children += 1;
            }
            for _ in 0..removed_children {
                ctx.edge_drop(self.id, shared.victim);
            }
            if parent_removed {
                self.vnode_mut(key).parent = None;
                ctx.edge_drop(self.id, shared.victim);
            }
            if removed_children > 0 {
                // This node is an ancestor of a removed node: red.
                self.tainted.insert(key);
            }
            if parent_removed {
                // A child of a removed node heads its own fragment.
                self.seeds.get_or_insert_with(key, SeedState::default);
            } else if removed_children > 0 {
                match links.parent {
                    // A tainted root heads the affected tree's fragment.
                    None => {
                        self.seeds.get_or_insert_with(key, SeedState::default);
                    }
                    Some(pp) => self.send(ctx, pp.owner(), Payload::TaintUp { key: pp }),
                }
            }
        }

        // Anchor duties for the `BT_v` positions this processor owns.
        let len = shared.anchors.len();
        for (pos, &anchor) in shared.anchors.iter().enumerate() {
            if anchor.owner() == self.id {
                let waiting_children =
                    usize::from(2 * pos + 1 < len) + usize::from(2 * pos + 2 < len);
                self.duties.insert(
                    anchor,
                    AnchorDuty {
                        pos,
                        bucket: Vec::new(),
                        waiting_children,
                        pending_strips: 0,
                        parts: Vec::new(),
                        merged: false,
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2 — the shatter walk.
    // ------------------------------------------------------------------

    /// Kicks off the walk for every fragment this processor seeds.
    pub(crate) fn start_walks(&mut self, shared: &Shared, ctx: &mut Ctx<'_>) {
        let seeds: Vec<VKey> = self.seeds.keys().copied().collect();
        for seed in seeds {
            self.walk(seed, seed, shared, ctx);
        }
    }

    /// One shatter step at `key` inside fragment `frag` (the distributed
    /// counterpart of the engine's `gather`): red nodes (tainted ancestors
    /// and stale spine connectors) free themselves and pass the walk to
    /// their children; clean complete subtrees survive wholesale as the
    /// fragment's primary roots.
    fn walk(&mut self, key: VKey, frag: VKey, shared: &Shared, ctx: &mut Ctx<'_>) {
        if shared.anchor_set.contains(&key) {
            self.send(ctx, frag.owner(), Payload::AnchorFrag { anchor: key, frag });
        }
        let node = self.vnode(key).clone();
        if self.tainted.contains(&key) || !node.is_complete() {
            debug_assert!(key.is_helper(), "leaves are complete and never tainted");
            for child in node.left.into_iter().chain(node.right) {
                ctx.edge_drop(self.id, child.owner());
                self.send(ctx, child.owner(), Payload::Detach { key: child, frag });
            }
            self.vnodes.remove(&key);
            ctx.tally.helpers_freed += 1;
        } else {
            self.send(
                ctx,
                node.rep.owner,
                Payload::Describe {
                    target: Target::Fragment(frag),
                    root: key,
                    size: node.leaves,
                    height: node.height,
                    rep: node.rep,
                    last: false,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Phase 3 — bucket routing.
    // ------------------------------------------------------------------

    /// Routes every non-empty fragment's collected trees to the fragment's
    /// smallest anchor (the engine's bucket-placement rule).
    pub(crate) fn route_buckets(&mut self, ctx: &mut Ctx<'_>) {
        let seeds = std::mem::take(&mut self.seeds);
        for (seed, state) in seeds {
            if state.trees.is_empty() {
                continue;
            }
            ctx.tally.fragments += 1;
            ctx.tally.trees_collected += state.trees.len();
            let anchor = *state
                .anchors
                .iter()
                .next()
                .unwrap_or_else(|| panic!("non-empty fragment {seed} has no anchors"));
            for tree in state.trees {
                self.send(ctx, anchor.owner(), Payload::BucketTree { anchor, tree });
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 4 — the bottom-up BT_v merge.
    // ------------------------------------------------------------------

    /// Fires every `BT_v` leaf position this processor owns.
    pub(crate) fn start_merges(&mut self, shared: &Shared, ctx: &mut Ctx<'_>) {
        let keys: Vec<VKey> = self.duties.keys().copied().collect();
        for anchor in keys {
            self.try_merge(anchor, shared, ctx);
        }
    }

    /// Runs this position's merge once its bucket, child hafts and strip
    /// parts are all in: plan `ComputeHaft` locally (the shared pure
    /// blueprint), execute the joins as messages, and report the output to
    /// the `BT_v` parent.
    fn try_merge(&mut self, anchor: VKey, shared: &Shared, ctx: &mut Ctx<'_>) {
        let duty = self.duties.get_mut(&anchor).expect("anchor duty exists");
        if duty.merged || duty.waiting_children > 0 || duty.pending_strips > 0 {
            return;
        }
        duty.merged = true;
        if !duty.bucket.is_empty() {
            ctx.tally.buckets += 1;
        }
        let mut trees = std::mem::take(&mut duty.bucket);
        trees.append(&mut duty.parts);
        let pos = duty.pos;
        let output = if trees.is_empty() {
            None
        } else {
            let plan = plan_compute_haft(trees, shared.policy);
            for step in &plan.joins {
                self.send(ctx, step.slot.owner, Payload::MakeHelper { step: *step });
            }
            Some(plan.output)
        };
        if pos == 0 {
            ctx.set_btv_root(output);
        } else {
            let parent = shared.anchors[(pos - 1) / 2];
            self.send(
                ctx,
                parent.owner(),
                Payload::HaftUp {
                    anchor: parent,
                    haft: output,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // The message dispatcher.
    // ------------------------------------------------------------------

    pub(crate) fn handle(&mut self, payload: Payload, shared: &Shared, ctx: &mut Ctx<'_>) {
        match payload {
            Payload::TaintUp { key } => {
                if !self.tainted.insert(key) {
                    return;
                }
                match self.vnode(key).parent {
                    None => {
                        self.seeds.get_or_insert_with(key, SeedState::default);
                    }
                    Some(pp) => self.send(ctx, pp.owner(), Payload::TaintUp { key: pp }),
                }
            }
            Payload::Detach { key, frag } => {
                self.vnode_mut(key).parent = None;
                self.walk(key, frag, shared, ctx);
            }
            Payload::AnchorFrag { anchor, frag } => {
                self.seeds
                    .get_mut(&frag)
                    .unwrap_or_else(|| panic!("{frag} is not a seed here"))
                    .anchors
                    .insert(anchor);
            }
            Payload::Describe {
                target,
                root,
                size,
                height,
                rep,
                last,
            } => {
                // Only the representative's owner knows its current parent;
                // fill it in and forward the completed description.
                let rep_parent = self.vnode(rep.real()).parent;
                let tree = WireTree {
                    root,
                    size,
                    height,
                    rep,
                    rep_parent,
                };
                self.send(
                    ctx,
                    target.owner(),
                    Payload::CollectTree { target, tree, last },
                );
            }
            Payload::CollectTree { target, tree, last } => match target {
                Target::Fragment(frag) => {
                    self.seeds
                        .get_mut(&frag)
                        .unwrap_or_else(|| panic!("{frag} is not a seed here"))
                        .trees
                        .push(tree);
                }
                Target::Merge(anchor) => {
                    let duty = self.duties.get_mut(&anchor).expect("merge duty exists");
                    duty.parts.push(tree);
                    if last {
                        duty.pending_strips -= 1;
                        self.try_merge(anchor, shared, ctx);
                    }
                }
            },
            Payload::BucketTree { anchor, tree } => {
                self.duties
                    .get_mut(&anchor)
                    .expect("bucket target owns the duty")
                    .bucket
                    .push(tree);
            }
            Payload::MakeHelper { step } => {
                let key = step.slot.helper();
                let prev = self.vnodes.insert(
                    key,
                    VState {
                        parent: None,
                        left: Some(step.left),
                        right: Some(step.right),
                        leaves: step.size,
                        height: step.height,
                        rep: step.rep,
                    },
                );
                assert!(prev.is_none(), "helper {key} already exists (Lemma 3.1)");
                ctx.tally.helpers_created += 1;
                ctx.edge_add(self.id, step.left.owner());
                ctx.edge_add(self.id, step.right.owner());
                self.send(
                    ctx,
                    step.left.owner(),
                    Payload::SetParent {
                        key: step.left,
                        parent: key,
                    },
                );
                self.send(
                    ctx,
                    step.right.owner(),
                    Payload::SetParent {
                        key: step.right,
                        parent: key,
                    },
                );
            }
            Payload::SetParent { key, parent } => {
                self.vnode_mut(key).parent = Some(parent);
            }
            Payload::Strip { root, collector } => {
                self.vnode_mut(root).parent = None;
                let node = self.vnode(root).clone();
                if node.is_complete() {
                    // The whole haft is one complete tree: the last part.
                    self.send(
                        ctx,
                        node.rep.owner,
                        Payload::Describe {
                            target: Target::Merge(collector),
                            root,
                            size: node.leaves,
                            height: node.height,
                            rep: node.rep,
                            last: true,
                        },
                    );
                } else {
                    // Spine connector: emit the (complete) left part, walk on
                    // down the right spine, and free this node.
                    ctx.tally.helpers_freed += 1;
                    let left = node.left.expect("spine nodes are internal");
                    let right = node.right.expect("spine nodes are internal");
                    ctx.edge_drop(self.id, left.owner());
                    ctx.edge_drop(self.id, right.owner());
                    self.send(
                        ctx,
                        left.owner(),
                        Payload::StripDetach {
                            key: left,
                            collector,
                        },
                    );
                    self.send(
                        ctx,
                        right.owner(),
                        Payload::Strip {
                            root: right,
                            collector,
                        },
                    );
                    self.vnodes.remove(&root);
                }
            }
            Payload::StripDetach { key, collector } => {
                self.vnode_mut(key).parent = None;
                let node = self.vnode(key).clone();
                debug_assert!(node.is_complete(), "strip parts are complete");
                self.send(
                    ctx,
                    node.rep.owner,
                    Payload::Describe {
                        target: Target::Merge(collector),
                        root: key,
                        size: node.leaves,
                        height: node.height,
                        rep: node.rep,
                        last: false,
                    },
                );
            }
            Payload::HaftUp { anchor, haft } => {
                let duty = self.duties.get_mut(&anchor).expect("parent duty exists");
                duty.waiting_children -= 1;
                if let Some(wt) = haft {
                    duty.pending_strips += 1;
                    self.send(
                        ctx,
                        wt.root.owner(),
                        Payload::Strip {
                            root: wt.root,
                            collector: anchor,
                        },
                    );
                }
                self.try_merge(anchor, shared, ctx);
            }
        }
    }
}

//! The network simulator: per-node actors under a deterministic
//! round-based scheduler, plus the globally materialized views
//! (`G'`, the image, liveness) that measurements read.

use std::sync::Arc;

use fg_core::plan::WireTree;
use fg_core::{
    EngineError, HealerObserver, ImageGraph, InsertReport, NoopObserver, PlacementPolicy,
    RepairReport, Slot, VKey,
};
use fg_graph::{Graph, NodeId, SortedMap, SortedSet};

use crate::cost::{ceil_log2, RepairCost};
use crate::executor::{Effect, Phase, ProcStore, StepOut};
use crate::message::Message;
use crate::processor::{RepairTally, Shared, VLinks};

/// A self-healing network running the Forgiving Graph's repair as a
/// message-passing protocol (paper §4 / Lemma 4).
///
/// Protocol state — the reconstruction forest — lives in per-node actors
/// (`Processor`s) that only communicate through typed messages delivered
/// in synchronous rounds. The `Network` itself holds the materialized
/// global observables (the ghost graph `G'`, the healed image, liveness)
/// exactly as the sequential engine does, so the two implementations can
/// be compared state-for-state; the differential suite replays identical
/// adversarial traces through both and asserts equality after every event.
///
/// # Examples
///
/// ```
/// use fg_core::PlacementPolicy;
/// use fg_dist::Network;
/// use fg_graph::{generators, traversal, NodeId};
///
/// let mut net = Network::from_graph(&generators::star(9), PlacementPolicy::Adjacent);
/// let cost = net.delete(NodeId::new(0))?;
/// assert_eq!(cost.victim_degree, 8);
/// assert!(cost.normalized_messages() < 16.0);
/// assert!(traversal::is_connected(net.image()));
/// # Ok::<(), fg_core::EngineError>(())
/// ```
#[derive(Debug)]
pub struct Network {
    ghost: Graph,
    alive: Vec<bool>,
    image: ImageGraph,
    policy: PlacementPolicy,
    store: ProcStore,
    /// Accounting for every repair this network has run, in order.
    pub repair_costs: Vec<RepairCost>,
}

impl Network {
    /// Adopts an existing network as `G_0` — pure state initialisation,
    /// no preprocessing messages (the paper's improvement over the
    /// Forgiving Tree's `O(n log n)` setup). Runs single-threaded; see
    /// [`Network::from_graph_threaded`].
    ///
    /// # Panics
    ///
    /// Panics if `g` contains removed (tombstoned) nodes.
    pub fn from_graph(g: &Graph, policy: PlacementPolicy) -> Self {
        Self::from_graph_threaded(g, policy, 1)
    }

    /// [`Network::from_graph`] with repairs executed by a work-sharded
    /// pool of `threads` worker threads (clamped to ≥ 1; 1 means inline
    /// sequential execution, no pool).
    ///
    /// The thread count is an execution knob, not a semantic one: the
    /// canonical round order makes every observable — reports, costs,
    /// image, ghost, forest, even the observer callback stream —
    /// bit-identical at any width (DESIGN.md §9; asserted over all
    /// differential traces by `tests/parallel_determinism.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `g` contains removed (tombstoned) nodes.
    pub fn from_graph_threaded(g: &Graph, policy: PlacementPolicy, threads: usize) -> Self {
        assert_eq!(
            g.node_count(),
            g.nodes_ever(),
            "G0 must not contain tombstoned nodes"
        );
        let mut net = Network {
            ghost: Graph::new(),
            alive: Vec::new(),
            image: ImageGraph::new(),
            policy,
            store: ProcStore::new(threads),
            repair_costs: Vec::new(),
        };
        for i in 0..g.node_count() {
            net.ghost.add_node();
            net.image.add_node();
            net.alive.push(true);
            net.store.add_proc(NodeId::new(i as u32));
        }
        for e in g.edges() {
            net.ghost
                .add_edge(e.lo(), e.hi())
                .expect("copying a simple graph");
            net.image.inc(e.lo(), e.hi());
        }
        net
    }

    /// The executor width: 1 when repairs run inline, otherwise the
    /// worker-pool thread count.
    pub fn threads(&self) -> usize {
        self.store.threads()
    }

    /// Re-shards the actors onto a pool of `threads` workers (1 tears the
    /// pool down and goes back to inline execution). Cheap outside of
    /// repairs; every observable is unaffected.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads == self.store.threads() {
            return;
        }
        let procs = std::mem::replace(&mut self.store, ProcStore::new(1)).into_procs();
        self.store = ProcStore::from_procs(procs, threads);
    }

    /// The insert-only graph `G'`.
    pub fn ghost(&self) -> &Graph {
        &self.ghost
    }

    /// The healed network as a simple graph over live processors.
    pub fn image(&self) -> &Graph {
        self.image.simple()
    }

    /// Whether `v` is currently alive.
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive.get(v.index()).copied().unwrap_or(false)
    }

    /// An epoch-stamped read-only snapshot of the protocol state **at a
    /// round barrier**.
    ///
    /// Between public operations the round executor has always run to
    /// quiescence: every effect log of the last repair round was merged
    /// and applied to the shared `ProcStore` surface at the barrier, so
    /// the image this view exposes is the exact materialization of the
    /// per-processor state — never a mid-round mixture. Query it through
    /// `fg_core::QueryOps`; the query differential suite asserts its
    /// answers are bit-identical to the sequential engine's views along
    /// every adversarial trace.
    pub fn view(&self) -> fg_core::View<'_> {
        fg_core::View::over(self.image(), self.ghost())
    }

    /// Live node count.
    pub fn alive_count(&self) -> usize {
        self.image.simple().node_count()
    }

    /// Total nodes ever seen — the paper's `n`.
    pub fn nodes_ever(&self) -> usize {
        self.ghost.nodes_ever()
    }

    /// The placement policy every merge plan uses.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Number of virtual nodes currently alive across all processors.
    pub fn vnode_count(&self) -> usize {
        self.store.vnode_count()
    }

    /// The distributed reconstruction forest, flattened for comparison
    /// with the sequential engine: `(key, parent, left, right, leaves,
    /// height, representative)` in key order. The differential suite
    /// asserts this equals the engine's forest after every event.
    #[allow(clippy::type_complexity)]
    pub fn forest_snapshot(
        &self,
    ) -> Vec<(
        VKey,
        Option<VKey>,
        Option<VKey>,
        Option<VKey>,
        u32,
        u32,
        Slot,
    )> {
        let mut out = self.store.snapshot();
        out.sort_by_key(|entry| entry.0);
        out
    }

    /// Adversarially inserts a node connected to `neighbors`.
    ///
    /// Insertion needs no healing (paper §3): the new processor and its
    /// neighbours record the edges locally.
    ///
    /// # Errors
    ///
    /// Mirrors the engine: [`EngineError::EmptyNeighbourhood`],
    /// [`EngineError::DuplicateNeighbour`], [`EngineError::NotAlive`].
    pub fn insert(&mut self, neighbors: &[NodeId]) -> Result<NodeId, EngineError> {
        self.insert_with(neighbors, &mut NoopObserver)
            .map(|report| report.node)
    }

    /// [`Network::insert`] with streaming instrumentation: `obs` receives
    /// one `on_repair_edge(v, x, true)` per attachment, and the returned
    /// [`InsertReport`] is identical to the sequential engine's.
    ///
    /// # Errors
    ///
    /// Same as [`Network::insert`].
    pub fn insert_with(
        &mut self,
        neighbors: &[NodeId],
        obs: &mut dyn HealerObserver,
    ) -> Result<InsertReport, EngineError> {
        if neighbors.is_empty() {
            return Err(EngineError::EmptyNeighbourhood);
        }
        let mut seen = SortedSet::new();
        for &x in neighbors {
            if !seen.insert(x) {
                return Err(EngineError::DuplicateNeighbour(x));
            }
            if !self.is_alive(x) {
                return Err(EngineError::NotAlive(x));
            }
        }
        let v = self.ghost.add_node();
        let iv = self.image.add_node();
        debug_assert_eq!(v, iv, "ghost and image ids must stay aligned");
        self.alive.push(true);
        self.store.add_proc(v);
        for &x in neighbors {
            self.ghost.add_edge(v, x).expect("fresh node, fresh edges");
            self.image.inc(v, x);
            obs.on_repair_edge(v, x, true);
        }
        Ok(InsertReport {
            node: v,
            neighbors: neighbors.len(),
            edges_added: neighbors.len() as u64,
        })
    }

    /// Adversarially deletes `v` and runs the repair protocol to
    /// quiescence, returning the Lemma 4 accounting.
    ///
    /// The repair proceeds in the paper's phases, each a burst of
    /// synchronous message rounds: will-based failure detection, the
    /// upward taint climb, the shatter walk that frees red nodes and
    /// collects primary roots per fragment, bucket routing to each
    /// fragment's smallest anchor, and the bottom-up `BT_v` merge in which
    /// anchors strip incoming hafts and execute the shared `ComputeHaft`
    /// blueprint through `MakeHelper`/`SetParent` messages.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotAlive`] if `v` is unknown or already deleted.
    pub fn delete(&mut self, v: NodeId) -> Result<RepairCost, EngineError> {
        self.delete_inner(v, &mut NoopObserver)
            .map(|(_, cost)| cost)
    }

    /// [`Network::delete`] returning the structural [`RepairReport`]
    /// instead of the Lemma 4 [`RepairCost`] (which is still pushed onto
    /// [`Network::repair_costs`]), with streaming instrumentation: `obs`
    /// receives one `on_repair_edge` per image edge unit the protocol
    /// adds or drops.
    ///
    /// Every report field is a structural quantity of the repair, so this
    /// report is bit-identical to the sequential engine's for the same
    /// event on the same state — the differential suite asserts it.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotAlive`] if `v` is unknown or already deleted.
    pub fn delete_with(
        &mut self,
        v: NodeId,
        obs: &mut dyn HealerObserver,
    ) -> Result<RepairReport, EngineError> {
        self.delete_inner(v, obs).map(|(report, _)| report)
    }

    fn delete_inner(
        &mut self,
        v: NodeId,
        obs: &mut dyn HealerObserver,
    ) -> Result<(RepairReport, RepairCost), EngineError> {
        if !self.is_alive(v) {
            return Err(EngineError::NotAlive(v));
        }
        let mut tally = RepairTally::default();
        let victim_degree = self.ghost.degree(v);
        let nodes_ever = self.ghost.nodes_ever();
        let name_bits = ceil_log2(nodes_ever);
        let mut cost = RepairCost {
            victim_degree,
            messages: 0,
            rounds: 0,
            bits: 0,
            max_message_bits: 0,
            nodes_ever,
        };

        // ------------------------------------------------------------
        // Phase 0 — the failure is detected. The victim's will (its slot
        // table, replicated to image neighbours while it was alive) lets
        // every affected processor act locally and identically.
        // ------------------------------------------------------------
        let alive_nbrs: SortedSet<NodeId> = self
            .ghost
            .neighbors(v)
            .filter(|&x| self.is_alive(x))
            .collect();
        let removed: SortedMap<VKey, VLinks> = self.store.take_will(v).into_iter().collect();
        let mut anchor_set = SortedSet::new();
        for links in removed.values() {
            for adj in links
                .parent
                .iter()
                .chain(links.left.iter())
                .chain(links.right.iter())
            {
                if !removed.contains_key(adj) {
                    anchor_set.insert(*adj);
                }
            }
        }
        for &x in &alive_nbrs {
            anchor_set.insert(Slot::new(x, v).real());
        }
        let shared = Arc::new(Shared {
            victim: v,
            alive_nbrs,
            removed,
            anchors: anchor_set.iter().copied().collect(),
            anchor_set,
            policy: self.policy,
        });
        self.alive[v.index()] = false;

        // The victim's processor vanishes; internal tree edges between two
        // of its own virtual nodes collapse to self-loops nobody else can
        // release, so the simulator settles them here. The victim's own
        // virtual nodes (leaves and helpers) are what the will removes.
        let mut victim_internal = 0u32;
        for (key, links) in shared.removed.iter() {
            if key.is_real() {
                tally.leaves_removed += 1;
            } else {
                tally.helpers_freed += 1;
            }
            for child in links.left.iter().chain(links.right.iter()) {
                if shared.removed.contains_key(child) {
                    victim_internal += 1;
                }
            }
        }
        for _ in 0..victim_internal {
            self.image.dec(v, v);
            tally.edges_dropped += 1;
            obs.on_repair_edge(v, v, false);
        }

        // Hand the repair context to every executor, then run the phases:
        // failure detection at the victim's image neighbours, the taint
        // climb it seeds (phase 1), and one kickoff + message burst for
        // each of the shatter walk (2), bucket routing (3) and the
        // bottom-up BT_v merge (4). Each burst runs to quiescence through
        // the work-sharded executor; effects surface at the barriers.
        self.store.begin(&shared);
        let affected: Vec<NodeId> = self.image.simple().neighbor_vec(v);
        let mut btv_root: Option<WireTree> = None;

        cost.rounds += 1;
        let step = self.store.detect(&affected, &shared);
        let queue = self.absorb(step, name_bits, &mut cost, &mut tally, &mut btv_root, obs);
        self.drain(
            queue,
            &shared,
            name_bits,
            &mut cost,
            &mut tally,
            &mut btv_root,
            obs,
        );
        for phase in [Phase::Walks, Phase::Buckets, Phase::Merges] {
            cost.rounds += 1;
            let step = self.store.trigger(phase, &shared);
            let queue = self.absorb(step, name_bits, &mut cost, &mut tally, &mut btv_root, obs);
            self.drain(
                queue,
                &shared,
                name_bits,
                &mut cost,
                &mut tally,
                &mut btv_root,
                obs,
            );
        }

        // Quiesced: the victim is fully detached. Repair scratch is
        // cleared everywhere — the taint climb, strips and plan execution
        // reach processors far beyond the victim's neighbourhood.
        self.image.remove_node(v);
        self.store.end_repair();

        // The structural report — field for field what the sequential
        // engine computes from its own stats deltas, derived here from the
        // tally, the will, and the final `BT_v` output.
        let anchor_count = shared.anchors.len();
        let btv_rounds = if anchor_count == 0 {
            0
        } else {
            usize::BITS - 1 - anchor_count.leading_zeros()
        };
        let (rt_leaves, rt_depth) = match &btv_root {
            Some(wt) => (wt.size, wt.height),
            None => (0, 0),
        };
        let affected_nodes = {
            let mut owners = SortedSet::new();
            for a in &shared.anchors {
                owners.insert(a.owner());
            }
            owners.len()
        };
        let report = RepairReport {
            deleted: v,
            ghost_degree: victim_degree,
            alive_neighbors: shared.alive_nbrs.len(),
            nodes_ever,
            fragments: tally.fragments,
            trees_collected: tally.trees_collected,
            will_entries: shared.removed.len(),
            buckets: tally.buckets,
            affected_nodes,
            edges_added: tally.edges_added,
            edges_dropped: tally.edges_dropped,
            helpers_created: tally.helpers_created,
            helpers_freed: tally.helpers_freed,
            leaves_created: tally.leaves_created,
            leaves_removed: tally.leaves_removed,
            btv_rounds,
            rt_leaves,
            rt_depth,
        };
        self.repair_costs.push(cost.clone());
        Ok((report, cost))
    }

    /// Folds one barrier-merged step into the coordinator state: counts
    /// the freshly sent messages against the Lemma 4 budget, sums the
    /// shard tallies, and applies the canonical effect log — image edge
    /// units (streamed to `obs` as they land) and the `BT_v` root
    /// deposit. Returns the outbox seeding the next round.
    #[allow(clippy::too_many_arguments)]
    fn absorb(
        &mut self,
        step: StepOut,
        name_bits: u64,
        cost: &mut RepairCost,
        tally: &mut RepairTally,
        btv_root: &mut Option<WireTree>,
        obs: &mut dyn HealerObserver,
    ) -> Vec<Message> {
        Self::tally(&step.outbox, name_bits, cost);
        tally.absorb(&step.tally);
        for (_key, effect) in step.effects {
            match effect {
                Effect::Edge { u, v, added: true } => {
                    self.image.inc(u, v);
                    tally.edges_added += 1;
                    obs.on_repair_edge(u, v, true);
                }
                Effect::Edge { u, v, added: false } => {
                    self.image.dec(u, v);
                    tally.edges_dropped += 1;
                    obs.on_repair_edge(u, v, false);
                }
                Effect::BtvRoot(root) => *btv_root = root,
            }
        }
        step.outbox
    }

    /// Delivers messages round by round until the network quiesces: each
    /// iteration is one synchronous round, executed by the store (inline
    /// or work-sharded) and folded back in at the barrier.
    #[allow(clippy::too_many_arguments)]
    fn drain(
        &mut self,
        mut queue: Vec<Message>,
        shared: &Shared,
        name_bits: u64,
        cost: &mut RepairCost,
        tally: &mut RepairTally,
        btv_root: &mut Option<WireTree>,
        obs: &mut dyn HealerObserver,
    ) {
        while !queue.is_empty() {
            cost.rounds += 1;
            let step = self.store.deliver(queue, shared);
            queue = self.absorb(step, name_bits, cost, tally, btv_root, obs);
        }
    }

    /// Adds a batch of freshly sent messages to the Lemma 4 tallies.
    /// Self-addressed messages model local computation and are free.
    fn tally(outbox: &[Message], name_bits: u64, cost: &mut RepairCost) {
        for m in outbox {
            if m.src == m.dst {
                continue;
            }
            let bits = m.payload.bits(name_bits);
            cost.messages += 1;
            cost.bits += bits;
            cost.max_message_bits = cost.max_message_bits.max(bits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::ForgivingGraph;
    use fg_graph::{generators, traversal};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn assert_lockstep(net: &Network, fg: &ForgivingGraph) {
        assert_eq!(net.image(), fg.image(), "images diverged");
        assert_eq!(net.ghost(), fg.ghost(), "ghosts diverged");
        let engine: Vec<_> = fg
            .forest()
            .iter()
            .map(|(k, vn)| {
                (
                    k, vn.parent, vn.left, vn.right, vn.leaves, vn.height, vn.rep,
                )
            })
            .collect();
        assert_eq!(net.forest_snapshot(), engine, "forests diverged");
    }

    #[test]
    fn star_hub_repair_matches_engine() {
        let g = generators::star(9);
        let mut net = Network::from_graph(&g, PlacementPolicy::Adjacent);
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        let cost = net.delete(n(0)).unwrap();
        let _ = fg.delete(n(0)).unwrap();
        assert_lockstep(&net, &fg);
        assert!(traversal::is_connected(net.image()));
        assert_eq!(cost.victim_degree, 8);
        assert!(cost.messages > 0);
        assert!(cost.rounds > 3, "a real repair takes several rounds");
    }

    #[test]
    fn cascade_on_grid_matches_engine() {
        let g = generators::grid(4, 4);
        let mut net = Network::from_graph(&g, PlacementPolicy::Adjacent);
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        for i in 0..16u32 {
            net.delete(n(i)).unwrap();
            let _ = fg.delete(n(i)).unwrap();
            assert_lockstep(&net, &fg);
        }
        assert_eq!(net.alive_count(), 0);
        assert_eq!(net.vnode_count(), 0, "the distributed forest must drain");
    }

    #[test]
    fn paper_exact_policy_matches_engine() {
        let g = generators::connected_erdos_renyi(24, 0.12, 5);
        let mut net = Network::from_graph(&g, PlacementPolicy::PaperExact);
        let mut fg =
            ForgivingGraph::from_graph_with_policy(&g, PlacementPolicy::PaperExact).unwrap();
        for i in [0u32, 3, 7, 11, 2, 15, 9] {
            net.delete(n(i)).unwrap();
            let _ = fg.delete(n(i)).unwrap();
            assert_lockstep(&net, &fg);
        }
    }

    #[test]
    fn inserts_mirror_engine() {
        let g = generators::cycle(6);
        let mut net = Network::from_graph(&g, PlacementPolicy::Adjacent);
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        let a = net.insert(&[n(0), n(3)]).unwrap();
        let b = fg.insert(&[n(0), n(3)]).unwrap();
        assert_eq!(a, b);
        net.delete(n(0)).unwrap();
        let _ = fg.delete(n(0)).unwrap();
        assert_lockstep(&net, &fg);
        assert_eq!(
            net.insert(&[n(0)]),
            Err(EngineError::NotAlive(n(0))),
            "dead neighbours are rejected"
        );
        assert_eq!(net.insert(&[]), Err(EngineError::EmptyNeighbourhood));
        assert_eq!(
            net.insert(&[n(1), n(1)]),
            Err(EngineError::DuplicateNeighbour(n(1)))
        );
    }

    #[test]
    fn delete_errors_match_engine() {
        let mut net = Network::from_graph(&generators::path(3), PlacementPolicy::Adjacent);
        assert_eq!(net.delete(n(9)), Err(EngineError::NotAlive(n(9))));
        net.delete(n(1)).unwrap();
        assert_eq!(net.delete(n(1)), Err(EngineError::NotAlive(n(1))));
    }

    #[test]
    fn isolated_victim_needs_no_messages() {
        let mut g = generators::path(3);
        let iso = g.add_node();
        let mut net = Network::from_graph(&g, PlacementPolicy::Adjacent);
        let cost = net.delete(iso).unwrap();
        assert_eq!(cost.messages, 0);
        assert_eq!(cost.victim_degree, 0);
    }

    #[test]
    fn repair_is_deterministic() {
        let build = || {
            let g = generators::connected_erdos_renyi(20, 0.15, 3);
            let mut net = Network::from_graph(&g, PlacementPolicy::Adjacent);
            let costs: Vec<RepairCost> = (0..6u32).map(|i| net.delete(n(i)).unwrap()).collect();
            (net.forest_snapshot(), costs)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn thread_count_is_unobservable() {
        // The tentpole claim in miniature (the full 144-trace sweep lives
        // in tests/parallel_determinism.rs): costs, forests, images and
        // reports are bit-identical at every executor width.
        let run = |threads: usize| {
            let g = generators::connected_erdos_renyi(22, 0.14, 8);
            let mut net = Network::from_graph_threaded(&g, PlacementPolicy::Adjacent, threads);
            assert_eq!(net.threads(), threads.max(1));
            let mut reports = Vec::new();
            for i in [0u32, 5, 9, 1, 14] {
                reports.push(net.delete_with(n(i), &mut fg_core::NoopObserver).unwrap());
            }
            let inserted = net.insert(&[n(3), n(7)]).unwrap();
            reports.push(
                net.delete_with(inserted, &mut fg_core::NoopObserver)
                    .unwrap(),
            );
            (
                net.forest_snapshot(),
                net.repair_costs.clone(),
                net.image().clone(),
                net.ghost().clone(),
                reports,
            )
        };
        let reference = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run(threads), reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn set_threads_reshards_without_observable_change() {
        let g = generators::connected_erdos_renyi(20, 0.15, 4);
        let mut net = Network::from_graph(&g, PlacementPolicy::Adjacent);
        net.delete(n(2)).unwrap();
        let before = net.forest_snapshot();
        net.set_threads(3);
        assert_eq!(net.threads(), 3);
        assert_eq!(net.forest_snapshot(), before, "resharding moved state");
        net.delete(n(5)).unwrap();
        net.set_threads(1);
        assert_eq!(net.threads(), 1);

        // The same trace run flat matches the mid-flight reshard.
        let mut flat = Network::from_graph(&g, PlacementPolicy::Adjacent);
        flat.delete(n(2)).unwrap();
        flat.delete(n(5)).unwrap();
        assert_eq!(net.forest_snapshot(), flat.forest_snapshot());
        assert_eq!(net.repair_costs, flat.repair_costs);
    }

    #[test]
    fn delete_with_reports_match_engine_reports() {
        let g = generators::connected_erdos_renyi(18, 0.16, 9);
        let mut net = Network::from_graph(&g, PlacementPolicy::Adjacent);
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        for i in [0u32, 4, 9, 2, 13] {
            let dist_report = net.delete_with(n(i), &mut fg_core::NoopObserver).unwrap();
            let engine_report = fg.delete(n(i)).unwrap();
            assert_eq!(dist_report, engine_report, "reports diverged at n{i}");
        }
    }
}

//! [`DistHealer`]: the message-passing protocol behind the shared
//! [`SelfHealer`] façade.
//!
//! [`crate::Network`] is the raw protocol machine — actors, rounds,
//! Lemma 4 cost accounting. `DistHealer` adapts it to the typed
//! operation/outcome API of `fg_core::api`, so the adversary driver, the
//! ScenarioRunner, the metrics collectors and the differential suite can
//! drive the distributed protocol exactly the way they drive the
//! sequential engine and every baseline — and receive the *same*
//! structural [`fg_core::RepairReport`]s, bit for bit.

use fg_core::{
    EngineError, HealerObserver, InsertReport, NoopObserver, PlacementPolicy, RepairReport,
    SelfHealer,
};
use fg_graph::{Graph, NodeId};

use crate::cost::RepairCost;
use crate::network::Network;

/// The distributed protocol as a [`SelfHealer`].
///
/// # Examples
///
/// ```
/// use fg_core::{PlacementPolicy, SelfHealer};
/// use fg_dist::DistHealer;
/// use fg_graph::{generators, NodeId};
///
/// let mut healer = DistHealer::from_graph(&generators::star(9), PlacementPolicy::Adjacent);
/// let report = healer.delete(NodeId::new(0))?;
/// assert_eq!(report.ghost_degree, 8);
/// assert_eq!(report.leaves_created, 8);
/// // Lemma 4 message accounting stays available underneath the façade.
/// assert!(healer.costs().last().unwrap().normalized_messages() < 16.0);
/// # Ok::<(), fg_core::EngineError>(())
/// ```
#[derive(Debug)]
pub struct DistHealer {
    net: Network,
}

impl DistHealer {
    /// Wraps an existing protocol network.
    pub fn new(net: Network) -> Self {
        DistHealer { net }
    }

    /// Adopts `g` as `G_0` (see [`Network::from_graph`]).
    ///
    /// # Panics
    ///
    /// Panics if `g` contains removed (tombstoned) nodes.
    pub fn from_graph(g: &Graph, policy: PlacementPolicy) -> Self {
        DistHealer::new(Network::from_graph(g, policy))
    }

    /// [`DistHealer::from_graph`] with repairs executed across `threads`
    /// shard workers (see [`Network::from_graph_threaded`]); every
    /// observable is bit-identical at any width.
    ///
    /// # Panics
    ///
    /// Panics if `g` contains removed (tombstoned) nodes.
    pub fn from_graph_threaded(g: &Graph, policy: PlacementPolicy, threads: usize) -> Self {
        DistHealer::new(Network::from_graph_threaded(g, policy, threads))
    }

    /// The executor width (see [`Network::threads`]).
    pub fn threads(&self) -> usize {
        self.net.threads()
    }

    /// Re-shards the executor (see [`Network::set_threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.net.set_threads(threads);
    }

    /// The underlying protocol network (forest snapshots, vnode counts).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The Lemma 4 accounting of every repair run so far, in order.
    pub fn costs(&self) -> &[RepairCost] {
        &self.net.repair_costs
    }

    /// Unwraps the adapter.
    pub fn into_network(self) -> Network {
        self.net
    }
}

impl SelfHealer for DistHealer {
    fn name(&self) -> &'static str {
        "fg-dist"
    }

    fn insert(&mut self, neighbors: &[NodeId]) -> Result<InsertReport, EngineError> {
        self.net.insert_with(neighbors, &mut NoopObserver)
    }

    fn delete(&mut self, v: NodeId) -> Result<RepairReport, EngineError> {
        self.net.delete_with(v, &mut NoopObserver)
    }

    fn insert_observed(
        &mut self,
        neighbors: &[NodeId],
        obs: &mut dyn HealerObserver,
    ) -> Result<InsertReport, EngineError> {
        let report = self.net.insert_with(neighbors, obs)?;
        obs.on_insert(&report);
        Ok(report)
    }

    fn delete_observed(
        &mut self,
        v: NodeId,
        obs: &mut dyn HealerObserver,
    ) -> Result<RepairReport, EngineError> {
        let report = self.net.delete_with(v, obs)?;
        obs.on_delete(&report);
        Ok(report)
    }

    fn image(&self) -> &Graph {
        self.net.image()
    }

    fn ghost(&self) -> &Graph {
        self.net.ghost()
    }

    fn is_alive(&self, v: NodeId) -> bool {
        self.net.is_alive(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::NetworkEvent;
    use fg_graph::generators;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn self_healer_surface_works() {
        let mut healer = DistHealer::from_graph(&generators::star(5), PlacementPolicy::Adjacent);
        let dynamic: &mut dyn SelfHealer = &mut healer;
        assert_eq!(dynamic.name(), "fg-dist");
        let outcome = dynamic.apply_event(&NetworkEvent::delete(n(0))).unwrap();
        assert!(outcome.is_repair());
        assert!(!dynamic.is_alive(n(0)));
        assert_eq!(dynamic.image().node_count(), 4);
        let outcome = dynamic
            .apply_event(&NetworkEvent::insert([n(1), n(2)]))
            .unwrap();
        assert_eq!(outcome.node(), Some(n(5)));
        assert_eq!(healer.costs().len(), 1);
    }

    #[test]
    fn views_are_barrier_consistent_snapshots() {
        use fg_core::{GraphView, QueryOps};
        let g = generators::star(9);
        let mut dist = DistHealer::from_graph(&g, PlacementPolicy::Adjacent);
        let mut engine = fg_core::ForgivingGraph::from_graph(&g).unwrap();
        let _ = SelfHealer::delete(&mut dist, n(0)).unwrap();
        let _ = engine.delete(n(0)).unwrap();
        // The protocol's view is materialized at the round barrier, so
        // it answers exactly like the engine's.
        let (dv, ev) = (dist.view(), engine.view());
        assert_eq!(dv.epoch(), ev.epoch());
        for u in 1..9u32 {
            for v in 1..9u32 {
                assert_eq!(dv.distance(n(u), n(v)), ev.distance(n(u), n(v)));
                assert_eq!(dv.stretch(n(u), n(v)), ev.stretch(n(u), n(v)));
            }
        }
        assert_eq!(dist.network().view().epoch(), dv.epoch());
    }

    #[test]
    fn batches_pinpoint_failing_events() {
        let mut healer = DistHealer::from_graph(&generators::path(4), PlacementPolicy::Adjacent);
        let err = healer
            .apply_batch(&[NetworkEvent::delete(n(1)), NetworkEvent::delete(n(1))])
            .unwrap_err();
        match err {
            EngineError::AtEvent { index, source, .. } => {
                assert_eq!(index, 1);
                assert_eq!(*source, EngineError::NotAlive(n(1)));
            }
            other => panic!("expected AtEvent, got {other:?}"),
        }
    }
}

//! # fg-dist — the Forgiving Graph as a message-passing protocol
//!
//! The distributed face of *The Forgiving Graph* (Hayes, Saia, Trehan;
//! PODC 2009, [arXiv:0902.2501]) and the subject of its Lemma 4: repairing
//! a deletion of a degree-`d` node takes `O(d log n)` messages of
//! `O(log n)` bits each, in `O(log d · log n)` rounds.
//!
//! A [`Network`] is a set of per-node actors exchanging typed messages
//! through a deterministic round-based scheduler. Each actor owns exactly
//! the virtual tree nodes its processor simulates (paper Table 1); a
//! deletion triggers the repair choreography — failure detection from the
//! victim's replicated will, an upward taint climb, the shatter walk that
//! strips the broken reconstruction trees into complete fragments, bucket
//! routing, and the bottom-up `BT_v` merge, whose blueprint is the *same*
//! pure `fg_core::plan::plan_compute_haft` computation the sequential
//! engine executes. That shared planner is what makes the two
//! implementations provably convergent: the differential suite replays
//! identical adversarial traces through both and asserts image, ghost and
//! forest equality after every event.
//!
//! Every repair returns a [`RepairCost`] with the Lemma 4 observables —
//! message count, rounds, total bits, and the largest single message —
//! plus normalizations against the paper envelopes. See DESIGN.md §3–§4
//! for the protocol walkthrough and the simulator's modelling assumptions
//! (what the will covers, which messages are free, how rounds are
//! counted).
//!
//! [arXiv:0902.2501]: https://arxiv.org/abs/0902.2501
//!
//! ## Example
//!
//! ```
//! use fg_core::{ForgivingGraph, PlacementPolicy};
//! use fg_dist::Network;
//! use fg_graph::{generators, NodeId};
//!
//! // The protocol and the sequential engine converge to identical state.
//! let g = generators::star(17);
//! let mut net = Network::from_graph(&g, PlacementPolicy::Adjacent);
//! let mut fg = ForgivingGraph::from_graph(&g)?;
//! let cost = net.delete(NodeId::new(0))?;
//! fg.delete(NodeId::new(0))?;
//! assert_eq!(net.image(), fg.image());
//! // Lemma 4: messages O(d log n), every message O(log n) bits.
//! assert!(cost.normalized_messages() < 16.0);
//! assert!(cost.max_message_bits <= 16 * 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod executor;
mod healer;
mod message;
mod network;
mod processor;
mod shard;

pub use cost::RepairCost;
pub use healer::DistHealer;
pub use network::Network;
pub use shard::ShardMap;

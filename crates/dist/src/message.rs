//! The protocol's wire vocabulary.
//!
//! Every message is addressed processor-to-processor and carries `O(log n)`
//! bits: node names, virtual-node keys ([`VKey`]), or one [`WireTree`]
//! description. Bulk transfers (fragment collections, buckets) are chunked
//! into one message per tree so the Lemma 4 `O(log n)` message-size claim
//! stays observable — [`Payload::bits`] is what E3 reports.

use fg_core::plan::{JoinStep, WireTree};
use fg_core::{Slot, VKey};
use fg_graph::NodeId;

/// Where a described/collected tree is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Target {
    /// A shatter fragment, identified by its seed key; trees accumulate at
    /// the seed's owner.
    Fragment(VKey),
    /// A `BT_v` merge in progress, identified by the merging anchor.
    Merge(VKey),
}

impl Target {
    pub(crate) fn owner(self) -> NodeId {
        match self {
            Target::Fragment(k) | Target::Merge(k) => k.owner(),
        }
    }
}

/// One protocol message's payload.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Payload {
    /// "Your virtual node `key` has a removed descendant" — climbs from the
    /// victim's neighbourhood to the tree root (the shatter pre-pass).
    TaintUp { key: VKey },
    /// "Your parent was freed; you now head fragment `frag`" — the shatter
    /// walk descending through red nodes.
    Detach { key: VKey, frag: VKey },
    /// "Anchor `anchor` sits in fragment `frag`" — reported to the
    /// fragment's seed so it can route the bucket to the smallest anchor.
    AnchorFrag { anchor: VKey, frag: VKey },
    /// "Fill in your leaf's parent pointer and forward this tree
    /// description" — sent to the representative's owner, which alone
    /// knows the representative's current parent.
    Describe {
        target: Target,
        root: VKey,
        size: u32,
        height: u32,
        rep: Slot,
        last: bool,
    },
    /// A completed tree description arriving at its collector.
    CollectTree {
        target: Target,
        tree: WireTree,
        last: bool,
    },
    /// One tree of a fragment's bucket, delivered to the smallest anchor.
    BucketTree { anchor: VKey, tree: WireTree },
    /// "Create the helper for this join" — one `ComputeHaft` plan step,
    /// sent to the simulator slot's owner.
    MakeHelper { step: JoinStep },
    /// "Your virtual node `key` now hangs under `parent`."
    SetParent { key: VKey, parent: VKey },
    /// "You head a haft to be stripped; emit parts to `collector` and
    /// forward down the right spine."
    Strip { root: VKey, collector: VKey },
    /// "You were detached as a (complete) strip part; describe yourself to
    /// `collector`."
    StripDetach { key: VKey, collector: VKey },
    /// A `BT_v` child position reporting its merged haft (or `None` if its
    /// whole subtree was empty) to the parent `anchor`.
    HaftUp {
        anchor: VKey,
        haft: Option<WireTree>,
    },
}

impl Payload {
    /// Delivery priority inside one round: helper creation must land
    /// before parent pointers or strips that reference the new node, and a
    /// strip's closing part (`last`) must land after its sibling parts —
    /// the deepest non-final part of a spine walk arrives in the same
    /// round as the final one.
    pub(crate) fn priority(&self) -> u8 {
        match self {
            Payload::MakeHelper { .. } => 0,
            Payload::SetParent { .. } => 1,
            Payload::CollectTree { last: true, .. } => 3,
            _ => 2,
        }
    }

    /// Estimated payload size in bits, with node names costing
    /// `name_bits = ⌈log₂ n⌉` (Lemma 4's message-size unit).
    pub(crate) fn bits(&self, name_bits: u64) -> u64 {
        let slot = 2 * name_bits; // (owner, other)
        let vkey = slot + 1; // slot + real/helper flag
        let wire = vkey + 2 * name_bits + slot + vkey + 1; // root, size+height, rep, rep_parent
        let target = vkey + 1;
        match self {
            Payload::TaintUp { .. } => vkey,
            Payload::Detach { .. } | Payload::AnchorFrag { .. } => 2 * vkey,
            Payload::Describe { .. } => target + vkey + 2 * name_bits + slot + 1,
            Payload::CollectTree { .. } => target + wire + 1,
            Payload::BucketTree { .. } => vkey + wire,
            Payload::MakeHelper { .. } => 2 * vkey + 2 * slot + 2 * name_bits,
            Payload::SetParent { .. } | Payload::Strip { .. } | Payload::StripDetach { .. } => {
                2 * vkey
            }
            Payload::HaftUp { haft, .. } => vkey + 1 + if haft.is_some() { wire } else { 0 },
        }
    }
}

/// The canonical within-round delivery key: `(priority, sender, seq)`.
///
/// Priorities encode the protocol's only real ordering constraints (see
/// [`Payload::priority`]); the `(sender, seq)` tiebreak is an arbitrary
/// but *total* deterministic order, so every executor — sequential or
/// work-sharded across any number of threads — delivers a round's
/// messages identically. Within one round the key is unique: a sender
/// numbers its outgoing messages with a per-repair counter.
pub(crate) type OrderKey = (u8, u32, u32);

/// An addressed in-flight message.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Message {
    pub src: NodeId,
    pub dst: NodeId,
    /// Per-sender sequence number (monotone within one repair).
    pub seq: u32,
    pub payload: Payload,
}

impl Message {
    /// The canonical delivery key of this message.
    pub(crate) fn key(&self) -> OrderKey {
        (self.payload.priority(), self.src.raw(), self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::NodeId;

    #[test]
    fn every_payload_is_logarithmic_in_names() {
        let slot = Slot::new(NodeId::new(1), NodeId::new(2));
        let wire = WireTree::leaf(slot);
        let payloads = [
            Payload::TaintUp { key: slot.real() },
            Payload::CollectTree {
                target: Target::Fragment(slot.real()),
                tree: wire,
                last: true,
            },
            Payload::HaftUp {
                anchor: slot.real(),
                haft: Some(wire),
            },
        ];
        for p in payloads {
            // Doubling the name width must no more than double-ish the
            // payload: sizes are linear in name_bits (no hidden vectors).
            let small = p.bits(8);
            let large = p.bits(16);
            assert!(large <= 2 * small, "{p:?}");
            assert!(small > 0);
        }
    }

    #[test]
    fn helper_creation_outranks_parent_pointers() {
        let slot = Slot::new(NodeId::new(1), NodeId::new(2));
        let step = JoinStep {
            left: slot.real(),
            right: slot.helper(),
            slot,
            rep: slot,
            size: 2,
            height: 1,
        };
        assert!(
            Payload::MakeHelper { step }.priority()
                < Payload::SetParent {
                    key: slot.real(),
                    parent: slot.helper()
                }
                .priority()
        );
    }
}

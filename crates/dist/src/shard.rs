//! Actor-to-shard assignment for the work-sharded round executor.
//!
//! The parallel executor partitions processors across worker threads.
//! Assignment is round-robin by processor index — `shard_of(i) = i mod
//! threads` — which has two properties the pool relies on:
//!
//! * **stability under growth**: inserting processor `n` never moves an
//!   existing processor to a different shard, so worker-owned state stays
//!   put across the whole run;
//! * **dense local indexing**: shard `w` owns exactly the global indices
//!   `{w, w + t, w + 2t, …}`, so a worker stores its processors in a plain
//!   `Vec` with `local_of(i) = i / threads` — O(1) routing both ways.
//!
//! None of this affects *what* the protocol computes: the executor's
//! canonical message order (see `DESIGN.md` §9) makes the shard layout —
//! and hence the thread count — unobservable in every output.

/// A total, exactly-once assignment of actor indices to `threads` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    threads: usize,
}

impl ShardMap {
    /// A map distributing actors round-robin over `threads` shards
    /// (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        ShardMap {
            threads: threads.max(1),
        }
    }

    /// Number of shards.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shard owning global actor index `i`.
    pub fn shard_of(&self, i: usize) -> usize {
        i % self.threads
    }

    /// The dense index of global actor `i` inside its shard's local store.
    pub fn local_of(&self, i: usize) -> usize {
        i / self.threads
    }

    /// The global actor index stored at `local` inside `shard`.
    pub fn global_of(&self, shard: usize, local: usize) -> usize {
        local * self.threads + shard
    }

    /// How many actors of a population of `n` land in `shard`.
    pub fn len_of(&self, shard: usize, n: usize) -> usize {
        debug_assert!(shard < self.threads);
        (n + self.threads - 1 - shard) / self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_threads_clamps_to_one() {
        let m = ShardMap::new(0);
        assert_eq!(m.threads(), 1);
        assert_eq!(m.shard_of(17), 0);
        assert_eq!(m.local_of(17), 17);
    }

    proptest! {
        /// Every actor is assigned to exactly one shard at any thread
        /// count, and the (shard, local) coordinates round-trip.
        #[test]
        fn partition_is_exactly_once(n in 0usize..600, threads in 1usize..17) {
            let m = ShardMap::new(threads);
            let mut seen = vec![0u32; n];
            for shard in 0..m.threads() {
                for local in 0..m.len_of(shard, n) {
                    let g = m.global_of(shard, local);
                    prop_assert!(g < n, "global {g} out of range {n}");
                    seen[g] += 1;
                    prop_assert_eq!(m.shard_of(g), shard);
                    prop_assert_eq!(m.local_of(g), local);
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1), "not a partition: {seen:?}");
        }

        /// Growth stability: adding an actor never reassigns existing ones.
        #[test]
        fn growth_never_moves_actors(n in 0usize..300, threads in 1usize..9) {
            let m = ShardMap::new(threads);
            let before: Vec<(usize, usize)> =
                (0..n).map(|i| (m.shard_of(i), m.local_of(i))).collect();
            // "Insert" one more actor; prior coordinates are unchanged by
            // construction (pure functions of the index), and the new actor
            // appends densely at the end of its shard.
            let after: Vec<(usize, usize)> =
                (0..n).map(|i| (m.shard_of(i), m.local_of(i))).collect();
            prop_assert_eq!(before, after);
            let new = n;
            prop_assert_eq!(m.local_of(new), m.len_of(m.shard_of(new), n));
        }
    }
}

//! The work-sharded round executor: one repair choreography, any thread
//! count, bit-identical outputs.
//!
//! The protocol's synchronous rounds parallelize naturally — within a
//! round every message is handled by its destination processor using
//! only that processor's local state, so processors can be partitioned
//! across worker threads ([`crate::ShardMap`]) and each shard can run its
//! slice of a round independently. Two mechanisms make the thread count
//! *unobservable* (DESIGN.md §9):
//!
//! 1. **Canonical delivery order.** Every message carries a
//!    `(priority, sender, seq)` key ([`crate::message::OrderKey`]); each
//!    shard sorts its round inbox by that key before handling. A
//!    processor therefore handles its messages in the same total order
//!    whether the round ran on one thread or sixteen.
//! 2. **Effect logs merged at the barrier.** Handlers never mutate the
//!    globally materialized observables (the image multigraph, the
//!    `BT_v` root deposit, the streaming observer); they append
//!    [`Effect`]s stamped with the triggering key. At the round barrier
//!    the coordinator merges the per-shard logs into canonical order and
//!    applies them — so the image, the observer callback stream and the
//!    structural tallies are byte-for-byte independent of the sharding.
//!
//! Execution comes in two flavours behind one [`ProcStore`] surface:
//! `Local` (thread count 1: processors owned inline, steps executed on
//! the caller's thread) and `Pool` (a persistent `std::thread` worker
//! pool owning the processors shard-wise, with per-round job fan-out
//! over mpsc channels). Both run the *same* step functions
//! ([`run_detect`], [`run_trigger`], [`run_deliver`]); the pool merely
//! changes who calls them.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use fg_core::plan::WireTree;
use fg_core::{Slot, VKey};
use fg_graph::NodeId;

use crate::message::{Message, OrderKey};
use crate::processor::{Ctx, Processor, RepairTally, Shared, VLinks};
use crate::shard::ShardMap;

/// One deferred mutation of the globally materialized state, recorded by
/// a handler and applied by the coordinator at the round barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Effect {
    /// Add (`added`) or drop one image edge unit between `u` and `v`.
    Edge { u: NodeId, v: NodeId, added: bool },
    /// The `BT_v` root deposits the final reconstruction tree.
    BtvRoot(Option<WireTree>),
}

/// A flattened reconstruction-forest row, as `forest_snapshot` reports it.
pub(crate) type SnapshotRow = (
    VKey,
    Option<VKey>,
    Option<VKey>,
    Option<VKey>,
    u32,
    u32,
    Slot,
);

/// What one shard produced in one step: outgoing messages, the ordered
/// effect log, and its partial structural tally.
#[derive(Debug, Default)]
pub(crate) struct StepOut {
    pub outbox: Vec<Message>,
    pub effects: Vec<(OrderKey, Effect)>,
    pub tally: RepairTally,
}

/// The three phase-kickoff scans of the repair choreography.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Start the shatter walk at every fragment seed.
    Walks,
    /// Route every fragment's bucket to its smallest anchor.
    Buckets,
    /// Fire every `BT_v` position this processor anchors.
    Merges,
}

/// Merges per-shard step outputs into one canonical step output.
///
/// Outboxes concatenate (delivery re-sorts per destination next round, so
/// only the multiset matters); effect logs — each already ascending in
/// its shard — stable-sort into the global canonical order; tallies sum.
/// The result is invariant under how the work was sharded, which is the
/// determinism argument's merge half (property-tested below).
pub(crate) fn merge_steps(parts: Vec<StepOut>) -> StepOut {
    let mut merged = StepOut::default();
    for part in parts {
        merged.outbox.extend(part.outbox);
        merged.effects.extend(part.effects);
        merged.tally.absorb(&part.tally);
    }
    merged.effects.sort_by_key(|(key, _)| *key);
    merged
}

/// Runs the failure-detection step for `members` (global processor ids,
/// ascending): each image neighbour of the victim processes the will.
/// `loc` maps a global id to the caller's dense index.
pub(crate) fn run_detect(
    procs: &mut [Processor],
    loc: impl Fn(usize) -> usize,
    members: &[u32],
    shared: &Shared,
) -> StepOut {
    let mut out = StepOut::default();
    for &id in members {
        let mut ctx = Ctx {
            outbox: &mut out.outbox,
            effects: &mut out.effects,
            tally: &mut out.tally,
            cur: (0, id, 0),
        };
        procs[loc(id as usize)].receive_will(shared, &mut ctx);
    }
    out
}

/// Runs one phase kickoff over every processor in `procs` (a shard's
/// slice, ascending in global id). `global` maps a dense index back to
/// the global id, which stamps the canonical effect keys.
pub(crate) fn run_trigger(
    procs: &mut [Processor],
    global: impl Fn(usize) -> usize,
    phase: Phase,
    shared: &Shared,
) -> StepOut {
    let mut out = StepOut::default();
    for (local, p) in procs.iter_mut().enumerate() {
        let mut ctx = Ctx {
            outbox: &mut out.outbox,
            effects: &mut out.effects,
            tally: &mut out.tally,
            cur: (0, global(local) as u32, 0),
        };
        match phase {
            Phase::Walks => p.start_walks(shared, &mut ctx),
            Phase::Buckets => p.route_buckets(&mut ctx),
            Phase::Merges => p.start_merges(shared, &mut ctx),
        }
    }
    out
}

/// Delivers one round's messages to their destinations in canonical
/// order. The slice handed in is a shard's partition of the round queue;
/// sorting locally is equivalent to sorting globally because handling
/// order only matters per destination processor, and a processor's
/// messages all land in the same shard.
pub(crate) fn run_deliver(
    procs: &mut [Processor],
    loc: impl Fn(usize) -> usize,
    mut msgs: Vec<Message>,
    shared: &Shared,
) -> StepOut {
    msgs.sort_by_key(Message::key);
    let mut out = StepOut::default();
    for msg in msgs {
        let mut ctx = Ctx {
            outbox: &mut out.outbox,
            effects: &mut out.effects,
            tally: &mut out.tally,
            cur: msg.key(),
        };
        procs[loc(msg.dst.index())].handle(msg.payload, shared, &mut ctx);
    }
    out
}

// ---------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------

/// A job sent to one shard worker. Channel FIFO per worker is the only
/// ordering the pool relies on: an `AddProc` always precedes any job that
/// could address the new processor.
pub(crate) enum Job {
    /// A processor joined the network (global id; must belong to this
    /// worker's shard).
    AddProc(u32),
    /// A repair begins: here is the victim's will and derived context.
    Begin(Arc<Shared>),
    /// Read out and clear the victim's virtual nodes (replies `Will`).
    TakeWill(u32),
    /// Failure detection for these member ids (replies `Step`).
    Detect(Vec<u32>),
    /// A phase kickoff over the whole shard (replies `Step`).
    Trigger(Phase),
    /// One round's messages for this shard (replies `Step`).
    Deliver(Vec<Message>),
    /// The repair quiesced: clear per-repair scratch (no reply).
    EndRepair,
    /// Flatten this shard's forest rows (replies `Rows`).
    Snapshot,
    /// Count this shard's live virtual nodes (replies `Count`).
    VnodeCount,
    /// Hand every processor back to the coordinator (replies `Procs`).
    Collect,
}

/// A worker's reply to a coordinator request.
pub(crate) enum Reply {
    Will(Vec<(VKey, VLinks)>),
    Step(StepOut),
    Rows(Vec<SnapshotRow>),
    Count(usize),
    Procs(Vec<Processor>),
}

fn worker_main(
    shard: usize,
    map: ShardMap,
    mut procs: Vec<Processor>,
    jobs: &Receiver<Job>,
    out: &Sender<Reply>,
) {
    let mut shared: Option<Arc<Shared>> = None;
    let loc = |i: usize| map.local_of(i);
    for job in jobs.iter() {
        let reply = match job {
            Job::AddProc(id) => {
                debug_assert_eq!(
                    map.local_of(id as usize),
                    procs.len(),
                    "AddProc out of order"
                );
                procs.push(Processor::new(NodeId::new(id)));
                continue;
            }
            Job::Begin(s) => {
                shared = Some(s);
                continue;
            }
            Job::TakeWill(v) => Reply::Will(take_will_of(&mut procs[map.local_of(v as usize)])),
            Job::Detect(members) => {
                let s = shared.as_ref().expect("Begin precedes Detect");
                Reply::Step(run_detect(&mut procs, loc, &members, s))
            }
            Job::Trigger(phase) => {
                let s = shared.as_ref().expect("Begin precedes Trigger");
                Reply::Step(run_trigger(
                    &mut procs,
                    |local| map.global_of(shard, local),
                    phase,
                    s,
                ))
            }
            Job::Deliver(msgs) => {
                let s = shared.as_ref().expect("Begin precedes Deliver");
                Reply::Step(run_deliver(&mut procs, loc, msgs, s))
            }
            Job::EndRepair => {
                shared = None;
                for p in &mut procs {
                    p.end_repair();
                }
                continue;
            }
            Job::Snapshot => Reply::Rows(snapshot_rows(&procs)),
            Job::VnodeCount => Reply::Count(procs.iter().map(|p| p.vnodes.len()).sum()),
            Job::Collect => Reply::Procs(std::mem::take(&mut procs)),
        };
        if out.send(reply).is_err() {
            break;
        }
    }
}

/// Reads out the victim's will — its virtual nodes' links, in key order —
/// then clears the processor (the victim vanishes). One definition for
/// both execution modes, so what the will captures can never drift
/// between them.
pub(crate) fn take_will_of(p: &mut Processor) -> Vec<(VKey, VLinks)> {
    let links = p
        .vnodes
        .iter()
        .map(|(k, n)| {
            (
                *k,
                VLinks {
                    parent: n.parent,
                    left: n.left,
                    right: n.right,
                },
            )
        })
        .collect();
    p.vnodes.clear();
    p.end_repair();
    links
}

/// Flattens a processor slice into forest rows (unsorted).
pub(crate) fn snapshot_rows(procs: &[Processor]) -> Vec<SnapshotRow> {
    let mut rows = Vec::new();
    for p in procs {
        for (key, n) in p.vnodes.iter() {
            rows.push((*key, n.parent, n.left, n.right, n.leaves, n.height, n.rep));
        }
    }
    rows
}

/// The persistent shard workers behind a `Pool` store.
pub(crate) struct WorkerPool {
    map: ShardMap,
    txs: Vec<Sender<Job>>,
    rxs: Vec<Receiver<Reply>>,
    handles: Vec<JoinHandle<()>>,
    /// Mirror of the total processor count across all shards.
    n_procs: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.map.threads())
            .field("n_procs", &self.n_procs)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    fn spawn(procs: Vec<Processor>, threads: usize) -> Self {
        let map = ShardMap::new(threads);
        let threads = map.threads();
        let n_procs = procs.len();
        let mut shards: Vec<Vec<Processor>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, p) in procs.into_iter().enumerate() {
            shards[map.shard_of(i)].push(p);
        }
        let mut txs = Vec::with_capacity(threads);
        let mut rxs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for (w, shard_procs) in shards.into_iter().enumerate() {
            let (job_tx, job_rx) = channel::<Job>();
            let (reply_tx, reply_rx) = channel::<Reply>();
            let handle = std::thread::Builder::new()
                .name(format!("fg-dist-shard-{w}"))
                .spawn(move || worker_main(w, map, shard_procs, &job_rx, &reply_tx))
                .expect("spawning shard worker");
            txs.push(job_tx);
            rxs.push(reply_rx);
            handles.push(handle);
        }
        WorkerPool {
            map,
            txs,
            rxs,
            handles,
            n_procs,
        }
    }

    fn send(&self, w: usize, job: Job) {
        self.txs[w].send(job).expect("shard worker hung up");
    }

    fn recv(&self, w: usize) -> Reply {
        self.rxs[w].recv().expect("shard worker panicked")
    }

    fn recv_step(&self, w: usize) -> StepOut {
        match self.recv(w) {
            Reply::Step(out) => out,
            _ => unreachable!("worker replied out of protocol"),
        }
    }

    /// Broadcasts a step job to every worker and merges the replies.
    fn fan_step(&self, make: impl Fn() -> Job) -> StepOut {
        for w in 0..self.txs.len() {
            self.send(w, make());
        }
        merge_steps((0..self.rxs.len()).map(|w| self.recv_step(w)).collect())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.txs.clear(); // close the job channels: workers drain and exit
        for handle in self.handles.drain(..) {
            // A worker that panicked already reported on stderr; the pool
            // owner is likely unwinding too, so swallow the join error.
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------
// The store: one surface, two execution modes.
// ---------------------------------------------------------------------

/// Where the per-node actors live and how repair steps execute: inline on
/// the caller's thread (`Local`, thread count 1) or sharded across a
/// persistent worker pool (`Pool`).
#[derive(Debug)]
pub(crate) enum ProcStore {
    Local(Vec<Processor>),
    Pool(WorkerPool),
}

impl ProcStore {
    /// An empty store running `threads` wide (1 ⇒ inline).
    pub(crate) fn new(threads: usize) -> Self {
        Self::from_procs(Vec::new(), threads)
    }

    /// Builds a store over existing processors.
    pub(crate) fn from_procs(procs: Vec<Processor>, threads: usize) -> Self {
        if threads <= 1 {
            ProcStore::Local(procs)
        } else {
            ProcStore::Pool(WorkerPool::spawn(procs, threads))
        }
    }

    /// Tears the store down, returning the processors in global-id order.
    pub(crate) fn into_procs(self) -> Vec<Processor> {
        match self {
            ProcStore::Local(procs) => procs,
            ProcStore::Pool(pool) => {
                for w in 0..pool.txs.len() {
                    pool.send(w, Job::Collect);
                }
                let mut parts: Vec<std::vec::IntoIter<Processor>> = (0..pool.rxs.len())
                    .map(|w| match pool.recv(w) {
                        Reply::Procs(procs) => procs.into_iter(),
                        _ => unreachable!("worker replied out of protocol"),
                    })
                    .collect();
                let mut procs = Vec::with_capacity(pool.n_procs);
                for g in 0..pool.n_procs {
                    let part = &mut parts[pool.map.shard_of(g)];
                    procs.push(part.next().expect("shard undercounted"));
                }
                procs
            }
        }
    }

    /// The execution width (1 for `Local`).
    pub(crate) fn threads(&self) -> usize {
        match self {
            ProcStore::Local(_) => 1,
            ProcStore::Pool(pool) => pool.map.threads(),
        }
    }

    /// Total processors (alive and dead).
    pub(crate) fn len(&self) -> usize {
        match self {
            ProcStore::Local(procs) => procs.len(),
            ProcStore::Pool(pool) => pool.n_procs,
        }
    }

    /// Registers the next processor; `id` must equal [`ProcStore::len`].
    pub(crate) fn add_proc(&mut self, id: NodeId) {
        debug_assert_eq!(id.index(), self.len(), "processor ids are dense");
        match self {
            ProcStore::Local(procs) => procs.push(Processor::new(id)),
            ProcStore::Pool(pool) => {
                pool.send(pool.map.shard_of(id.index()), Job::AddProc(id.raw()));
                pool.n_procs += 1;
            }
        }
    }

    /// Announces a repair's shared context to every executor.
    pub(crate) fn begin(&mut self, shared: &Arc<Shared>) {
        match self {
            ProcStore::Local(_) => {}
            ProcStore::Pool(pool) => {
                for w in 0..pool.txs.len() {
                    pool.send(w, Job::Begin(Arc::clone(shared)));
                }
            }
        }
    }

    /// Reads out and clears the victim's virtual nodes — the raw will.
    pub(crate) fn take_will(&mut self, v: NodeId) -> Vec<(VKey, VLinks)> {
        match self {
            ProcStore::Local(procs) => take_will_of(&mut procs[v.index()]),
            ProcStore::Pool(pool) => {
                let w = pool.map.shard_of(v.index());
                pool.send(w, Job::TakeWill(v.raw()));
                match pool.recv(w) {
                    Reply::Will(links) => links,
                    _ => unreachable!("worker replied out of protocol"),
                }
            }
        }
    }

    /// The failure-detection step over the victim's image neighbours
    /// (`affected` ascending).
    pub(crate) fn detect(&mut self, affected: &[NodeId], shared: &Shared) -> StepOut {
        match self {
            ProcStore::Local(procs) => {
                let members: Vec<u32> = affected.iter().map(|u| u.raw()).collect();
                run_detect(procs, |i| i, &members, shared)
            }
            ProcStore::Pool(pool) => {
                let mut members: Vec<Vec<u32>> = vec![Vec::new(); pool.txs.len()];
                for u in affected {
                    members[pool.map.shard_of(u.index())].push(u.raw());
                }
                let mut busy = Vec::new();
                for (w, ids) in members.into_iter().enumerate() {
                    if !ids.is_empty() {
                        pool.send(w, Job::Detect(ids));
                        busy.push(w);
                    }
                }
                merge_steps(busy.into_iter().map(|w| pool.recv_step(w)).collect())
            }
        }
    }

    /// One phase kickoff over every processor.
    pub(crate) fn trigger(&mut self, phase: Phase, shared: &Shared) -> StepOut {
        match self {
            ProcStore::Local(procs) => run_trigger(procs, |i| i, phase, shared),
            ProcStore::Pool(pool) => pool.fan_step(|| Job::Trigger(phase)),
        }
    }

    /// Delivers one round of messages and returns the next round's seeds.
    pub(crate) fn deliver(&mut self, queue: Vec<Message>, shared: &Shared) -> StepOut {
        match self {
            ProcStore::Local(procs) => run_deliver(procs, |i| i, queue, shared),
            ProcStore::Pool(pool) => {
                let mut per: Vec<Vec<Message>> = vec![Vec::new(); pool.txs.len()];
                for msg in queue {
                    per[pool.map.shard_of(msg.dst.index())].push(msg);
                }
                let mut busy = Vec::new();
                for (w, msgs) in per.into_iter().enumerate() {
                    if !msgs.is_empty() {
                        pool.send(w, Job::Deliver(msgs));
                        busy.push(w);
                    }
                }
                merge_steps(busy.into_iter().map(|w| pool.recv_step(w)).collect())
            }
        }
    }

    /// Clears every processor's per-repair scratch after quiescence.
    pub(crate) fn end_repair(&mut self) {
        match self {
            ProcStore::Local(procs) => {
                for p in procs {
                    p.end_repair();
                }
            }
            ProcStore::Pool(pool) => {
                // Fire-and-forget: per-worker FIFO means the clear lands
                // before any job of the next repair.
                for w in 0..pool.txs.len() {
                    pool.send(w, Job::EndRepair);
                }
            }
        }
    }

    /// Flattens the distributed forest (unsorted rows).
    pub(crate) fn snapshot(&self) -> Vec<SnapshotRow> {
        match self {
            ProcStore::Local(procs) => snapshot_rows(procs),
            ProcStore::Pool(pool) => {
                for w in 0..pool.txs.len() {
                    pool.send(w, Job::Snapshot);
                }
                let mut rows = Vec::new();
                for w in 0..pool.rxs.len() {
                    match pool.recv(w) {
                        Reply::Rows(mut part) => rows.append(&mut part),
                        _ => unreachable!("worker replied out of protocol"),
                    }
                }
                rows
            }
        }
    }

    /// Live virtual nodes across all processors.
    pub(crate) fn vnode_count(&self) -> usize {
        match self {
            ProcStore::Local(procs) => procs.iter().map(|p| p.vnodes.len()).sum(),
            ProcStore::Pool(pool) => {
                for w in 0..pool.txs.len() {
                    pool.send(w, Job::VnodeCount);
                }
                (0..pool.rxs.len())
                    .map(|w| match pool.recv(w) {
                        Reply::Count(c) => c,
                        _ => unreachable!("worker replied out of protocol"),
                    })
                    .sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn edge(key: OrderKey) -> (OrderKey, Effect) {
        (
            key,
            Effect::Edge {
                u: NodeId::new(key.1),
                v: NodeId::new(key.2),
                added: key.0.is_multiple_of(2),
            },
        )
    }

    proptest! {
        /// The shard merge is a permutation-invariant total order: however
        /// a round's effects are partitioned across shards (each shard log
        /// ascending, as the executor guarantees), the merged log is the
        /// one globally sorted sequence.
        #[test]
        fn merge_is_partition_invariant(
            raw in prop::collection::vec((0u8..4, 0u32..50, 0u32..50), 0..60),
            assign in prop::collection::vec(0usize..5, 0..60),
        ) {
            // Distinct keys (the executor's per-sender seq guarantees
            // this); duplicates collapse through a set.
            let mut keys: Vec<OrderKey> = raw;
            keys.sort_unstable();
            keys.dedup();

            // Reference: the single-shard (sequential) log.
            let reference: Vec<(OrderKey, Effect)> =
                keys.iter().copied().map(edge).collect();

            // Partition into up to 5 "shards" by the assignment tape, each
            // kept ascending — exactly what per-shard execution produces.
            let mut shards: Vec<Vec<(OrderKey, Effect)>> = vec![Vec::new(); 5];
            for (i, key) in keys.iter().enumerate() {
                let w = assign.get(i).copied().unwrap_or(0) % 5;
                shards[w].push(edge(*key));
            }
            let parts: Vec<StepOut> = shards
                .into_iter()
                .map(|effects| StepOut {
                    effects,
                    ..StepOut::default()
                })
                .collect();
            let merged = merge_steps(parts);
            prop_assert_eq!(merged.effects, reference);
        }

        /// Tallies merge by summation regardless of the partition.
        #[test]
        fn tallies_sum_across_shards(counts in prop::collection::vec(0u64..100, 1..6)) {
            let parts: Vec<StepOut> = counts
                .iter()
                .map(|&c| {
                    let mut out = StepOut::default();
                    out.tally.helpers_created = c;
                    out.tally.fragments = c as usize;
                    out
                })
                .collect();
            let merged = merge_steps(parts);
            prop_assert_eq!(merged.tally.helpers_created, counts.iter().sum::<u64>());
            prop_assert_eq!(
                merged.tally.fragments,
                counts.iter().map(|&c| c as usize).sum::<usize>()
            );
        }
    }
}

//! Lemma 4 cost accounting for one repair.

use serde::{Deserialize, Serialize};

/// `⌈log₂ n⌉`, floored at 1 — the bit cost of one node name (the shared
/// definition from `fg_core::api`).
pub(crate) use fg_core::api::ceil_log2;

/// What one deletion repair cost the message-passing protocol — the
/// observable quantities of Lemma 4 (Hayes–Saia–Trehan, arXiv:0902.2501):
/// messages `O(d log n)`, rounds `O(log d · log n)`, and `O(log n)`-bit
/// messages, where `d` is the victim's degree in `G'` and `n` the number
/// of nodes ever seen.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairCost {
    /// The victim's `G'` degree at deletion time — the paper's `d`.
    pub victim_degree: usize,
    /// Inter-processor messages sent during the repair.
    pub messages: u64,
    /// Synchronous rounds until the protocol quiesced.
    pub rounds: u32,
    /// Total payload bits across all counted messages.
    pub bits: u64,
    /// The largest single message, in bits (Lemma 4: `O(log n)` names).
    pub max_message_bits: u64,
    /// Nodes ever seen at deletion time — the paper's `n`, used by the
    /// normalized envelopes.
    pub nodes_ever: usize,
}

impl RepairCost {
    /// `messages / (d · ⌈log₂ n⌉)`: flat across `d` and `n` when the
    /// Lemma 4 message envelope holds.
    pub fn normalized_messages(&self) -> f64 {
        let d = self.victim_degree.max(1) as f64;
        self.messages as f64 / (d * ceil_log2(self.nodes_ever) as f64)
    }

    /// `rounds / (⌈log₂ d⌉ · ⌈log₂ n⌉)`: flat when the Lemma 4 round
    /// envelope holds.
    pub fn normalized_rounds(&self) -> f64 {
        let log_d = ceil_log2(self.victim_degree.max(2)) as f64;
        f64::from(self.rounds) / (log_d * ceil_log2(self.nodes_ever) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_definition() {
        assert_eq!(ceil_log2(0), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn normalization_divides_by_envelopes() {
        let cost = RepairCost {
            victim_degree: 16,
            messages: 64 * 5,
            rounds: 20,
            bits: 1000,
            max_message_bits: 40,
            nodes_ever: 32,
        };
        // d·log n = 16·5 = 80; log d · log n = 4·5 = 20.
        assert!((cost.normalized_messages() - 4.0).abs() < 1e-12);
        assert!((cost.normalized_rounds() - 1.0).abs() < 1e-12);
    }
}

//! Behavioural tests for the Forgiving Graph engine: single repairs,
//! cascades, churn, and the paper's invariants after every step.

use fg_core::{EngineError, ForgivingGraph, PlacementPolicy};
use fg_graph::{generators, traversal, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Asserts the full paper contract on the current state: structural
/// invariants, connectivity parity with `G'`, the degree bound and the
/// stretch bound (exact, all pairs — callers keep graphs small).
fn assert_contract(fg: &ForgivingGraph, degree_cap: f64) {
    fg.check_invariants().unwrap();

    // Degree bound (Theorem 1.1).
    let ratio = fg.max_degree_ratio();
    assert!(
        ratio <= degree_cap,
        "degree ratio {ratio} exceeds {degree_cap}"
    );

    // Connectivity parity + stretch bound (Theorem 1.2).
    let bound = fg.stretch_bound();
    let alive: Vec<NodeId> = fg.image().iter().collect();
    for (idx, &x) in alive.iter().enumerate() {
        let ghost_d = traversal::bfs_distances(fg.ghost(), x);
        let image_d = traversal::bfs_distances(fg.image(), x);
        for &y in alive.iter().skip(idx + 1) {
            match (ghost_d[y.index()], image_d[y.index()]) {
                (Some(dg), Some(di)) => {
                    assert!(
                        di <= bound * dg.max(1),
                        "stretch broken: dist_G({x},{y}) = {di}, dist_G'({x},{y}) = {dg}, bound {bound}"
                    );
                }
                (Some(_), None) => panic!("{x} and {y} connected in G' but not in G"),
                (None, Some(_)) => panic!("{x} and {y} connected in G but not in G'"),
                (None, None) => {}
            }
        }
    }
}

#[test]
fn star_hub_deletion_builds_one_haft() {
    let mut fg = ForgivingGraph::from_graph(&generators::star(9)).unwrap();
    let report = fg.delete(n(0)).unwrap();
    assert_eq!(report.ghost_degree, 8);
    assert_eq!(report.alive_neighbors, 8);
    assert_eq!(report.fragments, 8);
    assert_eq!(report.rt_leaves, 8);
    assert_eq!(report.rt_depth, 3, "haft(8) is a complete tree of depth 3");
    assert_eq!(report.leaves_created, 8);
    // The bottom-up BT_v merge creates transient spine connectors that the
    // next round strips again (Lemma 3.2's transient second helper); the
    // *net* helper count of haft(8) is exactly 7.
    assert_eq!(report.helpers_created - report.helpers_freed, 7);
    assert_eq!(fg.alive_count(), 8);
    assert_contract(&fg, 3.0);
}

#[test]
fn path_middle_deletion_bridges_neighbours() {
    let mut fg = ForgivingGraph::from_graph(&generators::path(5)).unwrap();
    let report = fg.delete(n(2)).unwrap();
    assert_eq!(report.rt_leaves, 2);
    assert_eq!(report.rt_depth, 1);
    // The two neighbours of the victim are now bridged through one helper;
    // in the image that is a direct edge (the helper collapses onto one).
    assert!(traversal::is_connected(fg.image()));
    assert_eq!(traversal::distance(fg.image(), n(1), n(3)), Some(1));
    assert_contract(&fg, 3.0);
}

#[test]
fn leaf_deletion_needs_no_helpers() {
    let mut fg = ForgivingGraph::from_graph(&generators::path(4)).unwrap();
    let report = fg.delete(n(0)).unwrap();
    assert_eq!(report.rt_leaves, 1, "single neighbour → trivial RT");
    assert_eq!(report.helpers_created, 0);
    assert_contract(&fg, 3.0);
}

#[test]
fn deleting_two_adjacent_hubs_merges_their_trees() {
    // Two stars sharing an edge between their hubs.
    let mut g = Graph::with_nodes(2);
    g.add_edge(n(0), n(1)).unwrap();
    for hub in [0u32, 1] {
        for _ in 0..4 {
            let leaf = g.add_node();
            g.add_edge(n(hub), leaf).unwrap();
        }
    }
    let mut fg = ForgivingGraph::from_graph(&g).unwrap();
    let _ = fg.delete(n(0)).unwrap();
    assert_contract(&fg, 3.0);
    let report = fg.delete(n(1)).unwrap();
    // The second deletion removes n1's leaf from RT(n0) and merges that
    // tree with n1's own neighbours: one RT over all 8 leaves.
    assert_eq!(report.rt_leaves, 8);
    assert_eq!(fg.rt_shapes(), vec![(8, 3)]);
    assert_contract(&fg, 3.0);
}

#[test]
fn cascade_delete_entire_graph() {
    // 4.0 is this implementation's hard per-slot envelope (leaf-parent +
    // helper-parent + two helper children); see DESIGN.md §2 and E1 for
    // why the conference paper's literal mechanism cannot guarantee 3.
    for (name, g) in [
        ("path", generators::path(12)),
        ("cycle", generators::cycle(12)),
        ("star", generators::star(12)),
        ("complete", generators::complete(8)),
        ("grid", generators::grid(4, 3)),
        ("tree", generators::binary_tree(12)),
    ] {
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        let total = g.node_count() as u32;
        for v in 0..total {
            let _ = fg.delete(n(v)).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_contract(&fg, 4.0);
        }
        assert_eq!(fg.alive_count(), 0, "{name}");
        assert_eq!(fg.forest_len(), 0, "{name}: forest must drain");
    }
}

#[test]
fn reverse_cascade_on_star_keeps_invariants() {
    // Deleting leaves first shrinks RTs instead of growing them.
    let mut fg = ForgivingGraph::from_graph(&generators::star(10)).unwrap();
    let _ = fg.delete(n(0)).unwrap(); // hub first: big RT
    for v in 1..10 {
        let _ = fg.delete(n(v)).unwrap();
        assert_contract(&fg, 3.0);
    }
    assert_eq!(fg.forest_len(), 0);
}

#[test]
fn insertions_then_deletions_interleaved() {
    let mut fg = ForgivingGraph::from_graph(&generators::cycle(6)).unwrap();
    // Insert a node attached across the cycle, then kill its anchors.
    let v = fg.insert(&[n(0), n(3)]).unwrap();
    assert_eq!(v, n(6));
    assert_eq!(fg.ghost().degree(v), 2);
    let _ = fg.delete(n(0)).unwrap();
    assert_contract(&fg, 3.0);
    let _ = fg.delete(n(3)).unwrap();
    assert_contract(&fg, 3.0);
    // The inserted node must stay connected through reconstruction trees.
    assert!(traversal::is_connected(fg.image()));
    // Insert attached to a node whose neighbourhood is fully healed.
    let w = fg.insert(&[v, n(1)]).unwrap();
    let _ = fg.delete(v).unwrap();
    assert_contract(&fg, 3.0);
    assert!(fg.is_alive(w));
}

#[test]
fn insert_errors() {
    let mut fg = ForgivingGraph::from_graph(&generators::path(3)).unwrap();
    assert_eq!(fg.insert(&[]), Err(EngineError::EmptyNeighbourhood));
    assert_eq!(
        fg.insert(&[n(1), n(1)]),
        Err(EngineError::DuplicateNeighbour(n(1)))
    );
    assert_eq!(fg.insert(&[n(9)]), Err(EngineError::NotAlive(n(9))));
    let _ = fg.delete(n(2)).unwrap();
    assert_eq!(fg.insert(&[n(2)]), Err(EngineError::NotAlive(n(2))));
}

#[test]
fn delete_errors() {
    let mut fg = ForgivingGraph::from_graph(&generators::path(3)).unwrap();
    assert_eq!(fg.delete(n(7)), Err(EngineError::NotAlive(n(7))));
    let _ = fg.delete(n(1)).unwrap();
    assert_eq!(fg.delete(n(1)), Err(EngineError::NotAlive(n(1))));
}

#[test]
fn deletion_reports_are_plausible_on_random_graph() {
    let g = generators::connected_erdos_renyi(40, 0.1, 3);
    let mut fg = ForgivingGraph::from_graph(&g).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    for _ in 0..20 {
        let alive: Vec<NodeId> = fg.image().iter().collect();
        let v = alive[rng.gen_range(0..alive.len())];
        let d = fg.ghost().degree(v);
        let report = fg.delete(v).unwrap();
        assert_eq!(report.ghost_degree, d);
        // The merged RT's leaves are (alive, dead) edge endpoints: at least
        // one per surviving neighbour, at most the whole forest.
        assert!(report.rt_leaves as usize >= report.alive_neighbors.min(1));
        assert!(report.rt_leaves as usize <= fg.forest_len());
        // Churn envelope: O(d log n) with a generous constant.
        let n_ever = fg.nodes_ever() as f64;
        let envelope = 8.0 * (d.max(2) as f64) * n_ever.log2().ceil();
        assert!(
            (report.churn() as f64) <= envelope,
            "churn {} exceeds envelope {envelope} for d = {d}",
            report.churn()
        );
        assert_contract(&fg, 4.0);
    }
}

#[test]
fn random_churn_mixed_inserts_and_deletes() {
    let mut fg = ForgivingGraph::from_graph(&generators::cycle(8)).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for step in 0..60 {
        let alive: Vec<NodeId> = fg.image().iter().collect();
        if alive.len() > 2 && rng.gen_bool(0.55) {
            let v = alive[rng.gen_range(0..alive.len())];
            let _ = fg.delete(v).unwrap();
        } else {
            let k = rng.gen_range(1..=3.min(alive.len()));
            let mut nbrs = alive.clone();
            nbrs.shuffle(&mut rng);
            nbrs.truncate(k);
            fg.insert(&nbrs).unwrap();
        }
        if step % 5 == 0 {
            assert_contract(&fg, 3.0);
        }
    }
    assert_contract(&fg, 3.0);
}

#[test]
fn paper_exact_policy_stays_within_hard_envelope() {
    // The conference pseudocode can cost a 4th neighbour per slot; the
    // engine's hard invariant (checked in check_invariants) is 4·d.
    // Measure what it actually does on a hub cascade.
    let mut fg =
        ForgivingGraph::from_graph_with_policy(&generators::star(17), PlacementPolicy::PaperExact)
            .unwrap();
    let _ = fg.delete(n(0)).unwrap();
    fg.check_invariants().unwrap();
    let ratio = fg.max_degree_ratio();
    assert!(ratio <= 4.0, "hard envelope: {ratio}");
    assert!(traversal::is_connected(fg.image()));
}

#[test]
fn adjacent_policy_degree_thresholds() {
    // Under the Adjacent policy, a join is "collapsing" whenever one side
    // has ≤ 2 leaves; the first non-collapsing join pairs two 4-leaf
    // trees, and its simulator only pays a 4th neighbour if that 8-leaf
    // tree later gains a parent. Hence: ≤ 3 up to 8 surviving neighbours,
    // ≤ 4 beyond — exactly what E1 quantifies.
    for (size, cap) in [
        (3usize, 3.0),
        (5, 3.0),
        (9, 3.0),
        (16, 4.0),
        (33, 4.0),
        (64, 4.0),
    ] {
        let mut fg = ForgivingGraph::from_graph(&generators::star(size)).unwrap();
        let _ = fg.delete(n(0)).unwrap();
        let ratio = fg.max_degree_ratio();
        assert!(
            ratio <= cap,
            "star({size}): adjacent policy ratio {ratio} > {cap}"
        );
    }
    // The threshold is real: star(16) does produce a factor-4 node under
    // the paper-exact policy too, which is the E1 finding.
    let mut fg =
        ForgivingGraph::from_graph_with_policy(&generators::star(16), PlacementPolicy::PaperExact)
            .unwrap();
    let _ = fg.delete(n(0)).unwrap();
    assert!(fg.max_degree_ratio() > 3.0);
}

#[test]
fn rt_depth_obeys_lemma_1() {
    // Deleting the hub of star(d+1) yields haft(d): depth ⌈log₂ d⌉.
    for d in [1usize, 2, 3, 5, 8, 13, 21, 34, 64, 100] {
        let mut fg = ForgivingGraph::from_graph(&generators::star(d + 1)).unwrap();
        let report = fg.delete(n(0)).unwrap();
        let expect = (usize::BITS - (d - 1).max(1).leading_zeros()).min(32);
        let expect = if d == 1 { 0 } else { expect };
        assert_eq!(report.rt_depth, expect, "d = {d}");
    }
}

#[test]
fn determinism_same_events_same_state() {
    let build = || {
        let mut fg = ForgivingGraph::from_graph(&generators::grid(4, 4)).unwrap();
        let _ = fg.delete(n(5)).unwrap();
        fg.insert(&[n(0), n(15)]).unwrap();
        let _ = fg.delete(n(10)).unwrap();
        let _ = fg.delete(n(6)).unwrap();
        fg
    };
    let a = build();
    let b = build();
    assert_eq!(a, b, "engine must be fully deterministic");
}

#[test]
fn ghost_is_append_only() {
    let mut fg = ForgivingGraph::from_graph(&generators::path(4)).unwrap();
    let ghost_edges_before = fg.ghost().edge_count();
    let _ = fg.delete(n(1)).unwrap();
    assert_eq!(fg.ghost().edge_count(), ghost_edges_before);
    assert_eq!(fg.ghost().degree(n(1)), 2, "G' never forgets");
    assert!(fg.ghost().contains(n(1)), "ghost keeps deleted nodes");
    assert!(!fg.is_alive(n(1)));
}

#[test]
fn isolated_node_deletion_is_a_noop_repair() {
    let mut g = generators::path(3);
    let isolated = g.add_node();
    let mut fg = ForgivingGraph::from_graph(&g).unwrap();
    let report = fg.delete(isolated).unwrap();
    assert_eq!(report.ghost_degree, 0);
    assert_eq!(report.rt_leaves, 0);
    assert_eq!(report.churn(), 0);
    fg.check_invariants().unwrap();
}

#[test]
fn multiplicity_view_matches_simple_view() {
    let mut fg = ForgivingGraph::from_graph(&generators::star(6)).unwrap();
    let _ = fg.delete(n(0)).unwrap();
    for u in fg.image().iter() {
        let simple = fg.image().degree(u) as u32;
        let multi = fg.multi_degree(u);
        assert!(multi >= simple);
        for w in fg.image().neighbors(u) {
            assert!(fg.multiplicity(u, w) >= 1);
        }
    }
}

#[test]
fn stretch_bound_grows_with_nodes_ever() {
    let mut fg = ForgivingGraph::from_graph(&generators::path(2)).unwrap();
    assert_eq!(fg.stretch_bound(), 1);
    for _ in 0..14 {
        let alive: Vec<NodeId> = fg.image().iter().collect();
        fg.insert(&alive[..1.min(alive.len())]).unwrap();
    }
    assert_eq!(fg.nodes_ever(), 16);
    assert_eq!(fg.stretch_bound(), 4);
}

/// Drives `steps` of seeded mixed churn (balanced, so the population —
/// and with it the forest — stays large while tombstones accumulate)
/// and returns the repair digests.
fn churn_digests(fg: &mut ForgivingGraph, steps: usize, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut digests = Vec::new();
    for _ in 0..steps {
        let alive: Vec<NodeId> = fg.image().iter().collect();
        if alive.len() > 2 && rng.gen_bool(0.5) {
            let v = alive[rng.gen_range(0..alive.len())];
            digests.push(fg.delete(v).unwrap().digest());
        } else {
            let k = rng.gen_range(1..=3.min(alive.len()));
            let mut nbrs = alive.clone();
            nbrs.shuffle(&mut rng);
            nbrs.truncate(k);
            fg.insert(&nbrs).unwrap();
        }
    }
    digests
}

#[test]
fn compaction_changes_layout_but_never_behaviour() {
    use fg_core::CompactionPolicy;

    let g = generators::barabasi_albert(256, 2, 11);
    let mut plain = ForgivingGraph::from_graph(&g).unwrap();
    let mut compacted = ForgivingGraph::from_graph(&g).unwrap();
    compacted.set_compaction(Some(CompactionPolicy::default()));

    let da = churn_digests(&mut plain, 2000, 4242);
    let db = churn_digests(&mut compacted, 2000, 4242);
    assert_eq!(da, db, "repair digests must be bit-identical");
    assert_eq!(plain, compacted, "logical state must be identical");
    plain.check_invariants().unwrap();
    compacted.check_invariants().unwrap();

    // Compaction actually happened, and kept the arena dense. The arena
    // is large enough that the min_slots floor is not what's keeping the
    // density up.
    assert!(compacted.stats().arena_slots >= 64);
    assert!(compacted.stats().compactions > 0);
    assert!(plain.stats().compactions == 0);
    assert!(
        compacted.stats().arena_density() > 0.5,
        "post-churn live/ever slot ratio {:.3} must exceed the threshold",
        compacted.stats().arena_density()
    );
    assert!(
        plain.stats().arena_density() < compacted.stats().arena_density(),
        "without compaction the arena only decays"
    );

    // Identical answers too, not just identical state.
    use fg_core::{QueryOps, SelfHealer};
    let (va, vb) = (plain.view(), compacted.view());
    for u in plain.image().iter().take(16) {
        for w in plain.image().iter().take(16) {
            assert_eq!(va.distance(u, w), vb.distance(u, w));
        }
    }
}

#[test]
fn profiling_accounts_phase_time_only_when_enabled() {
    let mut fg = ForgivingGraph::from_graph(&generators::barabasi_albert(64, 2, 3)).unwrap();
    assert_eq!(fg.phase_times(), None, "off by default");
    churn_digests(&mut fg, 50, 9);
    assert_eq!(fg.phase_times(), None);

    fg.enable_profiling();
    let digests = churn_digests(&mut fg, 50, 10);
    let times = fg.phase_times().expect("profiling is on");
    assert!(!digests.is_empty());
    assert!(
        times.gather + times.strip + times.plan + times.merge > 0.0,
        "deletions must land in the delete phases"
    );
    assert!(times.insert >= 0.0);
    assert_eq!(times.total(), {
        times.insert + times.gather + times.strip + times.plan + times.merge
    });

    // Profiling is telemetry: it never affects logical equality.
    let mut twin = ForgivingGraph::from_graph(&generators::barabasi_albert(64, 2, 3)).unwrap();
    churn_digests(&mut twin, 50, 9);
    churn_digests(&mut twin, 50, 10);
    assert_eq!(fg, twin);
}

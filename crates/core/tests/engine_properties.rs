//! Property-based tests: the paper's guarantees must hold for *arbitrary*
//! adversarial event sequences, not just the hand-picked scenarios.

use fg_core::{ForgivingGraph, PlacementPolicy};
use fg_graph::{generators, traversal, NodeId};
use proptest::prelude::*;

/// A compressed adversarial schedule: each step either deletes the live
/// node at `index % alive` or inserts a node attached to `1 + (fan %
/// alive)` live nodes starting at a rotating offset. This makes arbitrary
/// `u8` vectors decode into valid event sequences (shrinkable by
/// proptest).
#[derive(Debug, Clone)]
struct Schedule(Vec<u8>);

fn run_schedule(
    seed_graph: fg_graph::Graph,
    schedule: &Schedule,
    policy: PlacementPolicy,
    check_every: usize,
) -> ForgivingGraph {
    let mut fg = ForgivingGraph::from_graph_with_policy(&seed_graph, policy).unwrap();
    for (step, &byte) in schedule.0.iter().enumerate() {
        let alive: Vec<NodeId> = fg.image().iter().collect();
        if alive.len() <= 2 {
            break;
        }
        if byte & 1 == 0 {
            let victim = alive[(byte as usize / 2) % alive.len()];
            let _ = fg.delete(victim).unwrap();
        } else {
            let fan = 1 + (byte as usize / 2) % 3.min(alive.len());
            let start = (byte as usize) % alive.len();
            let nbrs: Vec<NodeId> = (0..fan).map(|i| alive[(start + i) % alive.len()]).collect();
            fg.insert(&nbrs).unwrap();
        }
        if step % check_every == 0 {
            fg.check_invariants().unwrap();
        }
    }
    fg.check_invariants().unwrap();
    fg
}

/// Exhaustive stretch check against the bound `⌈log₂ n⌉` (Theorem 1.2).
fn assert_stretch_and_connectivity(fg: &ForgivingGraph) {
    let bound = fg.stretch_bound();
    let alive: Vec<NodeId> = fg.image().iter().collect();
    for &x in alive.iter().take(12) {
        let dg = traversal::bfs_distances(fg.ghost(), x);
        let di = traversal::bfs_distances(fg.image(), x);
        for &y in &alive {
            match (dg[y.index()], di[y.index()]) {
                (Some(a), Some(b)) => {
                    assert!(b <= bound * a.max(1), "stretch violated: {b} > {bound}·{a}")
                }
                (Some(_), None) => panic!("image lost connectivity"),
                (None, Some(_)) => panic!("image gained phantom connectivity"),
                (None, None) => {}
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1 (all parts) on random churn over a random connected graph.
    #[test]
    fn contract_holds_on_random_churn(
        seed in 0u64..500,
        bytes in prop::collection::vec(any::<u8>(), 1..60),
    ) {
        let g = generators::connected_erdos_renyi(24, 0.08, seed);
        let fg = run_schedule(g, &Schedule(bytes), PlacementPolicy::Adjacent, 7);
        prop_assert!(fg.max_degree_ratio() <= 4.0);
        assert_stretch_and_connectivity(&fg);
    }

    /// Same contract under the paper-exact placement policy.
    #[test]
    fn contract_holds_under_paper_exact_policy(
        seed in 0u64..200,
        bytes in prop::collection::vec(any::<u8>(), 1..40),
    ) {
        let g = generators::connected_erdos_renyi(18, 0.1, seed);
        let fg = run_schedule(g, &Schedule(bytes), PlacementPolicy::PaperExact, 9);
        prop_assert!(fg.max_degree_ratio() <= 4.0);
        assert_stretch_and_connectivity(&fg);
    }

    /// Delete-only sequences on assorted topologies drain cleanly.
    #[test]
    fn full_cascades_drain_the_forest(
        seed in 0u64..300,
        shape in 0usize..5,
    ) {
        let g = match shape {
            0 => generators::path(14),
            1 => generators::star(14),
            2 => generators::random_tree(14, seed),
            3 => generators::connected_erdos_renyi(14, 0.15, seed),
            _ => generators::barabasi_albert(14, 2, seed),
        };
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        // Delete in a seed-dependent order.
        let mut order: Vec<u32> = (0..14).collect();
        let rot = (seed as usize) % 14;
        order.rotate_left(rot);
        for v in order {
            let _ = fg.delete(NodeId::new(v)).unwrap();
            fg.check_invariants().unwrap();
        }
        prop_assert_eq!(fg.alive_count(), 0);
        prop_assert_eq!(fg.forest_len(), 0);
    }

    /// The healed image never exceeds the virtual-forest edge budget:
    /// `m_image ≤ m_intact + forest edge count`, and the forest obeys the
    /// helper-per-slot limit so total edges stay linear in `|G'|`.
    #[test]
    fn edge_budget_stays_linear(
        seed in 0u64..300,
        bytes in prop::collection::vec(any::<u8>(), 1..50),
    ) {
        let g = generators::connected_erdos_renyi(20, 0.1, seed);
        let fg = run_schedule(g, &Schedule(bytes), PlacementPolicy::Adjacent, 11);
        let ghost_edges = fg.ghost().edge_count();
        // Leaves ≤ 2·|E(G')| and helpers < leaves, each helper adds ≤ 2
        // tree edges: image edges ≤ intact + 2·(leaves − #trees).
        prop_assert!(fg.image().edge_count() <= ghost_edges + 2 * fg.forest_len());
    }

    /// Arena discipline under churn (DESIGN.md §7): forest slots are
    /// appended and tombstoned, never compacted or reused — the slot
    /// count is monotone and a surviving virtual node's arena slot is
    /// stable across every unrelated event.
    #[test]
    fn forest_arena_slots_are_stable_and_monotone(
        seed in 0u64..300,
        bytes in prop::collection::vec(any::<u8>(), 1..60),
    ) {
        let g = generators::connected_erdos_renyi(16, 0.15, seed);
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        let mut slots_ever = fg.forest().slots_ever();
        for &byte in &bytes {
            let alive: Vec<NodeId> = fg.image().iter().collect();
            if alive.len() <= 2 {
                break;
            }
            let before: Vec<(fg_core::VKey, u32)> = fg
                .forest()
                .iter()
                .map(|(k, _)| (k, fg.forest().slot_of(k).expect("living key has a slot")))
                .collect();
            if byte & 1 == 0 {
                let victim = alive[(byte as usize / 2) % alive.len()];
                let _ = fg.delete(victim).unwrap();
            } else {
                let nbr = alive[(byte as usize / 2) % alive.len()];
                fg.insert(&[nbr]).unwrap();
            }
            prop_assert!(
                fg.forest().slots_ever() >= slots_ever,
                "arena shrank: {} -> {}", slots_ever, fg.forest().slots_ever()
            );
            slots_ever = fg.forest().slots_ever();
            // A key alive on both sides of the event either kept its slot
            // (the node survived untouched) or was freed and re-created at
            // a strictly larger slot (e.g. a helper stripped and re-made
            // in the same repair). Allocation is append-only, so a smaller
            // slot would mean compaction or reuse — both forbidden.
            for (key, slot) in before {
                if let Some(now) = fg.forest().slot_of(key) {
                    prop_assert!(
                        now >= slot,
                        "slot of {} moved backwards: {} -> {}", key, slot, now
                    );
                }
            }
        }
    }

    /// RT depths never exceed ⌈log₂(leaf count)⌉ (Lemma 1.3 carried
    /// through every merge the engine ever performs).
    #[test]
    fn rt_depths_stay_logarithmic(
        seed in 0u64..300,
        bytes in prop::collection::vec(any::<u8>(), 1..60),
    ) {
        let g = generators::barabasi_albert(20, 2, seed);
        let fg = run_schedule(g, &Schedule(bytes), PlacementPolicy::Adjacent, 13);
        for (leaves, depth) in fg.rt_shapes() {
            let expect = if leaves <= 1 { 0 } else { 32 - (leaves - 1).leading_zeros() };
            prop_assert!(depth <= expect, "RT with {leaves} leaves has depth {depth}");
        }
    }
}

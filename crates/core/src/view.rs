//! Read-side snapshots: [`GraphView`], the epoch-stamped window onto a
//! healer's image and ghost graphs.
//!
//! The Forgiving Graph exists to *serve queries* while under attack —
//! "how far is `u` from `v` right now?" — yet writes (insert, delete,
//! repair) and reads live on very different paths. [`GraphView`] is the
//! read side's foundation: a cheap, read-only, **epoch-stamped** view of
//! a healer's state, obtained from any [`SelfHealer`] via
//! [`SelfHealer::view`]. The sequential engine, the distributed protocol
//! (whose views are materialized at round barriers — see
//! `fg_dist::Network::view`) and every baseline healer all produce them
//! through the same façade.
//!
//! The **epoch** is a structural state stamp derived from the two graphs
//! themselves: `nodes_ever + deletions_ever` (each insert grows
//! `nodes_ever` by one, each delete grows the tombstone count by one),
//! so it advances by exactly one per adversarial event and never
//! repeats. Two views of the same healer with equal epochs are views of
//! identical state; query caches ([`crate::query::QueryCache`]) use the
//! stamp to detect writes they were not told about and fall back to a
//! full flush instead of serving stale answers.
//!
//! [`SelfHealer`]: crate::SelfHealer
//! [`SelfHealer::view`]: crate::SelfHealer::view

use fg_graph::traversal::{self, DistanceVec};
use fg_graph::{FrozenCsr, Graph, NodeId};

/// The structural epoch of an (image, ghost) pair:
/// `nodes_ever + deletions_ever`.
///
/// Monotone, and advances by exactly one per adversarial event: an
/// insertion grows `ghost.nodes_ever()` by one (deletions unchanged), a
/// deletion tombstones one image node (`nodes_ever` unchanged). The
/// sequential engine and the distributed protocol hold bit-identical
/// graphs, so their epochs agree at every point of every trace.
pub fn epoch_of(image: &Graph, ghost: &Graph) -> u64 {
    let ever = ghost.nodes_ever() as u64;
    let dead = ever.saturating_sub(image.node_count() as u64);
    ever + dead
}

/// A stable, cheap, epoch-stamped read-only view of a self-healing
/// network: the healed image `G`, the remembered ideal graph `G'`
/// (insert-only ghost), and the epoch the snapshot was taken at.
///
/// All read operations — [`distance`], [`path`], [`stretch`],
/// [`neighbors`], [`degree`], [`same_component`] — are provided by the
/// [`QueryOps`] extension trait, blanket-implemented for every
/// `GraphView`.
///
/// [`distance`]: crate::query::QueryOps::distance
/// [`path`]: crate::query::QueryOps::path
/// [`stretch`]: crate::query::QueryOps::stretch
/// [`neighbors`]: crate::query::QueryOps::neighbors
/// [`degree`]: crate::query::QueryOps::degree
/// [`same_component`]: crate::query::QueryOps::same_component
/// [`QueryOps`]: crate::query::QueryOps
pub trait GraphView {
    /// The healed network `G` as of this view's epoch.
    fn image(&self) -> &Graph;

    /// The remembered ideal graph `G'` (everything ever inserted,
    /// deletions ignored) as of this view's epoch.
    fn ghost(&self) -> &Graph;

    /// The structural state stamp this view was taken at (see
    /// [`epoch_of`]).
    fn epoch(&self) -> u64;

    /// Publishes this view as an immutable, owned [`FrozenView`]: both
    /// graphs are copied into [`FrozenCsr`] layout (contiguous
    /// offsets+targets over dense live ids) under the same epoch stamp.
    ///
    /// Freezing costs one `O(live + edges)` pass per side and is meant
    /// to be amortized over a whole read epoch — publish once per write
    /// batch, serve every read in between from the frozen arrays (see
    /// DESIGN.md §12).
    fn freeze(&self) -> FrozenView
    where
        Self: Sized,
    {
        FrozenView {
            image: FrozenCsr::from_graph(self.image()),
            ghost: FrozenCsr::from_graph(self.ghost()),
            epoch: self.epoch(),
        }
    }
}

/// One graph side a query can run against — the live [`Graph`] or a
/// [`FrozenCsr`] snapshot of it. Everything [`QueryCache`] needs to
/// build, repair and walk landmark vectors, expressed so the frozen
/// side can answer from its dense CSR kernels while the live side keeps
/// using [`fg_graph::traversal`].
///
/// Both implementations iterate neighbors in ascending id order and
/// produce identical [`DistanceVec`]s for the same structure, which is
/// what keeps cached answers bit-identical across the two layouts (the
/// query differential suite asserts this along every trace).
///
/// [`QueryCache`]: crate::query::QueryCache
pub trait QuerySide {
    /// Whether `v` is live on this side.
    fn contains(&self, v: NodeId) -> bool;

    /// Full single-source BFS from `src`, indexed by
    /// [`NodeId::index`] over the full `nodes_ever` universe.
    fn distances_from(&self, src: NodeId) -> DistanceVec;

    /// Calls `f` for each of `v`'s neighbors in ascending id order.
    fn for_neighbors(&self, v: NodeId, f: impl FnMut(NodeId));

    /// The first neighbor of `v` (ascending) satisfying `pred`.
    fn find_neighbor(&self, v: NodeId, pred: impl FnMut(NodeId) -> bool) -> Option<NodeId>;
}

impl QuerySide for Graph {
    fn contains(&self, v: NodeId) -> bool {
        Graph::contains(self, v)
    }

    fn distances_from(&self, src: NodeId) -> DistanceVec {
        traversal::bfs_distances(self, src)
    }

    fn for_neighbors(&self, v: NodeId, mut f: impl FnMut(NodeId)) {
        for w in self.neighbors(v) {
            f(w);
        }
    }

    fn find_neighbor(&self, v: NodeId, mut pred: impl FnMut(NodeId) -> bool) -> Option<NodeId> {
        self.neighbors(v).find(|&w| pred(w))
    }
}

impl QuerySide for FrozenCsr {
    fn contains(&self, v: NodeId) -> bool {
        FrozenCsr::contains(self, v)
    }

    fn distances_from(&self, src: NodeId) -> DistanceVec {
        self.bfs_distances(src)
    }

    fn for_neighbors(&self, v: NodeId, mut f: impl FnMut(NodeId)) {
        for w in self.neighbors(v) {
            f(w);
        }
    }

    fn find_neighbor(&self, v: NodeId, mut pred: impl FnMut(NodeId) -> bool) -> Option<NodeId> {
        self.neighbors(v).find(|&w| pred(w))
    }
}

/// Anything a [`QueryCache`](crate::query::QueryCache) can serve from:
/// an epoch stamp plus an image and a ghost [`QuerySide`]. Blanket-
/// implemented for every [`GraphView`] (sides are the live graphs) and
/// implemented for [`FrozenView`] (sides are the CSR snapshots), so the
/// same cache code — same landmark policy, same invalidation rules,
/// same statistics — runs against either layout.
pub trait QuerySource {
    /// The graph representation queries run against.
    type Side: QuerySide;

    /// The structural state stamp (see [`epoch_of`]). Named apart from
    /// [`GraphView::epoch`] so the blanket impl below never makes
    /// `view.epoch()` ambiguous at existing call sites.
    fn source_epoch(&self) -> u64;

    /// The healed image side.
    fn image_side(&self) -> &Self::Side;

    /// The insert-only ghost side.
    fn ghost_side(&self) -> &Self::Side;
}

impl<T: GraphView + ?Sized> QuerySource for T {
    type Side = Graph;

    fn source_epoch(&self) -> u64 {
        GraphView::epoch(self)
    }

    fn image_side(&self) -> &Graph {
        self.image()
    }

    fn ghost_side(&self) -> &Graph {
        self.ghost()
    }
}

/// An owned, immutable, epoch-stamped snapshot of a healer's state in
/// [`FrozenCsr`] layout — the publication unit of the freeze-and-query
/// idiom: a writer publishes one `FrozenView` per epoch, readers pin it
/// and answer every query from contiguous arrays without borrowing the
/// healer.
///
/// `FrozenView` answers the full [`QueryOps`](crate::query::QueryOps)
/// surface through inherent methods (it deliberately does *not*
/// implement [`GraphView`] — there are no live `Graph`s behind it), and
/// serves as a [`QuerySource`] for
/// [`QueryCache`](crate::query::QueryCache), whose landmark vectors
/// then rebuild
/// against the CSR kernels. Answers are bit-identical to the live-view
/// path at the same epoch.
///
/// # Examples
///
/// ```
/// use fg_core::view::GraphView;
/// use fg_core::query::QueryOps;
/// use fg_core::{ForgivingGraph, SelfHealer};
/// use fg_graph::{generators, NodeId};
///
/// let mut fg = ForgivingGraph::from_graph(&generators::cycle(8))?;
/// fg.delete(NodeId::new(3))?;
/// let frozen = fg.view().freeze();
/// let (u, v) = (NodeId::new(2), NodeId::new(4));
/// assert_eq!(frozen.epoch(), fg.view().epoch());
/// assert_eq!(frozen.distance(u, v), fg.view().distance(u, v));
/// assert_eq!(frozen.stretch(u, v), fg.view().stretch(u, v));
/// # Ok::<(), fg_core::EngineError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenView {
    image: FrozenCsr,
    ghost: FrozenCsr,
    epoch: u64,
}

impl FrozenView {
    /// The epoch the snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen healed image `G`.
    pub fn image(&self) -> &FrozenCsr {
        &self.image
    }

    /// The frozen ideal graph `G'`.
    pub fn ghost(&self) -> &FrozenCsr {
        &self.ghost
    }

    /// Whether `u` was live in the image at this epoch.
    pub fn alive(&self, u: NodeId) -> bool {
        self.image.contains(u)
    }

    /// `u`'s image degree; `None` when `u` is not live. Mirrors
    /// [`QueryOps::degree`](crate::query::QueryOps::degree).
    pub fn degree(&self, u: NodeId) -> Option<usize> {
        self.image.degree(u)
    }

    /// `u`'s image neighbors in increasing id order (empty when dead).
    pub fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        self.image.neighbors(u).collect()
    }

    /// Exact shortest-path hops in the image, by the dense bidirectional
    /// kernel. Mirrors [`QueryOps::distance`](crate::query::QueryOps::distance).
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        self.image.bidirectional_distance(u, v)
    }

    /// A shortest image path, node-identical to the live kernel's.
    /// Mirrors [`QueryOps::path`](crate::query::QueryOps::path).
    pub fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        self.image.shortest_path(u, v)
    }

    /// Whether `u` and `v` are live and mutually reachable in the image.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.distance(u, v).is_some()
    }

    /// The pair's network stretch, per
    /// [`stretch_ratio`](crate::query::stretch_ratio). Mirrors
    /// [`QueryOps::stretch`](crate::query::QueryOps::stretch).
    pub fn stretch(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if !self.alive(u) || !self.alive(v) {
            return None;
        }
        let ghost = self.ghost.bidirectional_distance(u, v);
        let image = self.image.bidirectional_distance(u, v);
        crate::query::stretch_ratio(ghost, image)
    }
}

impl QuerySource for FrozenView {
    type Side = FrozenCsr;

    fn source_epoch(&self) -> u64 {
        self.epoch
    }

    fn image_side(&self) -> &FrozenCsr {
        &self.image
    }

    fn ghost_side(&self) -> &FrozenCsr {
        &self.ghost
    }
}

/// The concrete view every [`SelfHealer`](crate::SelfHealer) hands out:
/// two borrowed graphs plus the epoch stamp. Borrowing the healer is
/// what makes the snapshot *stable* — the borrow checker guarantees no
/// write can interleave while the view is alive, so there is nothing to
/// copy and nothing to lock.
///
/// # Examples
///
/// ```
/// use fg_core::query::QueryOps;
/// use fg_core::view::GraphView;
/// use fg_core::{ForgivingGraph, SelfHealer};
/// use fg_graph::{generators, NodeId};
///
/// let mut fg = ForgivingGraph::from_graph(&generators::star(9))?;
/// fg.delete(NodeId::new(0))?;
/// let view = fg.view();
/// assert_eq!(view.epoch(), 10); // 9 nodes ever + 1 deletion.
/// // Spokes that sat at ghost distance 2 stay within the stretch bound.
/// let d = view.distance(NodeId::new(1), NodeId::new(2)).unwrap();
/// assert!((1..=8).contains(&d));
/// assert_eq!(
///     view.stretch(NodeId::new(1), NodeId::new(2)),
///     Some(f64::from(d) / 2.0), // ghost distance 2, through the hub
/// );
/// # Ok::<(), fg_core::EngineError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct View<'a> {
    image: &'a Graph,
    ghost: &'a Graph,
    epoch: u64,
}

impl<'a> View<'a> {
    /// A view over an (image, ghost) pair, stamped via [`epoch_of`].
    ///
    /// This is also how measurement code builds ad-hoc views over bare
    /// graphs (e.g. `fg_metrics` cross-checking a healer against a
    /// materialized reference image).
    pub fn over(image: &'a Graph, ghost: &'a Graph) -> View<'a> {
        View {
            image,
            ghost,
            epoch: epoch_of(image, ghost),
        }
    }
}

impl GraphView for View<'_> {
    fn image(&self) -> &Graph {
        self.image
    }

    fn ghost(&self) -> &Graph {
        self.ghost
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ForgivingGraph, SelfHealer};
    use fg_graph::{generators, NodeId};

    #[test]
    fn epoch_advances_by_one_per_event() {
        let mut fg = ForgivingGraph::from_graph(&generators::path(6)).unwrap();
        let e0 = fg.view().epoch();
        assert_eq!(e0, 6); // 6 nodes ever, 0 deletions.
        let _ = fg.insert(&[NodeId::new(0)]).unwrap();
        assert_eq!(fg.view().epoch(), e0 + 1);
        let _ = fg.delete(NodeId::new(2)).unwrap();
        assert_eq!(fg.view().epoch(), e0 + 2);
        assert_eq!(SelfHealer::epoch(&fg), e0 + 2);
    }

    #[test]
    fn view_exposes_the_same_graphs_as_the_healer() {
        let mut fg = ForgivingGraph::from_graph(&generators::star(5)).unwrap();
        let _ = fg.delete(NodeId::new(0)).unwrap();
        let view = fg.view();
        assert_eq!(view.image(), fg.image());
        assert_eq!(view.ghost(), fg.ghost());
        assert_eq!(view.epoch(), epoch_of(fg.image(), fg.ghost()));
    }

    #[test]
    fn ad_hoc_views_over_bare_graphs() {
        let g = generators::cycle(5);
        let view = View::over(&g, &g);
        assert_eq!(view.epoch(), 5);
        assert_eq!(view.image().edge_count(), 5);
    }
}

//! Read-side snapshots: [`GraphView`], the epoch-stamped window onto a
//! healer's image and ghost graphs.
//!
//! The Forgiving Graph exists to *serve queries* while under attack —
//! "how far is `u` from `v` right now?" — yet writes (insert, delete,
//! repair) and reads live on very different paths. [`GraphView`] is the
//! read side's foundation: a cheap, read-only, **epoch-stamped** view of
//! a healer's state, obtained from any [`SelfHealer`] via
//! [`SelfHealer::view`]. The sequential engine, the distributed protocol
//! (whose views are materialized at round barriers — see
//! `fg_dist::Network::view`) and every baseline healer all produce them
//! through the same façade.
//!
//! The **epoch** is a structural state stamp derived from the two graphs
//! themselves: `nodes_ever + deletions_ever` (each insert grows
//! `nodes_ever` by one, each delete grows the tombstone count by one),
//! so it advances by exactly one per adversarial event and never
//! repeats. Two views of the same healer with equal epochs are views of
//! identical state; query caches ([`crate::query::QueryCache`]) use the
//! stamp to detect writes they were not told about and fall back to a
//! full flush instead of serving stale answers.
//!
//! [`SelfHealer`]: crate::SelfHealer
//! [`SelfHealer::view`]: crate::SelfHealer::view

use fg_graph::Graph;

/// The structural epoch of an (image, ghost) pair:
/// `nodes_ever + deletions_ever`.
///
/// Monotone, and advances by exactly one per adversarial event: an
/// insertion grows `ghost.nodes_ever()` by one (deletions unchanged), a
/// deletion tombstones one image node (`nodes_ever` unchanged). The
/// sequential engine and the distributed protocol hold bit-identical
/// graphs, so their epochs agree at every point of every trace.
pub fn epoch_of(image: &Graph, ghost: &Graph) -> u64 {
    let ever = ghost.nodes_ever() as u64;
    let dead = ever.saturating_sub(image.node_count() as u64);
    ever + dead
}

/// A stable, cheap, epoch-stamped read-only view of a self-healing
/// network: the healed image `G`, the remembered ideal graph `G'`
/// (insert-only ghost), and the epoch the snapshot was taken at.
///
/// All read operations — [`distance`], [`path`], [`stretch`],
/// [`neighbors`], [`degree`], [`same_component`] — are provided by the
/// [`QueryOps`] extension trait, blanket-implemented for every
/// `GraphView`.
///
/// [`distance`]: crate::query::QueryOps::distance
/// [`path`]: crate::query::QueryOps::path
/// [`stretch`]: crate::query::QueryOps::stretch
/// [`neighbors`]: crate::query::QueryOps::neighbors
/// [`degree`]: crate::query::QueryOps::degree
/// [`same_component`]: crate::query::QueryOps::same_component
/// [`QueryOps`]: crate::query::QueryOps
pub trait GraphView {
    /// The healed network `G` as of this view's epoch.
    fn image(&self) -> &Graph;

    /// The remembered ideal graph `G'` (everything ever inserted,
    /// deletions ignored) as of this view's epoch.
    fn ghost(&self) -> &Graph;

    /// The structural state stamp this view was taken at (see
    /// [`epoch_of`]).
    fn epoch(&self) -> u64;
}

/// The concrete view every [`SelfHealer`](crate::SelfHealer) hands out:
/// two borrowed graphs plus the epoch stamp. Borrowing the healer is
/// what makes the snapshot *stable* — the borrow checker guarantees no
/// write can interleave while the view is alive, so there is nothing to
/// copy and nothing to lock.
///
/// # Examples
///
/// ```
/// use fg_core::query::QueryOps;
/// use fg_core::view::GraphView;
/// use fg_core::{ForgivingGraph, SelfHealer};
/// use fg_graph::{generators, NodeId};
///
/// let mut fg = ForgivingGraph::from_graph(&generators::star(9))?;
/// fg.delete(NodeId::new(0))?;
/// let view = fg.view();
/// assert_eq!(view.epoch(), 10); // 9 nodes ever + 1 deletion.
/// // Spokes that sat at ghost distance 2 stay within the stretch bound.
/// let d = view.distance(NodeId::new(1), NodeId::new(2)).unwrap();
/// assert!((1..=8).contains(&d));
/// assert_eq!(
///     view.stretch(NodeId::new(1), NodeId::new(2)),
///     Some(f64::from(d) / 2.0), // ghost distance 2, through the hub
/// );
/// # Ok::<(), fg_core::EngineError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct View<'a> {
    image: &'a Graph,
    ghost: &'a Graph,
    epoch: u64,
}

impl<'a> View<'a> {
    /// A view over an (image, ghost) pair, stamped via [`epoch_of`].
    ///
    /// This is also how measurement code builds ad-hoc views over bare
    /// graphs (e.g. `fg_metrics` cross-checking a healer against a
    /// materialized reference image).
    pub fn over(image: &'a Graph, ghost: &'a Graph) -> View<'a> {
        View {
            image,
            ghost,
            epoch: epoch_of(image, ghost),
        }
    }
}

impl GraphView for View<'_> {
    fn image(&self) -> &Graph {
        self.image
    }

    fn ghost(&self) -> &Graph {
        self.ghost
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ForgivingGraph, SelfHealer};
    use fg_graph::{generators, NodeId};

    #[test]
    fn epoch_advances_by_one_per_event() {
        let mut fg = ForgivingGraph::from_graph(&generators::path(6)).unwrap();
        let e0 = fg.view().epoch();
        assert_eq!(e0, 6); // 6 nodes ever, 0 deletions.
        let _ = fg.insert(&[NodeId::new(0)]).unwrap();
        assert_eq!(fg.view().epoch(), e0 + 1);
        let _ = fg.delete(NodeId::new(2)).unwrap();
        assert_eq!(fg.view().epoch(), e0 + 2);
        assert_eq!(SelfHealer::epoch(&fg), e0 + 2);
    }

    #[test]
    fn view_exposes_the_same_graphs_as_the_healer() {
        let mut fg = ForgivingGraph::from_graph(&generators::star(5)).unwrap();
        let _ = fg.delete(NodeId::new(0)).unwrap();
        let view = fg.view();
        assert_eq!(view.image(), fg.image());
        assert_eq!(view.ghost(), fg.ghost());
        assert_eq!(view.epoch(), epoch_of(fg.image(), fg.ghost()));
    }

    #[test]
    fn ad_hoc_views_over_bare_graphs() {
        let g = generators::cycle(5);
        let view = View::over(&g, &g);
        assert_eq!(view.epoch(), 5);
        assert_eq!(view.image().edge_count(), 5);
    }
}

//! The homomorphic image: the network that actually exists.
//!
//! Paper §3: "our actual graph is the homomorphic image of the [virtual]
//! graph, under a graph homomorphism which fixes the actual nodes and maps
//! each virtual node to the distinct actual node simulating it."
//!
//! Two virtual edges can map to the same processor pair, and a virtual
//! edge between two nodes simulated by one processor maps to a self-loop.
//! [`ImageGraph`] therefore keeps a reference count per processor pair
//! (plus one count for a surviving original edge) and mirrors the
//! *support* of that multiset into a simple [`Graph`], which is what the
//! degree and stretch metrics read.

use fg_graph::{EdgeKey, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Reference-counted multigraph over processors with a simple-graph view.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageGraph {
    simple: Graph,
    counts: BTreeMap<EdgeKey, u32>,
    self_loops: u32,
}

impl ImageGraph {
    /// An empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new processor; must be called in lockstep with the
    /// ghost graph so ids align.
    pub fn add_node(&mut self) -> NodeId {
        self.simple.add_node()
    }

    /// The simple-graph view (distinct neighbours); this is `G_T` for the
    /// paper's metrics.
    pub fn simple(&self) -> &Graph {
        &self.simple
    }

    /// Multiplicity of the processor pair `(u, v)` — original edge plus
    /// virtual edges.
    pub fn multiplicity(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        self.counts.get(&EdgeKey::new(u, v)).copied().unwrap_or(0)
    }

    /// Multigraph degree of `v` (counts every virtual edge separately).
    pub fn multi_degree(&self, v: NodeId) -> u32 {
        self.simple
            .neighbors(v)
            .map(|u| self.multiplicity(v, u))
            .sum()
    }

    /// Number of virtual edges whose endpoints collapsed onto a single
    /// processor (dropped by the homomorphism).
    pub fn self_loop_count(&self) -> u32 {
        self.self_loops
    }

    /// Adds one edge unit between `u` and `v`. Self-loops are counted and
    /// dropped.
    pub fn inc(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            self.self_loops += 1;
            return;
        }
        let key = EdgeKey::new(u, v);
        let count = self.counts.entry(key).or_insert(0);
        *count += 1;
        if *count == 1 {
            self.simple
                .add_edge(u, v)
                .expect("image simple graph out of sync on inc");
        }
    }

    /// Removes one edge unit between `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if the pair has no remaining multiplicity — the engine's
    /// bookkeeping must never over-release.
    pub fn dec(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            assert!(self.self_loops > 0, "no self-loop to release");
            self.self_loops -= 1;
            return;
        }
        let key = EdgeKey::new(u, v);
        let count = self
            .counts
            .get_mut(&key)
            .unwrap_or_else(|| panic!("releasing absent image edge {key}"));
        *count -= 1;
        if *count == 0 {
            self.counts.remove(&key);
            self.simple
                .remove_edge(u, v)
                .expect("image simple graph out of sync on dec");
        }
    }

    /// Removes a processor that no longer has any incident multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if edges are still incident — deletion must release them
    /// all first (original and virtual alike).
    pub fn remove_node(&mut self, v: NodeId) {
        assert_eq!(
            self.simple.degree(v),
            0,
            "processor {v} still has incident image edges"
        );
        self.simple
            .remove_node(v)
            .expect("removing unknown image node");
    }

    /// Consistency check: the simple view must be exactly the support of
    /// the count map.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn validate(&self) -> Result<(), String> {
        for (key, &count) in &self.counts {
            if count == 0 {
                return Err(format!("zero-count entry for {key}"));
            }
            if !self.simple.has_edge(key.lo(), key.hi()) {
                return Err(format!("count without simple edge for {key}"));
            }
        }
        for e in self.simple.edges() {
            if !self.counts.contains_key(&e) {
                return Err(format!("simple edge without count for {e}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_collapse_to_simple_edges() {
        let mut img = ImageGraph::new();
        let a = img.add_node();
        let b = img.add_node();
        img.inc(a, b);
        img.inc(b, a);
        assert_eq!(img.multiplicity(a, b), 2);
        assert_eq!(img.simple().degree(a), 1);
        assert_eq!(img.multi_degree(a), 2);
        img.dec(a, b);
        assert!(img.simple().has_edge(a, b));
        img.dec(a, b);
        assert!(!img.simple().has_edge(a, b));
        img.validate().unwrap();
    }

    #[test]
    fn self_loops_are_dropped_but_counted() {
        let mut img = ImageGraph::new();
        let a = img.add_node();
        img.inc(a, a);
        assert_eq!(img.self_loop_count(), 1);
        assert_eq!(img.simple().degree(a), 0);
        img.dec(a, a);
        assert_eq!(img.self_loop_count(), 0);
    }

    #[test]
    #[should_panic(expected = "releasing absent image edge")]
    fn over_release_panics() {
        let mut img = ImageGraph::new();
        let a = img.add_node();
        let b = img.add_node();
        img.dec(a, b);
    }

    #[test]
    #[should_panic(expected = "still has incident image edges")]
    fn remove_node_with_edges_panics() {
        let mut img = ImageGraph::new();
        let a = img.add_node();
        let b = img.add_node();
        img.inc(a, b);
        img.remove_node(a);
    }

    #[test]
    fn remove_isolated_node() {
        let mut img = ImageGraph::new();
        let a = img.add_node();
        let b = img.add_node();
        img.inc(a, b);
        img.dec(a, b);
        img.remove_node(a);
        assert!(!img.simple().contains(a));
        assert!(img.simple().contains(b));
        img.validate().unwrap();
    }
}

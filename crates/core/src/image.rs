//! The homomorphic image: the network that actually exists.
//!
//! Paper §3: "our actual graph is the homomorphic image of the [virtual]
//! graph, under a graph homomorphism which fixes the actual nodes and maps
//! each virtual node to the distinct actual node simulating it."
//!
//! Two virtual edges can map to the same processor pair, and a virtual
//! edge between two nodes simulated by one processor maps to a self-loop.
//! [`ImageGraph`] therefore keeps a reference count per processor pair
//! (plus one count for a surviving original edge) and mirrors the
//! *support* of that multiset into a simple [`Graph`], which is what the
//! degree and stretch metrics read.
//!
//! Counts are stored per node as sorted `(neighbour, count)` lists — the
//! same dense arena layout as the graph's adjacency — so bumping a
//! multiplicity during a repair touches the two endpoints' contiguous
//! lists instead of rebalancing a global `BTreeMap<EdgeKey, u32>`.

use fg_graph::{Graph, NodeId, SortedMap};
use serde::{Deserialize, Serialize};

/// Reference-counted multigraph over processors with a simple-graph view.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageGraph {
    simple: Graph,
    /// `counts[u]` maps each neighbour `v` to the multiplicity of `(u, v)`;
    /// kept symmetric (`counts[v]` holds the same number for `u`) so either
    /// endpoint resolves a multiplicity with one local binary search.
    counts: Vec<SortedMap<NodeId, u32>>,
    self_loops: u32,
}

impl ImageGraph {
    /// An empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new processor; must be called in lockstep with the
    /// ghost graph so ids align.
    pub fn add_node(&mut self) -> NodeId {
        self.counts.push(SortedMap::new());
        self.simple.add_node()
    }

    /// The simple-graph view (distinct neighbours); this is `G_T` for the
    /// paper's metrics.
    pub fn simple(&self) -> &Graph {
        &self.simple
    }

    /// Multiplicity of the processor pair `(u, v)` — original edge plus
    /// virtual edges.
    pub fn multiplicity(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        self.counts
            .get(u.index())
            .and_then(|m| m.get(&v))
            .copied()
            .unwrap_or(0)
    }

    /// Multigraph degree of `v` (counts every virtual edge separately).
    pub fn multi_degree(&self, v: NodeId) -> u32 {
        self.counts.get(v.index()).map_or(0, |m| m.values().sum())
    }

    /// Number of virtual edges whose endpoints collapsed onto a single
    /// processor (dropped by the homomorphism).
    pub fn self_loop_count(&self) -> u32 {
        self.self_loops
    }

    /// Adds one edge unit between `u` and `v`. Self-loops are counted and
    /// dropped.
    pub fn inc(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            self.self_loops += 1;
            return;
        }
        let cell = self.counts[u.index()].get_or_insert_with(v, || 0);
        *cell += 1;
        let count = *cell;
        *self.counts[v.index()].get_or_insert_with(u, || 0) = count;
        if count == 1 {
            self.simple
                .add_edge(u, v)
                .expect("image simple graph out of sync on inc");
        }
    }

    /// Removes one edge unit between `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if the pair has no remaining multiplicity — the engine's
    /// bookkeeping must never over-release.
    pub fn dec(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            assert!(self.self_loops > 0, "no self-loop to release");
            self.self_loops -= 1;
            return;
        }
        let count = self.counts[u.index()]
            .get_mut(&v)
            .unwrap_or_else(|| panic!("releasing absent image edge ({u}-{v})"));
        *count -= 1;
        let count = *count;
        if count == 0 {
            self.counts[u.index()].remove(&v);
            self.counts[v.index()].remove(&u);
            self.simple
                .remove_edge(u, v)
                .expect("image simple graph out of sync on dec");
        } else {
            *self.counts[v.index()]
                .get_mut(&u)
                .expect("symmetric count present") = count;
        }
    }

    /// Removes a processor that no longer has any incident multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if edges are still incident — deletion must release them
    /// all first (original and virtual alike).
    pub fn remove_node(&mut self, v: NodeId) {
        assert_eq!(
            self.simple.degree(v),
            0,
            "processor {v} still has incident image edges"
        );
        debug_assert!(self.counts[v.index()].is_empty());
        self.simple
            .remove_node(v)
            .expect("removing unknown image node");
    }

    /// Consistency check: the simple view must be exactly the support of
    /// the count map, and the counts symmetric.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn validate(&self) -> Result<(), String> {
        if self.counts.len() != self.simple.nodes_ever() {
            return Err("count table misaligned with simple graph".into());
        }
        for (i, m) in self.counts.iter().enumerate() {
            let u = NodeId::new(i as u32);
            for (&v, &count) in m.iter() {
                if count == 0 {
                    return Err(format!("zero-count entry for ({u}-{v})"));
                }
                if self.multiplicity(v, u) != count {
                    return Err(format!("asymmetric count for ({u}-{v})"));
                }
                if !self.simple.has_edge(u, v) {
                    return Err(format!("count without simple edge for ({u}-{v})"));
                }
            }
        }
        for e in self.simple.edges() {
            if self.multiplicity(e.lo(), e.hi()) == 0 {
                return Err(format!("simple edge without count for {e}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_collapse_to_simple_edges() {
        let mut img = ImageGraph::new();
        let a = img.add_node();
        let b = img.add_node();
        img.inc(a, b);
        img.inc(b, a);
        assert_eq!(img.multiplicity(a, b), 2);
        assert_eq!(img.multiplicity(b, a), 2);
        assert_eq!(img.simple().degree(a), 1);
        assert_eq!(img.multi_degree(a), 2);
        img.dec(a, b);
        assert!(img.simple().has_edge(a, b));
        img.dec(a, b);
        assert!(!img.simple().has_edge(a, b));
        img.validate().unwrap();
    }

    #[test]
    fn self_loops_are_dropped_but_counted() {
        let mut img = ImageGraph::new();
        let a = img.add_node();
        img.inc(a, a);
        assert_eq!(img.self_loop_count(), 1);
        assert_eq!(img.simple().degree(a), 0);
        img.dec(a, a);
        assert_eq!(img.self_loop_count(), 0);
    }

    #[test]
    #[should_panic(expected = "releasing absent image edge")]
    fn over_release_panics() {
        let mut img = ImageGraph::new();
        let a = img.add_node();
        let b = img.add_node();
        img.dec(a, b);
    }

    #[test]
    #[should_panic(expected = "still has incident image edges")]
    fn remove_node_with_edges_panics() {
        let mut img = ImageGraph::new();
        let a = img.add_node();
        let b = img.add_node();
        img.inc(a, b);
        img.remove_node(a);
    }

    #[test]
    fn remove_isolated_node() {
        let mut img = ImageGraph::new();
        let a = img.add_node();
        let b = img.add_node();
        img.inc(a, b);
        img.dec(a, b);
        img.remove_node(a);
        assert!(!img.simple().contains(a));
        assert!(img.simple().contains(b));
        img.validate().unwrap();
    }
}

//! The Forgiving Graph engine: insertions, deletions and self-healing
//! repair (paper §3, §4.2, Appendix A).
//!
//! This is the sequential *reference* implementation: it applies the whole
//! repair for a deletion atomically, using the same shatter → strip →
//! bottom-up-merge choreography that the processors of `fg-dist` execute
//! with messages. Both implementations produce identical state, which the
//! integration suite asserts.

use crate::api::{HealerObserver, InsertReport, NoopObserver, RepairReport};
use crate::error::EngineError;
use crate::event::NetworkEvent;
use crate::forest::Forest;
use crate::image::ImageGraph;
use crate::plan::WireTree;
use crate::slot::{Slot, VKey};
use crate::stats::EngineStats;
use fg_graph::{Graph, NodeId, SortedMap, SortedSet};
use serde::{Deserialize, Serialize};

/// How the merge picks the processor that simulates a fresh helper node.
///
/// See DESIGN.md §2: the conference paper's Algorithm A.9 ("PaperExact")
/// can place a helper far from its simulator's leaf, which costs a fourth
/// distinct image neighbour per `G'`-edge in adversarial merge cascades.
/// The "Adjacent" refinement prefers a representative whose own leaf is a
/// direct child of one of the two roots being joined, collapsing one
/// helper edge under the homomorphism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Algorithm A.9 verbatim: the bigger tree's representative simulates.
    PaperExact,
    /// Prefer a root-adjacent representative; fall back to the paper rule.
    #[default]
    Adjacent,
}

/// When to compact the forest arena (opt-in; see
/// [`ForgivingGraph::set_compaction`]).
///
/// The arena tombstones freed virtual nodes and never reuses their slots,
/// so under churn the live/ever slot ratio ([`EngineStats::arena_density`])
/// decays toward zero. With a policy installed, the engine compacts at the
/// end of any repair that leaves the density at or below `min_density`
/// (once the arena has at least `min_slots` slots), restoring density 1.0.
/// Each slot is moved at most once per halving, so the amortised cost per
/// freed node is O(1) and the post-repair density always exceeds
/// `min_density`.
///
/// Compaction is observably invisible: virtual nodes address each other by
/// [`VKey`], never by arena slot, and [`Forest`] equality ignores slot
/// layout — golden-trace digests are bit-identical with and without it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompactionPolicy {
    /// Compact when `forest.len() / forest.slots_ever()` is at or below
    /// this (default 0.5: compact once half the slots are tombstones).
    pub min_density: f64,
    /// Leave arenas smaller than this alone (default 64): tiny arenas
    /// aren't worth the move, and the density bound is meaningless at
    /// n ≈ 1.
    pub min_slots: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_density: 0.5,
            min_slots: 64,
        }
    }
}

/// Cumulative per-phase wall-clock seconds, filled in while profiling is
/// on (see [`ForgivingGraph::enable_profiling`]).
///
/// The write path has four phases per deletion — mirroring §4.2's repair
/// choreography — plus one for insertions:
///
/// * `gather` — victim bookkeeping: surviving neighbours, original-edge
///   release, the removed key set, anchors and tainted ancestors;
/// * `strip` — shattering affected trees into complete-subtree fragments
///   and minting the fresh singleton leaves;
/// * `plan` — bucketing fragments at their BT_v anchors and detaching the
///   victim from the image;
/// * `merge` — the bottom-up BT_v merge (plus any arena compaction it
///   triggers);
/// * `insert` — whole insertions (no healing, so one phase).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Seconds spent applying insertions.
    pub insert: f64,
    /// Seconds in the gather phase of deletions.
    pub gather: f64,
    /// Seconds in the strip phase of deletions.
    pub strip: f64,
    /// Seconds in the plan phase of deletions.
    pub plan: f64,
    /// Seconds in the merge phase of deletions.
    pub merge: f64,
}

impl PhaseTimes {
    /// Total profiled seconds across all phases.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.insert + self.gather + self.strip + self.plan + self.merge
    }
}

/// Phase selector for [`ForgivingGraph::lap`].
#[derive(Clone, Copy)]
enum Phase {
    Insert,
    Gather,
    Strip,
    Plan,
    Merge,
}

/// A self-healing peer-to-peer network implementing the Forgiving Graph.
///
/// Maintains three coupled structures:
///
/// * `ghost` — `G'`, the insert-only graph (every node and adversarial
///   edge ever created; deletions leave it untouched);
/// * `forest` — the virtual reconstruction trees over edge slots;
/// * `image` — `G`, the healed network actually present: surviving
///   original edges plus the homomorphic image of the forest.
///
/// # Examples
///
/// ```
/// use fg_core::ForgivingGraph;
/// use fg_graph::generators;
///
/// let mut fg = ForgivingGraph::from_graph(&generators::star(8))?;
/// let hub = fg_graph::NodeId::new(0);
/// let report = fg.delete(hub)?;
/// assert_eq!(report.ghost_degree, 7);
/// assert!(fg_graph::traversal::is_connected(fg.image()));
/// fg.check_invariants()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForgivingGraph {
    pub(crate) ghost: Graph,
    pub(crate) alive: Vec<bool>,
    pub(crate) forest: Forest,
    pub(crate) image: ImageGraph,
    pub(crate) policy: PlacementPolicy,
    pub(crate) stats: EngineStats,
    /// Arena-compaction policy; `None` (the default) never compacts.
    pub(crate) compaction: Option<CompactionPolicy>,
    /// Per-phase wall-time accumulator; `None` (the default) keeps the
    /// hot path free of clock reads.
    pub(crate) profile: Option<PhaseTimes>,
}

/// Logical-state equality: two engines are equal when they healed to the
/// same network — ghost, alive set, forest, image, policy and counters.
/// Telemetry (`profile`) and configuration that cannot change behaviour
/// (`compaction`) are excluded, as are arena gauges (see
/// [`EngineStats`]'s own `PartialEq`).
impl PartialEq for ForgivingGraph {
    fn eq(&self, other: &Self) -> bool {
        self.ghost == other.ghost
            && self.alive == other.alive
            && self.forest == other.forest
            && self.image == other.image
            && self.policy == other.policy
            && self.stats == other.stats
    }
}

impl ForgivingGraph {
    /// An empty network with the default placement policy.
    pub fn new() -> Self {
        Self::with_policy(PlacementPolicy::default())
    }

    /// An empty network with an explicit placement policy.
    pub fn with_policy(policy: PlacementPolicy) -> Self {
        ForgivingGraph {
            ghost: Graph::new(),
            alive: Vec::new(),
            forest: Forest::new(),
            image: ImageGraph::new(),
            policy,
            stats: EngineStats::default(),
            compaction: None,
            profile: None,
        }
    }

    /// Installs (or removes, with `None`) the arena-compaction policy.
    ///
    /// Off by default: the seed behaviour is append-only allocation.
    /// Turning compaction on changes only memory layout, never outcomes —
    /// repairs, reports and query answers are bit-identical either way.
    pub fn set_compaction(&mut self, policy: Option<CompactionPolicy>) {
        self.compaction = policy;
    }

    /// The active arena-compaction policy, if any.
    pub fn compaction(&self) -> Option<CompactionPolicy> {
        self.compaction
    }

    /// Starts accumulating per-phase wall times ([`PhaseTimes`]) from
    /// zero. Off by default so unprofiled runs never read the clock.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(PhaseTimes::default());
    }

    /// Cumulative per-phase wall times since
    /// [`ForgivingGraph::enable_profiling`], or `None` when profiling is
    /// off.
    pub fn phase_times(&self) -> Option<PhaseTimes> {
        self.profile
    }

    /// Credits the time since `*clock` to `phase` and restarts the clock.
    /// A `None` clock (profiling off) costs one branch.
    fn lap(&mut self, clock: &mut Option<std::time::Instant>, phase: Phase) {
        if let (Some(times), Some(t)) = (self.profile.as_mut(), clock.as_mut()) {
            // fg-lint: allow(determinism): opt-in profiling clock; elapsed times feed PhaseTimes only, never a digest
            let now = std::time::Instant::now();
            let secs = now.duration_since(*t).as_secs_f64();
            *t = now;
            match phase {
                Phase::Insert => times.insert += secs,
                Phase::Gather => times.gather += secs,
                Phase::Strip => times.strip += secs,
                Phase::Plan => times.plan += secs,
                Phase::Merge => times.merge += secs,
            }
        }
    }

    /// Compacts the forest arena if the policy says so, then refreshes
    /// the arena gauges. Called at the end of every repair.
    fn maybe_compact(&mut self) {
        if let Some(policy) = self.compaction {
            let live = self.forest.len();
            let slots = self.forest.slots_ever();
            if slots >= policy.min_slots && live as f64 <= policy.min_density * slots as f64 {
                self.forest.compact();
                self.stats.compactions += 1;
            }
        }
        self.stats.arena_live = self.forest.len() as u64;
        self.stats.arena_slots = self.forest.slots_ever() as u64;
    }

    /// Adopts an existing network as `G_0`.
    ///
    /// There is no preprocessing phase — this is the paper's third
    /// improvement over the Forgiving Tree, which needed `O(n log n)`
    /// setup messages. Adoption is pure state initialisation.
    ///
    /// # Panics
    ///
    /// Panics if `g` contains removed (tombstoned) nodes; start from a
    /// fresh graph.
    pub fn from_graph(g: &Graph) -> Result<Self, EngineError> {
        Self::from_graph_with_policy(g, PlacementPolicy::default())
    }

    /// [`ForgivingGraph::from_graph`] with an explicit placement policy.
    pub fn from_graph_with_policy(g: &Graph, policy: PlacementPolicy) -> Result<Self, EngineError> {
        assert_eq!(
            g.node_count(),
            g.nodes_ever(),
            "G0 must not contain tombstoned nodes"
        );
        let mut fg = Self::with_policy(policy);
        for _ in 0..g.node_count() {
            fg.ghost.add_node();
            fg.image.add_node();
            fg.alive.push(true);
        }
        for e in g.edges() {
            fg.ghost
                .add_edge(e.lo(), e.hi())
                .expect("copying a simple graph");
            fg.image.inc(e.lo(), e.hi());
        }
        Ok(fg)
    }

    /// The insert-only graph `G'` (deleted nodes keep their edges here).
    pub fn ghost(&self) -> &Graph {
        &self.ghost
    }

    /// The healed network `G` as a simple graph over live processors.
    pub fn image(&self) -> &Graph {
        self.image.simple()
    }

    /// Edge multiplicity in the image multigraph (original + virtual).
    pub fn multiplicity(&self, u: NodeId, v: NodeId) -> u32 {
        self.image.multiplicity(u, v)
    }

    /// Multigraph degree of `v` in the image.
    pub fn multi_degree(&self, v: NodeId) -> u32 {
        self.image.multi_degree(v)
    }

    /// Whether `v` is currently alive.
    pub fn is_alive(&self, v: NodeId) -> bool {
        self.alive.get(v.index()).copied().unwrap_or(false)
    }

    /// Live node count.
    pub fn alive_count(&self) -> usize {
        self.image.simple().node_count()
    }

    /// Total nodes ever seen — the paper's `n`.
    pub fn nodes_ever(&self) -> usize {
        self.ghost.nodes_ever()
    }

    /// The stretch bound the paper guarantees right now: `⌈log₂ n⌉`
    /// (at least 1), with `n` the number of nodes ever seen.
    pub fn stretch_bound(&self) -> u32 {
        let n = self.nodes_ever().max(2);
        (usize::BITS - (n - 1).leading_zeros()).max(1)
    }

    /// Cumulative engine statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The active placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Number of live virtual nodes (leaves + helpers).
    pub fn forest_len(&self) -> usize {
        self.forest.len()
    }

    /// Read-only access to the reconstruction forest.
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// `(leaf count, depth)` of every reconstruction tree, in key order.
    pub fn rt_shapes(&self) -> Vec<(u32, u32)> {
        self.forest
            .roots()
            .into_iter()
            .map(|r| {
                let n = self.forest.node(r);
                (n.leaves, n.height)
            })
            .collect()
    }

    /// Applies an adversarial event.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] from [`ForgivingGraph::insert`] /
    /// [`ForgivingGraph::delete`].
    pub fn apply(&mut self, event: &NetworkEvent) -> Result<Option<RepairReport>, EngineError> {
        match event {
            NetworkEvent::Insert { neighbors } => {
                self.insert(neighbors)?;
                Ok(None)
            }
            NetworkEvent::Delete { node } => Ok(Some(self.delete(*node)?)),
        }
    }

    /// Adversarially inserts a node connected to `neighbors`.
    ///
    /// Insertion needs no healing (paper §3): the node and its neighbours
    /// just record the new edges.
    ///
    /// # Errors
    ///
    /// * [`EngineError::EmptyNeighbourhood`] for an empty list,
    /// * [`EngineError::DuplicateNeighbour`] for repeats,
    /// * [`EngineError::NotAlive`] if a neighbour is dead or unknown.
    pub fn insert(&mut self, neighbors: &[NodeId]) -> Result<NodeId, EngineError> {
        self.insert_with(neighbors, &mut NoopObserver)
            .map(|report| report.node)
    }

    /// [`ForgivingGraph::insert`] with streaming instrumentation: `obs`
    /// receives one `on_repair_edge(v, x, true)` per attachment. The
    /// unobserved path monomorphizes over [`NoopObserver`] and compiles
    /// the callbacks away.
    pub fn insert_with<O: HealerObserver + ?Sized>(
        &mut self,
        neighbors: &[NodeId],
        obs: &mut O,
    ) -> Result<InsertReport, EngineError> {
        if neighbors.is_empty() {
            return Err(EngineError::EmptyNeighbourhood);
        }
        // fg-lint: allow(determinism): opt-in profiling clock; elapsed times feed PhaseTimes only, never a digest
        let mut clock = self.profile.is_some().then(std::time::Instant::now);
        let mut seen = SortedSet::new();
        for &x in neighbors {
            if !seen.insert(x) {
                return Err(EngineError::DuplicateNeighbour(x));
            }
            if !self.is_alive(x) {
                return Err(EngineError::NotAlive(x));
            }
        }
        let v = self.ghost.add_node();
        let iv = self.image.add_node();
        debug_assert_eq!(v, iv, "ghost and image ids must stay aligned");
        self.alive.push(true);
        for &x in neighbors {
            self.ghost.add_edge(v, x).expect("fresh node, fresh edges");
            self.image.inc(v, x);
            obs.on_repair_edge(v, x, true);
        }
        self.stats.inserts += 1;
        self.stats.edges_added += neighbors.len() as u64;
        self.lap(&mut clock, Phase::Insert);
        Ok(InsertReport {
            node: v,
            neighbors: neighbors.len(),
            edges_added: neighbors.len() as u64,
        })
    }

    /// Adversarially deletes `v` and runs the self-healing repair.
    ///
    /// The two phases of §4.2 run atomically: (1) the victim's virtual
    /// nodes are removed, shattering the affected reconstruction trees
    /// into fragments that strip down to complete subtrees; (2) the
    /// fragments form the balanced tree `BT_v` and merge bottom-up into a
    /// single new reconstruction tree whose leaves are every surviving
    /// endpoint.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotAlive`] if `v` is unknown or already deleted.
    pub fn delete(&mut self, v: NodeId) -> Result<RepairReport, EngineError> {
        self.delete_with(v, &mut NoopObserver)
    }

    /// [`ForgivingGraph::delete`] with streaming instrumentation: `obs`
    /// receives one `on_repair_edge` per image edge unit the repair adds
    /// or drops, in deterministic order. The unobserved path
    /// monomorphizes over [`NoopObserver`] and compiles the callbacks
    /// away.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotAlive`] if `v` is unknown or already deleted.
    pub fn delete_with<O: HealerObserver + ?Sized>(
        &mut self,
        v: NodeId,
        obs: &mut O,
    ) -> Result<RepairReport, EngineError> {
        if !self.is_alive(v) {
            return Err(EngineError::NotAlive(v));
        }
        // fg-lint: allow(determinism): opt-in profiling clock; elapsed times feed PhaseTimes only, never a digest
        let mut clock = self.profile.is_some().then(std::time::Instant::now);
        let before = self.stats;
        let nodes_ever = self.nodes_ever();
        let ghost_degree = self.ghost.degree(v);
        let alive_nbrs: Vec<NodeId> = self
            .ghost
            .neighbors(v)
            .filter(|&x| self.is_alive(x))
            .collect();

        // Release the intact original edges (v, x).
        for &x in &alive_nbrs {
            self.image.dec(v, x);
            obs.on_repair_edge(v, x, false);
        }
        self.stats.edges_dropped += alive_nbrs.len() as u64;

        // The victim's virtual nodes, and the trees they live in.
        let removed: SortedSet<VKey> = self.forest.keys_of_owner(v).into_iter().collect();
        let mut affected_roots = SortedSet::new();
        for &k in &removed {
            affected_roots.insert(self.forest.root_of(k));
        }
        self.alive[v.index()] = false;

        // The anchors of BT_v (Algorithm A.3's Nset): every surviving
        // virtual node adjacent to one of the victim's nodes. Collected
        // before any detaching.
        let mut anchors: SortedSet<VKey> = SortedSet::new();
        for &k in &removed {
            let node = self.forest.node(k);
            for adj in node
                .parent
                .iter()
                .chain(node.left.iter())
                .chain(node.right.iter())
            {
                if !removed.contains(adj) {
                    anchors.insert(*adj);
                }
            }
        }

        // Ancestors of removed nodes can no longer head complete subtrees.
        let mut tainted = SortedSet::new();
        for &k in &removed {
            let mut cur = k;
            while let Some(p) = self.forest.node(cur).parent {
                if removed.contains(&p) || !tainted.insert(p) {
                    break;
                }
                cur = p;
            }
        }
        self.lap(&mut clock, Phase::Gather);

        // Phase 1: shatter every affected tree into fragments of complete
        // subtrees, freeing red nodes and the victim's nodes. Track which
        // fragment each anchor landed in.
        let mut fragments: Vec<Vec<WireTree>> = Vec::new();
        let mut anchor_frag: SortedMap<VKey, usize> = SortedMap::new();
        for root in affected_roots {
            fragments.push(Vec::new());
            let frag = fragments.len() - 1;
            self.gather(
                root,
                frag,
                &removed,
                &tainted,
                &anchors,
                &mut fragments,
                &mut anchor_frag,
                obs,
            );
        }

        // One fresh singleton leaf per surviving neighbour; each is its
        // own fragment and its own anchor.
        for &x in &alive_nbrs {
            let slot = Slot::new(x, v);
            let key = self.forest.create_leaf(slot);
            self.stats.leaves_created += 1;
            fragments.push(vec![WireTree::leaf(slot)]);
            anchors.insert(key);
            anchor_frag.insert(key, fragments.len() - 1);
        }
        self.lap(&mut clock, Phase::Strip);

        // Each fragment's bucket sits at its smallest anchor; the other
        // anchors hold empty buckets but still occupy BT_v positions
        // (the paper's BT_v spans all of Nset).
        let anchor_list: Vec<VKey> = anchors.iter().copied().collect();
        let mut rep_of_frag: SortedMap<usize, VKey> = SortedMap::new();
        for (&anchor, &frag) in anchor_frag.iter() {
            rep_of_frag.get_or_insert_with(frag, || anchor);
        }
        let mut buckets: Vec<Vec<WireTree>> = vec![Vec::new(); anchor_list.len()];
        let report_fragments = fragments.iter().filter(|f| !f.is_empty()).count();
        let trees_collected: usize = fragments.iter().map(Vec::len).sum();
        for (frag, trees) in fragments.into_iter().enumerate() {
            if trees.is_empty() {
                continue;
            }
            let rep = rep_of_frag
                .get(&frag)
                .expect("every non-empty fragment borders the victim");
            let pos = anchor_list.binary_search(rep).expect("anchor listed");
            buckets[pos].extend(trees);
        }
        let report_buckets = buckets.iter().filter(|b| !b.is_empty()).count();
        let affected_nodes = {
            let mut owners = SortedSet::new();
            for &a in &anchor_list {
                owners.insert(a.owner());
            }
            owners.len()
        };

        // The victim must be fully detached from the image by now.
        self.image.remove_node(v);
        self.lap(&mut clock, Phase::Plan);

        // Phase 2: BT_v bottom-up merge into a single reconstruction tree.
        let (rt, btv_rounds) = self.btv_merge(buckets, obs);
        let (rt_leaves, rt_depth) = match rt {
            Some(root) => {
                let n = self.forest.node(root);
                (n.leaves, n.height)
            }
            None => (0, 0),
        };

        self.stats.deletes += 1;
        self.stats.btv_rounds += u64::from(btv_rounds);
        self.maybe_compact();
        self.lap(&mut clock, Phase::Merge);
        let after = self.stats;
        Ok(RepairReport {
            deleted: v,
            ghost_degree,
            alive_neighbors: alive_nbrs.len(),
            nodes_ever,
            fragments: report_fragments,
            trees_collected,
            will_entries: removed.len(),
            buckets: report_buckets,
            affected_nodes,
            edges_added: after.edges_added - before.edges_added,
            edges_dropped: after.edges_dropped - before.edges_dropped,
            helpers_created: after.helpers_created - before.helpers_created,
            helpers_freed: after.helpers_freed - before.helpers_freed,
            leaves_created: after.leaves_created - before.leaves_created,
            leaves_removed: after.leaves_removed - before.leaves_removed,
            btv_rounds,
            rt_leaves,
            rt_depth,
        })
    }

    /// Shatter traversal (paper: the probe/strip phase, Algorithms A.4–A.6).
    ///
    /// Walks down from `key` within fragment `frag`; the victim's nodes
    /// split fragments, red nodes (tainted ancestors and old spine
    /// connectors) are freed, and maximal clean complete subtrees are
    /// emitted as the fragment's primary roots. Anchors encountered along
    /// the way are recorded with their fragment.
    #[allow(clippy::too_many_arguments)]
    fn gather<O: HealerObserver + ?Sized>(
        &mut self,
        key: VKey,
        frag: usize,
        removed: &SortedSet<VKey>,
        tainted: &SortedSet<VKey>,
        anchors: &SortedSet<VKey>,
        fragments: &mut Vec<Vec<WireTree>>,
        anchor_frag: &mut SortedMap<VKey, usize>,
        obs: &mut O,
    ) {
        if removed.contains(&key) {
            // The victim's node: children fall into separate fragments.
            let kids: Vec<VKey> = self.forest.children(key).collect();
            for &c in &kids {
                self.detach_edge(key, c, obs);
            }
            if key.is_real() {
                self.stats.leaves_removed += 1;
            } else {
                self.stats.helpers_freed += 1;
            }
            self.forest.remove_isolated(key);
            for &c in &kids {
                fragments.push(Vec::new());
                let child_frag = fragments.len() - 1;
                self.gather(
                    c,
                    child_frag,
                    removed,
                    tainted,
                    anchors,
                    fragments,
                    anchor_frag,
                    obs,
                );
            }
        } else if tainted.contains(&key) || !self.forest.node(key).is_complete() {
            // Red node: freed, children stay in the current fragment.
            debug_assert!(key.is_helper(), "leaves are complete and never tainted");
            if anchors.contains(&key) {
                anchor_frag.insert(key, frag);
            }
            let kids: Vec<VKey> = self.forest.children(key).collect();
            for &c in &kids {
                self.detach_edge(key, c, obs);
            }
            self.stats.helpers_freed += 1;
            self.forest.remove_isolated(key);
            for &c in &kids {
                self.gather(
                    c,
                    frag,
                    removed,
                    tainted,
                    anchors,
                    fragments,
                    anchor_frag,
                    obs,
                );
            }
        } else {
            // Primary root: a clean complete subtree survives wholesale.
            if anchors.contains(&key) {
                anchor_frag.insert(key, frag);
            }
            let desc = self.describe_tree(key);
            fragments[frag].push(desc);
        }
    }

    /// Detaches a parent→child tree edge and releases its image unit.
    pub(crate) fn detach_edge<O: HealerObserver + ?Sized>(
        &mut self,
        parent: VKey,
        child: VKey,
        obs: &mut O,
    ) {
        self.forest.detach_child(parent, child);
        self.image.dec(parent.owner(), child.owner());
        self.stats.edges_dropped += 1;
        obs.on_repair_edge(parent.owner(), child.owner(), false);
    }

    /// Exhaustive structural audit; used by every test layer.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.forest.validate()?;
        self.image.validate()?;

        // Slot legality.
        for (key, _) in self.forest.iter() {
            let Slot { owner, other } = key.slot;
            if !self.is_alive(owner) {
                return Err(format!("{key}: owner is dead"));
            }
            if self.is_alive(other) {
                return Err(format!("{key}: other endpoint still alive"));
            }
            if !self.ghost.has_edge(owner, other) {
                return Err(format!("{key}: no such G' edge"));
            }
        }

        // Helper placement: a helper's own leaf is a strict descendant.
        for (key, _) in self.forest.iter() {
            if key.is_helper() {
                let leaf = key.slot.real();
                let mut cur = leaf;
                let mut found = false;
                while let Some(p) = self.forest.node(cur).parent {
                    if p == key {
                        found = true;
                        break;
                    }
                    cur = p;
                }
                if !found {
                    return Err(format!("{key}: own leaf is not a descendant"));
                }
            }
        }

        // Every (alive, dead) G' edge has its leaf.
        for v in (0..self.nodes_ever()).map(|i| NodeId::new(i as u32)) {
            if !self.is_alive(v) {
                continue;
            }
            for x in self.ghost.neighbors(v) {
                if !self.is_alive(x) && !self.forest.contains(Slot::new(v, x).real()) {
                    return Err(format!("missing leaf real({v}→{x})"));
                }
            }
        }

        // Image counts must equal original-intact + forest edges.
        let mut expected = ImageGraph::new();
        for _ in 0..self.nodes_ever() {
            expected.add_node();
        }
        for e in self.ghost.edges() {
            if self.is_alive(e.lo()) && self.is_alive(e.hi()) {
                expected.inc(e.lo(), e.hi());
            }
        }
        for (key, node) in self.forest.iter() {
            for child in node.left.iter().chain(node.right.iter()) {
                expected.inc(key.owner(), child.owner());
            }
        }
        for v in self.image.simple().iter() {
            for u in self.image.simple().neighbors(v) {
                if v < u && self.image.multiplicity(v, u) != expected.multiplicity(v, u) {
                    return Err(format!(
                        "image multiplicity mismatch at ({v},{u}): {} vs {}",
                        self.image.multiplicity(v, u),
                        expected.multiplicity(v, u)
                    ));
                }
            }
        }
        for v in expected.simple().iter() {
            for u in expected.simple().neighbors(v) {
                if v < u && !self.image.simple().has_edge(v, u) {
                    return Err(format!("image missing expected edge ({v},{u})"));
                }
            }
        }

        // Hard degree envelope: ≤ 1 (leaf/original) + 3 (helper) per slot.
        for v in self.image.simple().iter() {
            let d_img = self.image.simple().degree(v);
            let d_ghost = self.ghost.degree(v);
            if d_img > 4 * d_ghost {
                return Err(format!(
                    "degree envelope broken at {v}: {d_img} > 4·{d_ghost}"
                ));
            }
        }
        Ok(())
    }

    /// Maximum over live nodes of `deg(v, G) / deg(v, G')` — Theorem 1.1's
    /// measured quantity. Returns 0.0 for an empty network.
    pub fn max_degree_ratio(&self) -> f64 {
        self.image
            .simple()
            .iter()
            .filter(|&v| self.ghost.degree(v) > 0)
            .map(|v| self.image.simple().degree(v) as f64 / self.ghost.degree(v) as f64)
            .fold(0.0, f64::max)
    }
}

impl Default for ForgivingGraph {
    fn default() -> Self {
        Self::new()
    }
}

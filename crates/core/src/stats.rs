//! Lifetime counters and per-repair reports.

use fg_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Cumulative counters over the engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Nodes inserted (adversarial insertions, not counting `from_graph`).
    pub inserts: u64,
    /// Nodes deleted.
    pub deletes: u64,
    /// Helper nodes created by merges.
    pub helpers_created: u64,
    /// Helper nodes freed (red-marked fragments plus stripped spine nodes).
    pub helpers_freed: u64,
    /// Leaf nodes created (one per surviving neighbour per deletion).
    pub leaves_created: u64,
    /// Leaf nodes removed (when their owner was deleted).
    pub leaves_removed: u64,
    /// Times the cached representative was stale and a scan was needed.
    /// The paper's invariants say this stays 0; the engine self-heals and
    /// counts if it ever happens.
    pub rep_fallbacks: u64,
    /// Sum of BTv merge rounds over all repairs.
    pub btv_rounds: u64,
}

/// What one deletion repair did — the observable quantities behind
/// Theorem 1's cost claims, as seen by the sequential reference engine.
/// (Message-level costs come from `fg-dist`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairReport {
    /// The deleted node.
    pub deleted: NodeId,
    /// Its degree in `G'` at deletion time — the paper's `d`.
    pub ghost_degree: usize,
    /// How many of its neighbours were still alive.
    pub alive_neighbors: usize,
    /// Fragments (RTs and RT-fragments) that joined `BT_v`.
    pub fragments: usize,
    /// Complete trees collected across all fragments.
    pub trees_collected: usize,
    /// Helpers created during the merge.
    pub helpers_created: u64,
    /// Helpers freed (red + stripped spine).
    pub helpers_freed: u64,
    /// New leaves (one per alive neighbour).
    pub leaves_created: u64,
    /// Leaves removed (the victim's own endpoints).
    pub leaves_removed: u64,
    /// Bottom-up merge rounds (the height of `BT_v`).
    pub btv_rounds: u32,
    /// Leaf count of the final reconstruction tree (0 if none was needed).
    pub rt_leaves: u32,
    /// Depth of the final reconstruction tree.
    pub rt_depth: u32,
}

impl RepairReport {
    /// Upper envelope for virtual-node churn from Theorem 1.3:
    /// `O(d log n)` where `d` is the victim's `G'` degree.
    pub fn churn(&self) -> u64 {
        self.helpers_created + self.helpers_freed + self.leaves_created + self.leaves_removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_sums_all_virtual_node_traffic() {
        let r = RepairReport {
            deleted: NodeId::new(0),
            ghost_degree: 4,
            alive_neighbors: 3,
            fragments: 3,
            trees_collected: 3,
            helpers_created: 2,
            helpers_freed: 1,
            leaves_created: 3,
            leaves_removed: 1,
            btv_rounds: 2,
            rt_leaves: 3,
            rt_depth: 2,
        };
        assert_eq!(r.churn(), 7);
    }

    #[test]
    fn stats_default_is_zero() {
        let s = EngineStats::default();
        assert_eq!(s.inserts + s.deletes + s.helpers_created, 0);
    }
}

//! Lifetime counters over the engine's whole history.
//!
//! Per-operation reports live in [`crate::api`]; this module keeps the
//! cumulative view ([`EngineStats`]) used by experiments that track a
//! network over its lifetime rather than per event.

use serde::{Deserialize, Serialize};

/// Cumulative counters over the engine's lifetime, plus arena occupancy
/// gauges.
///
/// Equality compares only the **logical counters** (the first ten
/// fields): the gauges describe allocator layout, which compaction is
/// allowed to change without changing behaviour, so two engines that
/// healed identically stay equal even if one compacted its arena.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Nodes inserted (adversarial insertions, not counting `from_graph`).
    pub inserts: u64,
    /// Nodes deleted.
    pub deletes: u64,
    /// Helper nodes created by merges.
    pub helpers_created: u64,
    /// Helper nodes freed (red-marked fragments plus stripped spine nodes).
    pub helpers_freed: u64,
    /// Leaf nodes created (one per surviving neighbour per deletion).
    pub leaves_created: u64,
    /// Leaf nodes removed (when their owner was deleted).
    pub leaves_removed: u64,
    /// Image edge units added over the lifetime (adversarial attachments
    /// plus helper-join edges).
    pub edges_added: u64,
    /// Image edge units dropped over the lifetime (original releases plus
    /// every detached tree edge).
    pub edges_dropped: u64,
    /// Times the cached representative was stale and a scan was needed.
    /// The paper's invariants say this stays 0; the engine self-heals and
    /// counts if it ever happens.
    pub rep_fallbacks: u64,
    /// Sum of BTv merge rounds over all repairs.
    pub btv_rounds: u64,
    /// **Gauge** — virtual nodes currently live in the forest arena.
    pub arena_live: u64,
    /// **Gauge** — forest arena slots ever allocated (live + tombstones).
    /// `arena_live / arena_slots` is the live/ever slot ratio the
    /// compaction policy watches; without compaction it decays toward 0
    /// under churn because tombstoned slots are never reused.
    pub arena_slots: u64,
    /// Times the engine compacted its forest arena (see
    /// [`crate::ForgivingGraph::set_compaction`]). Stays 0 by default.
    pub compactions: u64,
}

impl EngineStats {
    /// The live/ever slot ratio of the forest arena — 1.0 when every
    /// slot ever allocated still holds a live virtual node, decaying
    /// toward 0 as churn tombstones slots. An empty arena counts as
    /// fully dense.
    #[must_use]
    pub fn arena_density(&self) -> f64 {
        if self.arena_slots == 0 {
            1.0
        } else {
            self.arena_live as f64 / self.arena_slots as f64
        }
    }
}

impl PartialEq for EngineStats {
    fn eq(&self, other: &Self) -> bool {
        // Logical counters only; arena gauges are layout, not behaviour.
        (
            self.inserts,
            self.deletes,
            self.helpers_created,
            self.helpers_freed,
            self.leaves_created,
            self.leaves_removed,
            self.edges_added,
            self.edges_dropped,
            self.rep_fallbacks,
            self.btv_rounds,
        ) == (
            other.inserts,
            other.deletes,
            other.helpers_created,
            other.helpers_freed,
            other.leaves_created,
            other.leaves_removed,
            other.edges_added,
            other.edges_dropped,
            other.rep_fallbacks,
            other.btv_rounds,
        )
    }
}

impl Eq for EngineStats {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_is_zero() {
        let s = EngineStats::default();
        assert_eq!(
            s.inserts + s.deletes + s.helpers_created + s.edges_added + s.edges_dropped,
            0
        );
        assert_eq!(s.arena_density(), 1.0);
    }

    #[test]
    fn equality_ignores_arena_gauges() {
        let a = EngineStats {
            inserts: 3,
            arena_live: 10,
            arena_slots: 40,
            compactions: 2,
            ..EngineStats::default()
        };
        let b = EngineStats {
            inserts: 3,
            arena_live: 40,
            arena_slots: 40,
            compactions: 0,
            ..EngineStats::default()
        };
        assert_eq!(a, b);
        assert_eq!(a.arena_density(), 0.25);
        assert_ne!(
            a,
            EngineStats {
                inserts: 4,
                ..EngineStats::default()
            }
        );
    }
}

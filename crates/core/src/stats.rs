//! Lifetime counters over the engine's whole history.
//!
//! Per-operation reports live in [`crate::api`]; this module keeps the
//! cumulative view ([`EngineStats`]) used by experiments that track a
//! network over its lifetime rather than per event.

use serde::{Deserialize, Serialize};

/// Cumulative counters over the engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Nodes inserted (adversarial insertions, not counting `from_graph`).
    pub inserts: u64,
    /// Nodes deleted.
    pub deletes: u64,
    /// Helper nodes created by merges.
    pub helpers_created: u64,
    /// Helper nodes freed (red-marked fragments plus stripped spine nodes).
    pub helpers_freed: u64,
    /// Leaf nodes created (one per surviving neighbour per deletion).
    pub leaves_created: u64,
    /// Leaf nodes removed (when their owner was deleted).
    pub leaves_removed: u64,
    /// Image edge units added over the lifetime (adversarial attachments
    /// plus helper-join edges).
    pub edges_added: u64,
    /// Image edge units dropped over the lifetime (original releases plus
    /// every detached tree edge).
    pub edges_dropped: u64,
    /// Times the cached representative was stale and a scan was needed.
    /// The paper's invariants say this stays 0; the engine self-heals and
    /// counts if it ever happens.
    pub rep_fallbacks: u64,
    /// Sum of BTv merge rounds over all repairs.
    pub btv_rounds: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_is_zero() {
        let s = EngineStats::default();
        assert_eq!(
            s.inserts + s.deletes + s.helpers_created + s.edges_added + s.edges_dropped,
            0
        );
    }
}

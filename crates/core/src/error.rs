//! Error types for the Forgiving Graph engine.

use fg_graph::NodeId;
use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::ForgivingGraph`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The node is unknown or already deleted.
    NotAlive(NodeId),
    /// An insertion listed no neighbours; new nodes must attach somewhere
    /// or the insert-only graph `G'` would be permanently disconnected.
    EmptyNeighbourhood,
    /// An insertion listed the same neighbour twice.
    DuplicateNeighbour(NodeId),
    /// An event inside a batch failed; `index` pinpoints the offender so
    /// a failing trace is debuggable ("earlier events stay applied" now
    /// says *which* event broke).
    AtEvent {
        /// Zero-based position of the failing event in the batch.
        index: usize,
        /// The failing event, rendered with its `Display` impl.
        event: String,
        /// The underlying insert/delete error.
        source: Box<EngineError>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NotAlive(v) => write!(f, "node {v} is not alive"),
            EngineError::EmptyNeighbourhood => {
                write!(f, "an inserted node needs at least one neighbour")
            }
            EngineError::DuplicateNeighbour(v) => {
                write!(f, "neighbour {v} listed more than once")
            }
            EngineError::AtEvent {
                index,
                event,
                source,
            } => {
                write!(f, "batch event #{index} ({event}) failed: {source}")
            }
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::AtEvent { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert_eq!(
            EngineError::NotAlive(NodeId::new(4)).to_string(),
            "node n4 is not alive"
        );
        assert!(EngineError::EmptyNeighbourhood
            .to_string()
            .contains("neighbour"));
        assert!(EngineError::DuplicateNeighbour(NodeId::new(1))
            .to_string()
            .contains("more than once"));
        let wrapped = EngineError::AtEvent {
            index: 3,
            event: "delete(n7)".to_string(),
            source: Box::new(EngineError::NotAlive(NodeId::new(7))),
        };
        assert_eq!(
            wrapped.to_string(),
            "batch event #3 (delete(n7)) failed: node n7 is not alive"
        );
        assert!(Error::source(&wrapped).is_some());
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<EngineError>();
    }
}

//! Edge slots and virtual-node keys.
//!
//! The paper's Table 1 keys every piece of repair state by an *edge of `G'`
//! seen from one endpoint*: processor `v` keeps fields for each edge
//! `(v, x)` it ever acquired. We call that oriented view a [`Slot`].
//!
//! Each slot owns up to two virtual nodes in the reconstruction forest:
//!
//! * the **real node** `Real(v, x)` — `v`'s endpoint of the edge, which
//!   becomes a leaf of a reconstruction tree once `x` is deleted, and
//! * the **helper node** `Helper(v, x)` — the at-most-one internal tree
//!   node that `v` simulates on behalf of this edge (Lemma 3.1).

use fg_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An edge of `G'` as seen from one endpoint: `owner` keeps this slot for
/// its edge to `other`.
///
/// Every `G'`-edge `(u, w)` yields exactly two slots: `(u → w)` and
/// `(w → u)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Slot {
    /// The processor holding this slot's state.
    pub owner: NodeId,
    /// The other endpoint of the `G'`-edge.
    pub other: NodeId,
}

impl Slot {
    /// Creates the slot for `owner`'s edge to `other`.
    ///
    /// # Panics
    ///
    /// Panics if `owner == other` (the graphs are simple).
    pub fn new(owner: NodeId, other: NodeId) -> Self {
        assert_ne!(owner, other, "a slot needs two distinct endpoints");
        Slot { owner, other }
    }

    /// The same edge seen from the opposite endpoint.
    pub fn reversed(self) -> Self {
        Slot {
            owner: self.other,
            other: self.owner,
        }
    }

    /// The key of the real (leaf) node for this slot.
    pub fn real(self) -> VKey {
        VKey {
            slot: self,
            kind: VKind::Real,
        }
    }

    /// The key of the helper node for this slot.
    pub fn helper(self) -> VKey {
        VKey {
            slot: self,
            kind: VKind::Helper,
        }
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.owner, self.other)
    }
}

/// Which of a slot's two virtual nodes a [`VKey`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VKind {
    /// The leaf node: the slot owner's endpoint of the edge.
    Real,
    /// The internal node simulated by the slot owner.
    Helper,
}

/// Identity of a virtual node in the reconstruction forest.
///
/// Ordered by `(owner, other, kind)` so that a `BTreeMap` range scan over
/// one owner visits all of a processor's virtual nodes — which is exactly
/// what a deletion must collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VKey {
    /// The slot this virtual node belongs to.
    pub slot: Slot,
    /// Leaf or helper.
    pub kind: VKind,
}

/// The per-owner remainder of a [`VKey`]: `(other, kind)`.
///
/// The arena-backed containers in this workspace bucket virtual nodes by
/// owner (owners are dense ids) and sort each bucket by this local key;
/// because the full key order is `(owner, other, kind)`, iterating buckets
/// in owner order and each bucket in local order visits keys in exactly
/// the global `VKey` order.
pub type LocalKey = (NodeId, VKind);

impl VKey {
    /// The processor that hosts (simulates) this virtual node.
    pub fn owner(self) -> NodeId {
        self.slot.owner
    }

    /// The per-owner part of the key (see `LocalKey`).
    pub fn local(self) -> LocalKey {
        (self.slot.other, self.kind)
    }

    /// Reassembles a key from an owner and its local part.
    pub fn from_local(owner: NodeId, (other, kind): LocalKey) -> Self {
        VKey {
            slot: Slot::new(owner, other),
            kind,
        }
    }

    /// Whether this is a leaf (real) node.
    pub fn is_real(self) -> bool {
        self.kind == VKind::Real
    }

    /// Whether this is a helper node.
    pub fn is_helper(self) -> bool {
        self.kind == VKind::Helper
    }
}

impl fmt::Display for VKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            VKind::Real => write!(f, "real({})", self.slot),
            VKind::Helper => write!(f, "helper({})", self.slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn slot_reversal() {
        let s = Slot::new(n(1), n(2));
        assert_eq!(s.reversed(), Slot::new(n(2), n(1)));
        assert_eq!(s.reversed().reversed(), s);
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn slot_rejects_self_edge() {
        let _ = Slot::new(n(3), n(3));
    }

    #[test]
    fn vkey_kinds() {
        let s = Slot::new(n(1), n(2));
        assert!(s.real().is_real());
        assert!(!s.real().is_helper());
        assert!(s.helper().is_helper());
        assert_eq!(s.real().owner(), n(1));
        assert_ne!(s.real(), s.helper());
    }

    #[test]
    fn vkeys_group_by_owner_in_order() {
        // All keys of owner 1 sort before any key of owner 2.
        let a = Slot::new(n(1), n(9)).helper();
        let b = Slot::new(n(2), n(0)).real();
        assert!(a < b);
    }

    #[test]
    fn local_key_roundtrip_preserves_order() {
        let a = Slot::new(n(1), n(4)).real();
        let b = Slot::new(n(1), n(4)).helper();
        let c = Slot::new(n(1), n(9)).real();
        assert!(a.local() < b.local() && b.local() < c.local());
        for key in [a, b, c] {
            assert_eq!(VKey::from_local(key.owner(), key.local()), key);
        }
    }

    #[test]
    fn display_forms() {
        let s = Slot::new(n(1), n(2));
        assert_eq!(s.to_string(), "n1→n2");
        assert_eq!(s.real().to_string(), "real(n1→n2)");
        assert_eq!(s.helper().to_string(), "helper(n1→n2)");
    }
}

//! Adversarial events: the two moves of the node-insert/delete model
//! (paper Figure 1).

use fg_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One adversarial step: insert a node with chosen connections, or delete
/// a node. The adversary is omniscient — strategies in `fg-adversary`
/// compute these from the full current topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkEvent {
    /// Insert a new node attached to the listed live nodes.
    Insert {
        /// The neighbours chosen by the adversary (distinct, live).
        neighbors: Vec<NodeId>,
    },
    /// Delete the given live node.
    Delete {
        /// The victim.
        node: NodeId,
    },
}

impl NetworkEvent {
    /// Convenience constructor for an insertion.
    pub fn insert<I: IntoIterator<Item = NodeId>>(neighbors: I) -> Self {
        NetworkEvent::Insert {
            neighbors: neighbors.into_iter().collect(),
        }
    }

    /// Convenience constructor for a deletion.
    pub fn delete(node: NodeId) -> Self {
        NetworkEvent::Delete { node }
    }

    /// Whether this event is a deletion.
    pub fn is_delete(&self) -> bool {
        matches!(self, NetworkEvent::Delete { .. })
    }
}

impl fmt::Display for NetworkEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkEvent::Insert { neighbors } => {
                // Readable in trace logs: list small neighbourhoods in
                // full, summarise heavy-fan inserts.
                write!(f, "insert(")?;
                if neighbors.len() <= 6 {
                    for (i, x) in neighbors.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{x}")?;
                    }
                } else {
                    write!(f, "deg {}", neighbors.len())?;
                }
                write!(f, ")")
            }
            NetworkEvent::Delete { node } => write!(f, "delete({node})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let e = NetworkEvent::insert([NodeId::new(1), NodeId::new(2)]);
        assert!(!e.is_delete());
        assert_eq!(e.to_string(), "insert(n1 n2)");
        let wide = NetworkEvent::insert((0..9).map(NodeId::new));
        assert_eq!(wide.to_string(), "insert(deg 9)");
        let d = NetworkEvent::delete(NodeId::new(7));
        assert!(d.is_delete());
        assert_eq!(d.to_string(), "delete(n7)");
    }
}

//! The read-side query API: [`QueryOps`] over any [`GraphView`], and the
//! incrementally invalidated [`QueryCache`] for mixed read/write
//! workloads.
//!
//! The paper frames the Forgiving Graph as a *data structure answering
//! distance queries between repairs* — this module is that API surface.
//! [`QueryOps`] is blanket-implemented for every [`GraphView`], so any
//! view obtained from a [`SelfHealer`](crate::SelfHealer) (engine,
//! distributed protocol, baselines) answers:
//!
//! * [`distance`](QueryOps::distance) / [`path`](QueryOps::path) — exact
//!   shortest hops on the healed image, by the bidirectional BFS kernel
//!   in [`fg_graph::traversal`];
//! * [`neighbors`](QueryOps::neighbors) / [`degree`](QueryOps::degree) /
//!   [`same_component`](QueryOps::same_component) — local and
//!   connectivity reads;
//! * [`stretch`](QueryOps::stretch) — the paper's success metric for one
//!   pair: image distance over distance in the remembered ideal graph
//!   `G'`, via the single shared ratio convention [`stretch_ratio`]
//!   (the same definition `fg_metrics`' aggregate measurements consume).
//!
//! [`QueryCache`] is the serving layer for read-heavy workloads: it
//! memoizes full single-source distance vectors ("landmarks") over both
//! graphs and answers repeated queries in O(1)/O(path) instead of one
//! BFS per query. Crucially it is **incrementally invalidated by the
//! typed reports of the write path** ([`NetworkEvent`] +
//! [`HealOutcome`]) rather than rebuilt per query — see
//! [`QueryCache::note_event`] for the exact soundness rules, and
//! DESIGN.md §10 for the proofs.

use crate::api::{BatchReport, HealOutcome};
use crate::event::NetworkEvent;
use crate::view::{GraphView, QuerySide, QuerySource};
use fg_graph::traversal::{self, DistanceVec};
use fg_graph::{FrozenCsr, Graph, NodeId};
use std::collections::VecDeque;

/// The single stretch-ratio convention, shared by [`QueryOps::stretch`]
/// and `fg_metrics`' aggregate stretch measurements:
///
/// * both distances known → `image / max(1, ghost)`;
/// * connected in `G'` but not in the image → `∞` (a healing failure);
/// * disconnected in `G'` → `None` (legitimately disconnected; the pair
///   is not measured).
pub fn stretch_ratio(ghost: Option<u32>, image: Option<u32>) -> Option<f64> {
    match (ghost, image) {
        (Some(g), Some(i)) => Some(f64::from(i) / f64::from(g.max(1))),
        (Some(_), None) => Some(f64::INFINITY),
        (None, _) => None,
    }
}

/// Read operations over a snapshot view, blanket-implemented for every
/// [`GraphView`].
///
/// All answers are **exact** (never approximations) and refer to the
/// view's epoch. Pairwise operations return `None` when an endpoint is
/// not live in the image.
///
/// # Examples
///
/// ```
/// use fg_core::query::QueryOps;
/// use fg_core::{ForgivingGraph, SelfHealer};
/// use fg_graph::{generators, NodeId};
///
/// let mut fg = ForgivingGraph::from_graph(&generators::cycle(8))?;
/// fg.delete(NodeId::new(3))?;
/// let view = fg.view();
/// let (u, v) = (NodeId::new(2), NodeId::new(4));
/// let d = view.distance(u, v).unwrap();
/// let path = view.path(u, v).unwrap();
/// assert_eq!(path.len() as u32, d + 1);
/// assert!(view.same_component(u, v));
/// // Stretch compares the healed route against ghost distance 2
/// // (through the deleted node) — the repair may even shortcut it.
/// assert_eq!(view.stretch(u, v), Some(f64::from(d) / 2.0));
/// assert_eq!(view.degree(NodeId::new(3)), None); // dead nodes answer None
/// # Ok::<(), fg_core::EngineError>(())
/// ```
pub trait QueryOps: GraphView {
    /// Whether `u` is live in the image at this view's epoch.
    fn alive(&self, u: NodeId) -> bool {
        self.image().contains(u)
    }

    /// `u`'s degree in the healed image; `None` when `u` is not live.
    fn degree(&self, u: NodeId) -> Option<usize> {
        self.alive(u).then(|| self.image().degree(u))
    }

    /// `u`'s image neighbours in increasing id order (empty when dead).
    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        self.image().neighbor_vec(u)
    }

    /// Exact shortest-path hops between `u` and `v` in the healed image
    /// (bidirectional BFS); `None` when either is dead or the pair is
    /// disconnected.
    fn distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        traversal::bidirectional_distance(self.image(), u, v)
    }

    /// A shortest image path from `u` to `v` inclusive of both
    /// endpoints: exactly `distance(u, v) + 1` nodes, consecutive nodes
    /// adjacent.
    fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        traversal::shortest_path(self.image(), u, v)
    }

    /// Whether `u` and `v` are live and mutually reachable in the image.
    fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.distance(u, v).is_some()
    }

    /// The pair's network stretch: image distance over distance in the
    /// remembered ideal graph `G'` (whose paths may pass through deleted
    /// nodes), per [`stretch_ratio`]. `None` when an endpoint is dead or
    /// the pair is disconnected even in `G'`.
    fn stretch(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if !self.alive(u) || !self.alive(v) {
            return None;
        }
        let ghost = traversal::bidirectional_distance(self.ghost(), u, v);
        let image = traversal::bidirectional_distance(self.image(), u, v);
        stretch_ratio(ghost, image)
    }
}

impl<T: GraphView + ?Sized> QueryOps for T {}

/// Counters describing what a [`QueryCache`] did — exposed for bench
/// reports and the differential suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a cached distance vector.
    pub hits: u64,
    /// Queries that had to run a fresh BFS (which then populated the
    /// cache).
    pub misses: u64,
    /// Vectors kept current *in place* across a write batch by the
    /// seeded relaxation (instead of being dropped and recomputed).
    pub repaired: u64,
    /// Vectors dropped by an invalidating write (a deletion whose victim
    /// the vector's source could reach).
    pub dropped: u64,
    /// Vectors evicted by the capacity bound (least-recently-used).
    pub evicted: u64,
    /// Full flushes forced by an epoch mismatch (writes the cache was
    /// not told about).
    pub flushes: u64,
}

/// One cached landmark: a source node, its full distance vector over one
/// graph, and the merge-dirty flag (see [`QueryCache`]'s invalidation
/// rules).
#[derive(Debug, Clone)]
struct Landmark {
    src: NodeId,
    vec: DistanceVec,
    /// Set while an un-relaxed insert may have extended this source's
    /// reachable set beyond what `vec`'s `Some`/`None` pattern shows
    /// (a component merge); cleared by the end-of-batch relaxation.
    merge_dirty: bool,
    /// Recency stamp from the store's tick counter — the eviction key.
    used: u64,
}

/// One side's landmark store: full single-source distance vectors over
/// one graph. Recency is tracked with a monotone tick stamped onto each
/// entry on use — a hit is a scan plus one integer write, with none of
/// the entry shuffling a move-to-front list would pay per hit — and
/// eviction removes the minimum stamp, which is exactly the
/// least-recently-used entry.
#[derive(Debug, Clone, Default)]
struct VectorStore {
    entries: Vec<Landmark>,
    tick: u64,
}

impl VectorStore {
    fn clear(&mut self) {
        self.entries.clear();
    }

    /// Index of the entry sourced at `a` or (failing that) `b`.
    fn find(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let mut fallback = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.src == a {
                return Some(i);
            }
            if e.src == b {
                fallback = Some(i);
            }
        }
        fallback
    }

    /// The entry for `a` or `b`, computing (and caching) a fresh BFS
    /// from `a` on a miss. The BFS runs through [`QuerySide`], so a
    /// frozen source rebuilds its landmarks with the dense CSR kernels
    /// while a live source keeps using [`traversal::bfs_distances`] —
    /// both produce identical vectors.
    fn fetch(
        &mut self,
        side: &(impl QuerySide + ?Sized),
        a: NodeId,
        b: NodeId,
        capacity: usize,
        stats: &mut CacheStats,
    ) -> &Landmark {
        if let Some(i) = self.find(a, b) {
            stats.hits += 1;
            self.tick += 1;
            self.entries[i].used = self.tick;
            return &self.entries[i];
        }
        stats.misses += 1;
        while self.entries.len() >= capacity {
            stats.evicted += 1;
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.used)
                .map(|(i, _)| i)
                .expect("non-empty store at capacity");
            self.entries.swap_remove(lru);
        }
        self.tick += 1;
        self.entries.push(Landmark {
            src: a,
            vec: side.distances_from(a),
            merge_dirty: false,
            used: self.tick,
        });
        self.entries.last().expect("entry just pushed")
    }
}

/// Folds one insertion into a landmark without repairing distances yet:
/// the new node's slot gets its best upper bound through the attachment
/// edges (`min over reachable neighbours + 1`), and the merge-dirty flag
/// is raised when the insert touches both reachable and unreachable
/// neighbours — the one case where the source's reachable set may grow
/// beyond what the un-relaxed vector shows.
fn fold_insert(e: &mut Landmark, node: NodeId, neighbors: &[NodeId]) {
    // Kept vectors always cover exactly the pre-event node set, so the
    // new node's slot is `vec.len()`.
    debug_assert_eq!(e.vec.len(), node.index());
    let mut best: Option<u32> = None;
    let mut unreachable = false;
    for a in neighbors {
        match e.vec.get(a.index()).copied().flatten() {
            Some(d) => best = Some(best.map_or(d + 1, |b: u32| b.min(d + 1))),
            None => unreachable = true,
        }
    }
    if best.is_some() && unreachable {
        e.merge_dirty = true;
    }
    e.vec.push(best);
}

/// Exact post-insert repair of a distance vector: with only node
/// insertions applied since the vector was valid, distances can only
/// shrink, and every shortened (or newly connected) path passes through
/// an inserted node — so a relaxation seeded at the new nodes and run to
/// fixpoint over the *current* graph restores exactness. Nodes are
/// re-queued whenever they improve, so out-of-order improvements (chains
/// of new nodes, component merges) converge to true shortest distances.
fn relax_from_new_nodes(side: &(impl QuerySide + ?Sized), vec: &mut DistanceVec, seeds: &[NodeId]) {
    let mut queue: VecDeque<NodeId> = seeds
        .iter()
        .copied()
        .filter(|w| vec[w.index()].is_some())
        .collect();
    while let Some(x) = queue.pop_front() {
        let Some(dx) = vec[x.index()] else { continue };
        side.for_neighbors(x, |y| {
            let cand = dx + 1;
            if vec[y.index()].is_none_or(|old| old > cand) {
                vec[y.index()] = Some(cand);
                queue.push_back(y);
            }
        });
    }
}

/// A landmark/pivot cache over a healer's views: memoized single-source
/// distance vectors for the image and the ghost, answering
/// [`distance`](QueryCache::distance) / [`path`](QueryCache::path) /
/// [`stretch`](QueryCache::stretch) /
/// [`same_component`](QueryCache::same_component) **exactly** — every
/// answer equals the corresponding fresh [`QueryOps`] answer, which the
/// query differential suite asserts along the adversarial traces.
///
/// # Incremental invalidation
///
/// The cache is kept sound by feeding it the write path's own typed
/// outcomes ([`note_event`](QueryCache::note_event) /
/// [`note_batch`](QueryCache::note_batch)) instead of rebuilding per
/// query. Per batch, each kept vector folds the events in order and is
/// then repaired in place; the rules (soundness arguments in DESIGN.md
/// §10):
///
/// * **Insertions never invalidate.** New edges are all incident to the
///   new node, so distances only shrink, and every shortened or newly
///   connected path passes through an inserted node — a relaxation
///   seeded at the batch's new nodes, run to fixpoint against the
///   post-batch graph (`relax_from_new_nodes`), restores exactness.
/// * **Deletion**: a vector is dropped iff its source could reach the
///   victim (or a pending component merge makes reachability uncertain
///   — the merge-dirty flag). Repairs only ever touch the victim's
///   component (every participant is a ghost-neighbour of the victim,
///   kept connected by the healing invariant), so unreachable sources
///   are unaffected.
/// * **Ghost vectors survive everything** (`G'` is insert-only, so only
///   the insert relaxation applies) — which is what makes cached
///   [`stretch`](QueryCache::stretch) cheap under churn.
///
/// If the underlying healer advanced without the cache being told (the
/// view's epoch disagrees with the cache's), every entry is flushed —
/// stale answers are structurally impossible, not just unlikely.
///
/// # Examples
///
/// ```
/// use fg_core::query::{QueryCache, QueryOps};
/// use fg_core::{ForgivingGraph, NetworkEvent, SelfHealer};
/// use fg_graph::{generators, NodeId};
///
/// let mut fg = ForgivingGraph::from_graph(&generators::cycle(16))?;
/// let mut cache = QueryCache::new(32);
/// let (u, v) = (NodeId::new(1), NodeId::new(9));
/// assert_eq!(cache.distance(&fg.view(), u, v), Some(8));
/// assert_eq!(cache.distance(&fg.view(), u, NodeId::new(2)), Some(1));
/// assert_eq!(cache.stats().misses, 1); // one BFS served both queries
///
/// // Writes invalidate incrementally through their typed outcomes.
/// let event = NetworkEvent::delete(NodeId::new(5));
/// let outcome = fg.apply_event(&event)?;
/// cache.note_event(&fg.view(), &event, &outcome);
/// assert_eq!(cache.distance(&fg.view(), u, v), fg.view().distance(u, v));
/// # Ok::<(), fg_core::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QueryCache {
    capacity: usize,
    /// The epoch the cache's entries are valid at, once it has seen a
    /// view.
    synced: Option<u64>,
    image: VectorStore,
    ghost: VectorStore,
    stats: CacheStats,
}

impl QueryCache {
    /// A cache holding up to `capacity` distance vectors per graph side
    /// (least-recently-used eviction).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero. A zero-capacity cache cannot hold
    /// even the vector it just computed, so every lookup would silently
    /// degrade to a full BFS while still reporting cache statistics;
    /// callers that want no caching should use the uncached
    /// [`QueryOps`] API instead of constructing a cache.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "QueryCache capacity must be at least 1: a zero-capacity cache cannot \
             hold any landmark vector (use the uncached QueryOps API instead)"
        );
        QueryCache {
            capacity,
            synced: None,
            image: VectorStore::default(),
            ghost: VectorStore::default(),
            stats: CacheStats::default(),
        }
    }

    /// What the cache has done so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Cached distance vectors currently held, summed across the image
    /// and ghost sides (each side is bounded by the capacity
    /// separately).
    pub fn len(&self) -> usize {
        self.image.entries.len() + self.ghost.entries.len()
    }

    /// Whether the cache holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached vector (stats are kept).
    pub fn flush(&mut self) {
        self.image.clear();
        self.ghost.clear();
        self.synced = None;
    }

    /// Reconciles the cache with `view`'s epoch: on a mismatch (a write
    /// the cache was not told about) everything is flushed, so answers
    /// can never be stale.
    fn sync(&mut self, view: &(impl QuerySource + ?Sized)) {
        let epoch = view.source_epoch();
        if self.synced != Some(epoch) {
            if self.synced.is_some() {
                self.stats.flushes += 1;
            }
            self.image.clear();
            self.ghost.clear();
            self.synced = Some(epoch);
        }
    }

    /// Applies one write's invalidation rules (see the type docs) and
    /// advances the cache's epoch by one. `view` is the healer's state
    /// *after* the event was applied.
    pub fn note_event(
        &mut self,
        view: &(impl QuerySource + ?Sized),
        event: &NetworkEvent,
        outcome: &HealOutcome,
    ) {
        self.note_all(
            view,
            std::slice::from_ref(event),
            std::slice::from_ref(outcome),
        );
    }

    /// [`QueryCache::note_event`] over a whole ingestion batch: each
    /// event pairs with its outcome from the batch report, deletions
    /// fold their drop rules in order, and one relaxation pass per kept
    /// vector repairs it against the post-batch `view`.
    pub fn note_batch(
        &mut self,
        view: &(impl QuerySource + ?Sized),
        events: &[NetworkEvent],
        report: &BatchReport,
    ) {
        self.note_all(view, events, &report.outcomes);
    }

    fn note_all(
        &mut self,
        view: &(impl QuerySource + ?Sized),
        events: &[NetworkEvent],
        outcomes: &[HealOutcome],
    ) {
        let target = view.source_epoch();
        let consistent = events.len() == outcomes.len()
            && match self.synced {
                None => true,
                Some(e) => e + events.len() as u64 == target,
            };
        if !consistent {
            // The caller skipped events (or paired the wrong outcomes):
            // folding would corrupt the vectors, so flush instead.
            if !self.image.entries.is_empty() || !self.ghost.entries.is_empty() {
                self.stats.flushes += 1;
            }
            self.image.clear();
            self.ghost.clear();
            self.synced = Some(target);
            return;
        }

        // The batch's inserted nodes — the relaxation seeds.
        let seeds: Vec<NodeId> = outcomes.iter().filter_map(HealOutcome::node).collect();

        // Image side: fold inserts (slot extension) and deletions (drop
        // rules) in order, then repair survivors against the new image.
        let stats = &mut self.stats;
        self.image.entries.retain_mut(|e| {
            for (event, outcome) in events.iter().zip(outcomes) {
                match (event, outcome) {
                    (NetworkEvent::Insert { neighbors }, HealOutcome::Inserted { node, .. }) => {
                        fold_insert(e, *node, neighbors);
                    }
                    (NetworkEvent::Delete { node }, HealOutcome::Repaired { .. }) => {
                        if e.merge_dirty || e.vec[node.index()].is_some() {
                            stats.dropped += 1;
                            return false;
                        }
                    }
                    // Mismatched pair: the consistency check above makes
                    // this unreachable, but drop soundly regardless.
                    _ => {
                        stats.dropped += 1;
                        return false;
                    }
                }
            }
            true
        });
        // Ghost side: `G'` is insert-only, so deletions are no-ops and
        // every vector survives.
        for (event, outcome) in events.iter().zip(outcomes) {
            if let (NetworkEvent::Insert { neighbors }, HealOutcome::Inserted { node, .. }) =
                (event, outcome)
            {
                for e in &mut self.ghost.entries {
                    fold_insert(e, *node, neighbors);
                }
            }
        }
        if !seeds.is_empty() {
            for e in &mut self.image.entries {
                relax_from_new_nodes(view.image_side(), &mut e.vec, &seeds);
                e.merge_dirty = false;
                stats.repaired += 1;
            }
            for e in &mut self.ghost.entries {
                relax_from_new_nodes(view.ghost_side(), &mut e.vec, &seeds);
                e.merge_dirty = false;
                stats.repaired += 1;
            }
        }
        self.synced = Some(target);
    }

    /// Cached [`QueryOps::distance`]: exact, O(1) after the source (or
    /// target) vector is resident.
    pub fn distance(
        &mut self,
        view: &(impl QuerySource + ?Sized),
        u: NodeId,
        v: NodeId,
    ) -> Option<u32> {
        self.sync(view);
        let image = view.image_side();
        if !image.contains(u) || !image.contains(v) {
            return None;
        }
        Self::lookup(&mut self.image, image, u, v, self.capacity, &mut self.stats)
    }

    /// The one landmark lookup: fetch the vector sourced at `u` or `v`
    /// (computing from `u` on a miss) and read the other endpoint's
    /// distance.
    fn lookup(
        store: &mut VectorStore,
        side: &(impl QuerySide + ?Sized),
        u: NodeId,
        v: NodeId,
        capacity: usize,
        stats: &mut CacheStats,
    ) -> Option<u32> {
        let lm = store.fetch(side, u, v, capacity, stats);
        let other = if lm.src == u { v } else { u };
        lm.vec[other.index()]
    }

    /// Cached [`QueryOps::path`]: the hop count comes from a cached
    /// vector; the concrete shortest path is recovered by descending the
    /// distance gradient through the image adjacency.
    pub fn path(
        &mut self,
        view: &(impl QuerySource + ?Sized),
        u: NodeId,
        v: NodeId,
    ) -> Option<Vec<NodeId>> {
        self.sync(view);
        let image = view.image_side();
        if !image.contains(u) || !image.contains(v) {
            return None;
        }
        if u == v {
            return Some(vec![u]);
        }
        let lm = self
            .image
            .fetch(image, u, v, self.capacity, &mut self.stats);
        let (source, far) = (lm.src, if lm.src == u { v } else { u });
        let vec = &lm.vec;
        let mut hops = vec[far.index()]?;
        // Walk downhill from `far` to the vector's source: every node at
        // distance d > 0 has a neighbour at distance d - 1.
        let mut down = Vec::with_capacity(hops as usize + 1);
        let mut cur = far;
        down.push(cur);
        while hops > 0 {
            cur = image
                .find_neighbor(cur, |w| vec[w.index()] == Some(hops - 1))
                .expect("distance gradients descend to their source");
            down.push(cur);
            hops -= 1;
        }
        debug_assert_eq!(down.last(), Some(&source));
        if source == u {
            down.reverse();
        }
        Some(down)
    }

    /// Cached [`QueryOps::same_component`].
    pub fn same_component(
        &mut self,
        view: &(impl QuerySource + ?Sized),
        u: NodeId,
        v: NodeId,
    ) -> bool {
        self.distance(view, u, v).is_some()
    }

    /// Cached [`QueryOps::stretch`] — image distance from the image-side
    /// store, `G'` distance from the ghost-side store (which deletions
    /// never invalidate).
    pub fn stretch(
        &mut self,
        view: &(impl QuerySource + ?Sized),
        u: NodeId,
        v: NodeId,
    ) -> Option<f64> {
        self.sync(view);
        if !view.image_side().contains(u) || !view.image_side().contains(v) {
            return None;
        }
        let image_d = Self::lookup(
            &mut self.image,
            view.image_side(),
            u,
            v,
            self.capacity,
            &mut self.stats,
        );
        let ghost_d = Self::lookup(
            &mut self.ghost,
            view.ghost_side(),
            u,
            v,
            self.capacity,
            &mut self.stats,
        );
        stretch_ratio(ghost_d, image_d)
    }
}

/// One landmark of the [`FrozenQueryCache`]: a source node and a flat
/// `u32` distance vector with [`FrozenCsr::UNREACHED`] marking
/// unreachable slots. Image-side entries are indexed by the published
/// snapshot's *dense* ids (live-sized — 4 bytes per live node); ghost
/// entries are indexed by [`NodeId::index`] (`G'` never deletes, so its
/// ids never need remapping).
#[derive(Debug, Clone)]
struct DenseLandmark {
    src: NodeId,
    vec: Vec<u32>,
    /// Recency stamp — the eviction key, exactly as in [`QueryCache`].
    used: u64,
}

/// Index of the entry sourced at `a` or (failing that) `b` — the same
/// preference order as the live cache's `VectorStore::find`.
fn find_dense(entries: &[DenseLandmark], a: NodeId, b: NodeId) -> Option<usize> {
    let mut fallback = None;
    for (i, e) in entries.iter().enumerate() {
        if e.src == a {
            return Some(i);
        }
        if e.src == b {
            fallback = Some(i);
        }
    }
    fallback
}

/// Evicts minimum-stamp entries until one more fits under `capacity`.
fn evict_dense(entries: &mut Vec<DenseLandmark>, capacity: usize, stats: &mut CacheStats) {
    while entries.len() >= capacity {
        stats.evicted += 1;
        let lru = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.used)
            .map(|(i, _)| i)
            .expect("non-empty store at capacity");
        entries.swap_remove(lru);
    }
}

/// [`fold_insert`] over a flat sentinel vector: the new node's slot gets
/// its best upper bound through the attachment edges; exactness is
/// restored by the end-of-batch seeded relaxation (the merge-dirty flag
/// is unnecessary here — the ghost never deletes, so nothing ever asks
/// whether a source's reachable set might have silently grown).
///
/// Returns whether the new node is an *active* seed for this vector:
/// some attachment neighbor sits further than `bound + 1` (including
/// the sentinel — a component merge), so relaxing through the new node
/// can actually improve something. The fold has already read every
/// neighbor slot the relaxation's initial probe would re-read, so
/// inactive seeds — the overwhelmingly common case — make the
/// relaxation free. Soundness: if no seed of a batch is active, no
/// pre-existing slot changes, so every folded bound (computed from
/// those slots) is already exact; if some seed is active, any node the
/// relaxation improves is queued and propagates, which re-discovers
/// exactly the chains a full seeding would.
fn fold_insert_dense(vec: &mut Vec<u32>, node: NodeId, neighbors: &[NodeId]) -> bool {
    debug_assert_eq!(vec.len(), node.index());
    let mut best = FrozenCsr::UNREACHED;
    for a in neighbors {
        if let Some(&d) = vec.get(a.index()) {
            if d != FrozenCsr::UNREACHED {
                best = best.min(d + 1);
            }
        }
    }
    let active = best != FrozenCsr::UNREACHED
        && neighbors
            .iter()
            .any(|a| vec.get(a.index()).is_some_and(|&d| d > best + 1));
    vec.push(best);
    active
}

/// The frozen tier's persistent ghost adjacency: a contiguous CSR base
/// (rows as of the last compaction) plus per-node overflow rows for
/// edges appended since, compacted when the overflow grows past a fixed
/// fraction of the base.
///
/// `G'` only ever gains structure, and every appended id is the largest
/// yet issued, so base-then-overflow concatenation keeps each row
/// ascending — compaction is a pure merge, never a sort. The layout
/// exists because the ghost is the *tombstone-free* side: after heavy
/// churn it dwarfs the live image, and landmark misses must BFS all of
/// it — walking contiguous rows instead of pointer-chasing one heap
/// allocation per node is where the miss cost goes.
#[derive(Debug, Clone, Default)]
struct GhostAdj {
    /// Base CSR row bounds; node `x`'s base row is
    /// `targets[offsets[x]..offsets[x + 1]]` when `x + 1 < offsets.len()`
    /// (nodes issued after the last compaction have no base row yet).
    offsets: Vec<u32>,
    targets: Vec<u32>,
    /// Edges appended since the last compaction, indexed by node.
    extra: Vec<Vec<u32>>,
    /// Total edge-ends across `extra` — the compaction trigger.
    extra_edges: usize,
}

impl GhostAdj {
    /// Overflow edge-ends are allowed up to 1/8 of the base before a
    /// compaction folds them in: rebuild work stays `O(edges)` per
    /// 12.5% growth, i.e. amortized-constant per appended edge.
    const COMPACT_DIVISOR: usize = 8;

    fn node_count(&self) -> usize {
        self.extra.len()
    }

    /// Rebuilds base rows from the live ghost graph (the resync lane).
    fn rebuild_from(&mut self, ghost: &Graph) {
        let n = ghost.nodes_ever();
        self.offsets = Vec::with_capacity(n + 1);
        self.targets.clear();
        self.offsets.push(0);
        for i in 0..n {
            self.targets.extend(
                ghost
                    .neighbors(NodeId::new(i as u32))
                    .map(|w| w.index() as u32),
            );
            self.offsets.push(self.targets.len() as u32);
        }
        self.extra = vec![Vec::new(); n];
        self.extra_edges = 0;
    }

    /// The two ascending halves of node `x`'s row: base, then overflow.
    fn row(&self, x: u32) -> (&[u32], &[u32]) {
        let x = x as usize;
        let base = if x + 1 < self.offsets.len() {
            &self.targets[self.offsets[x] as usize..self.offsets[x + 1] as usize]
        } else {
            &[]
        };
        (base, &self.extra[x])
    }

    /// Appends a freshly inserted node's row (its ids all smaller than
    /// the node's own, so it lands whole in overflow).
    fn push_node(&mut self, row: Vec<u32>) {
        self.extra_edges += row.len();
        self.extra.push(row);
    }

    /// Appends one edge-end to an existing node's row.
    fn push_edge_end(&mut self, x: u32, y: u32) {
        self.extra[x as usize].push(y);
        self.extra_edges += 1;
    }

    /// Folds the overflow into the base once it is large enough to slow
    /// row walks down.
    fn maybe_compact(&mut self) {
        if self.extra_edges * Self::COMPACT_DIVISOR <= self.targets.len().max(64) {
            return;
        }
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len() + self.extra_edges);
        offsets.push(0);
        for x in 0..n as u32 {
            let (base, extra) = self.row(x);
            targets.extend_from_slice(base);
            targets.extend_from_slice(extra);
            offsets.push(targets.len() as u32);
        }
        self.offsets = offsets;
        self.targets = targets;
        self.extra = vec![Vec::new(); n];
        self.extra_edges = 0;
    }
}

/// [`relax_from_new_nodes`] over the ghost adjacency, seeded only at the
/// batch's *active* new nodes (see [`fold_insert_dense`]), run to
/// fixpoint. The sentinel is `u32::MAX`, so "unreachable or worse" is
/// one comparison.
fn relax_dense(adj: &GhostAdj, vec: &mut [u32], seeds: &[u32]) {
    let mut queue: VecDeque<u32> = seeds.iter().copied().collect();
    while let Some(x) = queue.pop_front() {
        let dx = vec[x as usize];
        debug_assert_ne!(dx, FrozenCsr::UNREACHED);
        let cand = dx + 1;
        let (base, extra) = adj.row(x);
        for &y in base.iter().chain(extra) {
            if vec[y as usize] > cand {
                vec[y as usize] = cand;
                queue.push_back(y);
            }
        }
    }
}

/// Single-source BFS over the ghost adjacency, sentinel-valued (the
/// distance slot doubles as the visited mark), stopping as soon as
/// every node marked in `live` is settled.
///
/// The truncation is sound because ghost landmark vectors are only ever
/// *read* at image-live endpoints, reads gate on the published image,
/// and among already-issued ids the live set only shrinks — so every
/// future read hits a settled slot. Slots left at the sentinel are
/// still valid upper bounds (∞) for the fold/relax maintenance, which
/// only ever lowers them along real ghost edges.
fn bfs_dense_adj(adj: &GhostAdj, live: &[bool], live_count: u32, src: NodeId) -> Vec<u32> {
    let mut dist = vec![FrozenCsr::UNREACHED; adj.node_count()];
    let s = src.index();
    if s >= dist.len() {
        return dist;
    }
    let mut remaining = live_count;
    let settle = |y: usize, remaining: &mut u32| {
        if live.get(y).copied().unwrap_or(false) {
            *remaining -= 1;
        }
    };
    dist[s] = 0;
    settle(s, &mut remaining);
    let mut frontier = vec![s as u32];
    let mut next = Vec::new();
    let mut depth = 0u32;
    while !frontier.is_empty() && remaining > 0 {
        depth += 1;
        for &x in &frontier {
            let (base, extra) = adj.row(x);
            for &y in base.iter().chain(extra) {
                if dist[y as usize] == FrozenCsr::UNREACHED {
                    dist[y as usize] = depth;
                    settle(y as usize, &mut remaining);
                    next.push(y);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

/// The dedicated frozen serving tier: answers the cached query surface
/// **entirely from its own epoch snapshot**, never touching the live
/// adjacency on the read path.
///
/// [`QueryCache`] retargeted onto a [`FrozenView`](crate::FrozenView)
/// proves the kernels are interchangeable, but it inherits the live
/// cache's economics: full-universe `DistanceVec`s, per-batch
/// invalidation drops, and a ghost CSR rebuild per freeze even though
/// `G'` only ever *gains* structure. This tier restructures all three
/// costs around what actually changes per epoch:
///
/// * **Image side — per-epoch memos.** [`publish`](Self::publish) copies
///   only the *image* into [`FrozenCsr`] form (the cheap side: live-sized
///   after churn) and clears the landmark memos. A miss runs the dense
///   bitset kernel ([`FrozenCsr::bfs_dense`]) and keeps the live-sized
///   `u32` vector — no `nodes_ever`-shaped allocation, and **no
///   invalidation logic at all**: the snapshot is immutable, so a memo
///   can never go stale within its epoch.
/// * **Ghost side — persistent landmarks over an append-only
///   adjacency.** `G'` never deletes, so the tier maintains its own flat
///   copy of the ghost adjacency, extended per batch from the insert
///   outcomes (the authoritative rows come from the post-batch ghost
///   graph), and repairs its ghost vectors in place with the same
///   fold-then-relax rules as [`QueryCache`]'s ghost side (DESIGN.md
///   §10) — the expensive per-freeze ghost CSR rebuild disappears from
///   the steady state entirely.
///
/// Every scalar answer (distance, stretch, component, degree) equals the
/// live [`QueryOps`] answer at the published epoch; paths are recovered
/// by descending the memo's distance gradient, so they are valid
/// shortest paths whose node choice may differ from the bidirectional
/// kernel's (the differential suites check length, endpoints and edge
/// validity). If the writer advances without
/// [`note_batch`](Self::note_batch) being told, the ghost state flushes
/// and rebuilds — stale answers are structurally impossible.
///
/// # Examples
///
/// ```
/// use fg_core::{ForgivingGraph, FrozenQueryCache, NetworkEvent, QueryOps, SelfHealer};
/// use fg_graph::{generators, NodeId};
///
/// let mut fg = ForgivingGraph::from_graph(&generators::cycle(12))?;
/// let mut tier = FrozenQueryCache::new(16);
/// tier.publish(&fg.view());
/// let (u, v) = (NodeId::new(1), NodeId::new(7));
/// assert_eq!(tier.distance(u, v), Some(6));
///
/// // Per write batch: one maintenance call, one (image-only) publish.
/// let event = NetworkEvent::delete(NodeId::new(4));
/// let outcome = fg.apply_event(&event)?;
/// tier.note_event(&fg.view(), &event, &outcome);
/// tier.publish(&fg.view());
/// assert_eq!(tier.distance(u, v), fg.view().distance(u, v));
/// assert_eq!(tier.stretch(u, v), fg.view().stretch(u, v));
/// # Ok::<(), fg_core::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrozenQueryCache {
    capacity: usize,
    stats: CacheStats,
    tick: u64,
    /// The published image snapshot and its epoch. Before the first
    /// [`publish`](Self::publish) the snapshot is empty: every endpoint
    /// is dead and every read answers `None`.
    epoch: Option<u64>,
    image: FrozenCsr,
    /// Image landmark memos for the current epoch, dense live-sized.
    memo: Vec<DenseLandmark>,
    /// Which ghost-space ids were image-live at the last publish, and
    /// how many — the early-termination gate for ghost-miss BFS (see
    /// [`bfs_dense_adj`]).
    ghost_live: Vec<bool>,
    ghost_live_count: u32,
    /// Tick watermarks at the start of the current and previous
    /// published epochs — the ghost landmark age-out gate.
    tick_epoch: u64,
    tick_prev: u64,
    /// Epoch the ghost state is synced to.
    ghost_synced: Option<u64>,
    /// The tier's own copy of the ghost adjacency, indexed by
    /// [`NodeId::index`], rows ascending — equal to the live `G'`
    /// adjacency at `ghost_synced` by construction.
    ghost_adj: GhostAdj,
    /// Persistent ghost landmarks, `nodes_ever`-sized.
    ghost: Vec<DenseLandmark>,
}

impl FrozenQueryCache {
    /// A serving tier holding up to `capacity` landmark vectors per side
    /// (least-recently-used eviction), with nothing published yet.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, for the same reason as
    /// [`QueryCache::new`].
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "FrozenQueryCache capacity must be at least 1: a zero-capacity tier cannot \
             hold any landmark vector (use the uncached QueryOps API instead)"
        );
        FrozenQueryCache {
            capacity,
            stats: CacheStats::default(),
            tick: 0,
            epoch: None,
            image: FrozenCsr::from_graph(&Graph::new()),
            memo: Vec::new(),
            ghost_live: Vec::new(),
            ghost_live_count: 0,
            tick_epoch: 0,
            tick_prev: 0,
            ghost_synced: None,
            ghost_adj: GhostAdj::default(),
            ghost: Vec::new(),
        }
    }

    /// What the tier has done so far. `hits`/`misses`/`evicted` span
    /// both sides; `repaired` counts ghost vectors relaxed in place;
    /// `flushes` counts ghost rebuilds forced by unnoted writes;
    /// `dropped` stays zero (image memos are rebuilt per epoch, never
    /// invalidated; ghost vectors survive everything).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Landmark vectors currently held across both sides.
    pub fn len(&self) -> usize {
        self.memo.len() + self.ghost.len()
    }

    /// Whether the tier holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The epoch reads are currently served at, once one is published.
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// Publishes `view`'s epoch as the tier's serving snapshot: one
    /// `O(live + edges)` image-only CSR copy, and the per-epoch memos
    /// reset. The ghost is *not* re-frozen — that is the point of the
    /// persistent ghost state — but if it is out of step with `view`
    /// (the caller skipped [`note_batch`](Self::note_batch)) it flushes
    /// and rebuilds here, so a published tier is always coherent: both
    /// sides answer at the same epoch.
    pub fn publish(&mut self, view: &(impl GraphView + ?Sized)) {
        self.image = FrozenCsr::from_graph(view.image());
        self.memo.clear();
        self.ghost_live.clear();
        self.ghost_live.resize(view.ghost().nodes_ever(), false);
        self.ghost_live_count = 0;
        for v in view.image().iter() {
            self.ghost_live[v.index()] = true;
            self.ghost_live_count += 1;
        }
        self.epoch = Some(view.epoch());
        // Age out ghost landmarks not consulted for two published
        // epochs: each costs a fold per insert forever but serves
        // nothing once its source leaves the query mix, and a source
        // that returns re-warms with a single dense BFS.
        let stale = self.tick_prev;
        let before = self.ghost.len();
        self.ghost.retain(|e| e.used >= stale);
        self.stats.evicted += (before - self.ghost.len()) as u64;
        self.tick_prev = self.tick_epoch;
        self.tick_epoch = self.tick;
        if self.ghost_synced != self.epoch {
            self.resync_ghost(view);
        }
    }

    /// The slow lane: drop every ghost landmark and rebuild the
    /// adjacency copy from the live ghost graph.
    fn resync_ghost(&mut self, view: &(impl GraphView + ?Sized)) {
        if !self.ghost.is_empty() {
            self.stats.flushes += 1;
        }
        self.ghost.clear();
        self.ghost_adj.rebuild_from(view.ghost());
        self.ghost_synced = Some(view.epoch());
    }

    /// [`QueryCache::note_event`]'s analogue for the persistent ghost
    /// state. `view` is the healer's state *after* the event.
    pub fn note_event(
        &mut self,
        view: &(impl GraphView + ?Sized),
        event: &NetworkEvent,
        outcome: &HealOutcome,
    ) {
        self.note_all(
            view,
            std::slice::from_ref(event),
            std::slice::from_ref(outcome),
        );
    }

    /// Maintains the ghost state across a write batch: the adjacency
    /// copy gains every inserted node's ghost row, and each kept ghost
    /// vector folds the inserts then relaxes back to exactness (same
    /// soundness argument as [`QueryCache::note_batch`]'s ghost side —
    /// `G'` is insert-only, so deletions are no-ops). On an epoch gap
    /// (writes the tier was not told about) the ghost state flushes and
    /// the adjacency rebuilds from `view`.
    pub fn note_batch(
        &mut self,
        view: &(impl GraphView + ?Sized),
        events: &[NetworkEvent],
        report: &BatchReport,
    ) {
        self.note_all(view, events, &report.outcomes);
    }

    fn note_all(
        &mut self,
        view: &(impl GraphView + ?Sized),
        events: &[NetworkEvent],
        outcomes: &[HealOutcome],
    ) {
        let target = view.epoch();
        let consistent = events.len() == outcomes.len()
            && self
                .ghost_synced
                .is_some_and(|e| e + events.len() as u64 == target);
        if !consistent {
            // First sync, skipped events, or mispaired outcomes: rebuild
            // the adjacency from the live ghost and start over.
            self.resync_ghost(view);
            return;
        }
        let ghost = view.ghost();
        let mut inserts: Vec<(NodeId, &[NodeId])> = Vec::new();
        for (event, outcome) in events.iter().zip(outcomes) {
            if let (NetworkEvent::Insert { neighbors }, HealOutcome::Inserted { node, .. }) =
                (event, outcome)
            {
                inserts.push((*node, neighbors));
                let idx = node.index() as u32;
                debug_assert_eq!(self.ghost_adj.node_count(), node.index());
                // The authoritative edge set is the post-batch ghost
                // graph (the engine may filter the event's requested
                // neighbors). Rows stay ascending because appended ids
                // are always the largest yet issued; edges to same-batch
                // later inserts are added when *that* endpoint's row is
                // built, so each edge lands exactly once per row.
                let row: Vec<u32> = ghost
                    .neighbors(*node)
                    .map(|w| w.index() as u32)
                    .filter(|&w| w < idx)
                    .collect();
                for &w in &row {
                    self.ghost_adj.push_edge_end(w, idx);
                }
                self.ghost_adj.push_node(row);
            }
        }
        if !inserts.is_empty() {
            let mut active: Vec<u32> = Vec::new();
            for e in &mut self.ghost {
                active.clear();
                for (node, neighbors) in &inserts {
                    if fold_insert_dense(&mut e.vec, *node, neighbors) {
                        active.push(node.index() as u32);
                    }
                }
                if !active.is_empty() {
                    relax_dense(&self.ghost_adj, &mut e.vec, &active);
                    self.stats.repaired += 1;
                }
            }
            self.ghost_adj.maybe_compact();
        }
        self.ghost_synced = Some(target);
    }

    /// The image memo sourced at `u` or `v`, running the dense bitset
    /// kernel from `u` on a miss. Returns an index into `self.memo` so
    /// callers can keep borrowing `self.image` alongside.
    fn fetch_image(&mut self, u: NodeId, v: NodeId, du: u32) -> usize {
        if let Some(i) = find_dense(&self.memo, u, v) {
            self.stats.hits += 1;
            self.tick += 1;
            self.memo[i].used = self.tick;
            return i;
        }
        self.stats.misses += 1;
        evict_dense(&mut self.memo, self.capacity, &mut self.stats);
        self.tick += 1;
        self.memo.push(DenseLandmark {
            src: u,
            vec: self.image.bfs_dense(du),
            used: self.tick,
        });
        self.memo.len() - 1
    }

    /// The ghost landmark sourced at `u` or `v`, running a flat BFS over
    /// the adjacency copy from `u` on a miss.
    fn fetch_ghost(&mut self, u: NodeId, v: NodeId) -> usize {
        if let Some(i) = find_dense(&self.ghost, u, v) {
            self.stats.hits += 1;
            self.tick += 1;
            self.ghost[i].used = self.tick;
            return i;
        }
        self.stats.misses += 1;
        evict_dense(&mut self.ghost, self.capacity, &mut self.stats);
        self.tick += 1;
        self.ghost.push(DenseLandmark {
            src: u,
            vec: bfs_dense_adj(&self.ghost_adj, &self.ghost_live, self.ghost_live_count, u),
            used: self.tick,
        });
        self.ghost.len() - 1
    }

    /// Exact [`QueryOps::distance`] at the published epoch.
    pub fn distance(&mut self, u: NodeId, v: NodeId) -> Option<u32> {
        let (du, dv) = (self.image.dense(u)?, self.image.dense(v)?);
        let i = self.fetch_image(u, v, du);
        let lm = &self.memo[i];
        let other = if lm.src == u { dv } else { du };
        let d = lm.vec[other as usize];
        (d != FrozenCsr::UNREACHED).then_some(d)
    }

    /// A shortest image path at the published epoch, recovered by
    /// descending the memo's distance gradient through the snapshot's
    /// rows (ascending dense order is ascending [`NodeId`] order, so tie
    /// breaks match the live cache's `find_neighbor` walk from the same
    /// source).
    pub fn path(&mut self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        let (du, dv) = (self.image.dense(u)?, self.image.dense(v)?);
        if u == v {
            return Some(vec![u]);
        }
        let i = self.fetch_image(u, v, du);
        let (src_is_u, far) = if self.memo[i].src == u {
            (true, dv)
        } else {
            (false, du)
        };
        let vec = &self.memo[i].vec;
        let mut hops = vec[far as usize];
        if hops == FrozenCsr::UNREACHED {
            return None;
        }
        let mut down = Vec::with_capacity(hops as usize + 1);
        let mut cur = far;
        down.push(self.image.node(cur));
        while hops > 0 {
            cur = self
                .image
                .dense_row(cur)
                .iter()
                .copied()
                .find(|&w| vec[w as usize] == hops - 1)
                .expect("distance gradients descend to their source");
            down.push(self.image.node(cur));
            hops -= 1;
        }
        if src_is_u {
            down.reverse();
        }
        Some(down)
    }

    /// Exact [`QueryOps::same_component`] at the published epoch.
    pub fn same_component(&mut self, u: NodeId, v: NodeId) -> bool {
        self.distance(u, v).is_some()
    }

    /// Exact [`QueryOps::degree`] at the published epoch.
    pub fn degree(&self, u: NodeId) -> Option<usize> {
        self.image.degree(u)
    }

    /// Exact [`QueryOps::stretch`] at the published epoch — image
    /// distance from the per-epoch memo, `G'` distance from the
    /// persistent ghost landmarks.
    pub fn stretch(&mut self, u: NodeId, v: NodeId) -> Option<f64> {
        let (du, dv) = (self.image.dense(u)?, self.image.dense(v)?);
        let i = self.fetch_image(u, v, du);
        let lm = &self.memo[i];
        let other = if lm.src == u { dv } else { du };
        let d = lm.vec[other as usize];
        let image_d = (d != FrozenCsr::UNREACHED).then_some(d);
        let g = self.fetch_ghost(u, v);
        let lm = &self.ghost[g];
        let gother = if lm.src == u { v } else { u };
        let d = lm.vec[gother.index()];
        let ghost_d = (d != FrozenCsr::UNREACHED).then_some(d);
        stretch_ratio(ghost_d, image_d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ForgivingGraph, SelfHealer};
    use fg_graph::generators;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn stretch_ratio_convention() {
        assert_eq!(stretch_ratio(Some(2), Some(3)), Some(1.5));
        assert_eq!(stretch_ratio(Some(0), Some(0)), Some(0.0));
        assert_eq!(stretch_ratio(Some(4), None), Some(f64::INFINITY));
        assert_eq!(stretch_ratio(None, Some(3)), None);
        assert_eq!(stretch_ratio(None, None), None);
    }

    #[test]
    fn query_ops_answers_match_ground_truth() {
        let mut fg = ForgivingGraph::from_graph(&generators::cycle(10)).unwrap();
        let _ = fg.delete(n(4)).unwrap();
        let view = fg.view();
        // 3 and 5 were cycle-adjacent to the victim; the repair keeps
        // them connected within the stretch bound.
        let d = view.distance(n(3), n(5)).unwrap();
        let path = view.path(n(3), n(5)).unwrap();
        assert_eq!(path.len() as u32, d + 1);
        for pair in path.windows(2) {
            assert!(view.image().has_edge(pair[0], pair[1]));
        }
        assert!(view.same_component(n(3), n(5)));
        // Ghost distance is 2 (through the dead node).
        assert_eq!(view.stretch(n(3), n(5)), Some(f64::from(d) / 2.0));
        assert_eq!(view.distance(n(3), n(4)), None);
        assert_eq!(view.stretch(n(4), n(5)), None);
        assert_eq!(view.degree(n(4)), None);
        assert_eq!(view.neighbors(n(4)), Vec::<NodeId>::new());
        assert!(view.degree(n(3)).unwrap() >= 2);
    }

    #[test]
    fn cache_answers_equal_fresh_answers_under_churn() {
        let mut fg =
            ForgivingGraph::from_graph(&generators::connected_erdos_renyi(24, 0.12, 5)).unwrap();
        let mut cache = QueryCache::new(8);
        let events = [
            NetworkEvent::insert([n(3)]),
            NetworkEvent::delete(n(7)),
            NetworkEvent::insert([n(1), n(2)]),
            NetworkEvent::delete(n(0)),
            NetworkEvent::insert([n(24)]),
        ];
        for event in events {
            let outcome = fg.apply_event(&event).unwrap();
            cache.note_event(&fg.view(), &event, &outcome);
            let view = fg.view();
            for u in 0..view.ghost().nodes_ever() as u32 {
                for v in 0..view.ghost().nodes_ever() as u32 {
                    let (u, v) = (n(u), n(v));
                    assert_eq!(cache.distance(&view, u, v), view.distance(u, v));
                    assert_eq!(cache.stretch(&view, u, v), view.stretch(u, v));
                    let cached = cache.path(&view, u, v);
                    let fresh = view.path(u, v);
                    assert_eq!(cached.is_some(), fresh.is_some());
                    if let (Some(c), Some(f)) = (cached, fresh) {
                        assert_eq!(c.len(), f.len(), "paths must be equally short");
                        assert_eq!(c.first(), Some(&u));
                        assert_eq!(c.last(), Some(&v));
                        for pair in c.windows(2) {
                            assert!(view.image().has_edge(pair[0], pair[1]));
                        }
                    }
                }
            }
        }
        let stats = cache.stats();
        assert!(
            stats.hits > stats.misses,
            "repeat sources must hit: {stats:?}"
        );
    }

    #[test]
    fn inserts_repair_vectors_in_place() {
        let mut fg = ForgivingGraph::from_graph(&generators::path(6)).unwrap();
        let mut cache = QueryCache::new(4);
        assert_eq!(cache.distance(&fg.view(), n(0), n(5)), Some(5));
        assert_eq!(cache.stats().misses, 1);
        // A leaf insert extends the vector...
        let event = NetworkEvent::insert([n(5)]);
        let outcome = fg.apply_event(&event).unwrap();
        cache.note_event(&fg.view(), &event, &outcome);
        assert_eq!(cache.distance(&fg.view(), n(0), n(6)), Some(6));
        // ...and a shortcut insert (node 7 bridging 0 and 5) relaxes
        // every stale distance instead of dropping the vector.
        let event = NetworkEvent::insert([n(0), n(5)]);
        let outcome = fg.apply_event(&event).unwrap();
        cache.note_event(&fg.view(), &event, &outcome);
        assert_eq!(cache.distance(&fg.view(), n(0), n(5)), Some(2));
        assert_eq!(cache.distance(&fg.view(), n(0), n(6)), Some(3));
        assert_eq!(cache.distance(&fg.view(), n(0), n(3)), Some(3));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "no vector was ever recomputed");
        assert!(stats.repaired >= 2);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn merging_inserts_restore_cross_component_distances() {
        // Two disjoint paths; the cached vector learns the far side the
        // moment an insert bridges them.
        let mut g = fg_graph::Graph::with_nodes(6);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(3), n(4)).unwrap();
        g.add_edge(n(4), n(5)).unwrap();
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        let mut cache = QueryCache::new(4);
        assert_eq!(cache.distance(&fg.view(), n(0), n(5)), None);
        let event = NetworkEvent::insert([n(2), n(3)]);
        let outcome = fg.apply_event(&event).unwrap();
        cache.note_event(&fg.view(), &event, &outcome);
        // 0-1-2-6-3-4-5.
        assert_eq!(cache.distance(&fg.view(), n(0), n(5)), Some(6));
        assert_eq!(cache.distance(&fg.view(), n(0), n(6)), Some(3));
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn unnoted_writes_force_a_flush_not_a_stale_answer() {
        let mut fg = ForgivingGraph::from_graph(&generators::cycle(8)).unwrap();
        let mut cache = QueryCache::new(4);
        assert_eq!(cache.distance(&fg.view(), n(0), n(4)), Some(4));
        // Mutate without telling the cache.
        let _ = fg.delete(n(2)).unwrap();
        let fresh = fg.view().distance(n(0), n(4));
        assert_eq!(cache.distance(&fg.view(), n(0), n(4)), fresh);
        assert_eq!(cache.stats().flushes, 1);
    }

    #[test]
    fn capacity_is_enforced_fifo() {
        let fg = ForgivingGraph::from_graph(&generators::cycle(8)).unwrap();
        let mut cache = QueryCache::new(2);
        let view = fg.view();
        for s in 0..4u32 {
            let _ = cache.distance(&view, n(s), n((s + 1) % 8));
        }
        assert!(cache.len() <= 2);
        assert!(cache.stats().evicted >= 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = QueryCache::new(0);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn frozen_tier_zero_capacity_is_rejected() {
        let _ = FrozenQueryCache::new(0);
    }

    #[test]
    fn frozen_tier_answers_equal_fresh_answers_under_churn() {
        let mut fg =
            ForgivingGraph::from_graph(&generators::connected_erdos_renyi(24, 0.12, 5)).unwrap();
        let mut tier = FrozenQueryCache::new(8);
        tier.publish(&fg.view());
        let events = [
            NetworkEvent::insert([n(3)]),
            NetworkEvent::delete(n(7)),
            NetworkEvent::insert([n(1), n(2)]),
            NetworkEvent::delete(n(0)),
            NetworkEvent::insert([n(24)]),
            NetworkEvent::delete(n(3)),
        ];
        for event in events {
            let outcome = fg.apply_event(&event).unwrap();
            tier.note_event(&fg.view(), &event, &outcome);
            tier.publish(&fg.view());
            let view = fg.view();
            assert_eq!(tier.epoch(), Some(view.epoch()));
            for u in 0..view.ghost().nodes_ever() as u32 {
                for v in 0..view.ghost().nodes_ever() as u32 {
                    let (u, v) = (n(u), n(v));
                    assert_eq!(tier.distance(u, v), view.distance(u, v), "({u}, {v})");
                    assert_eq!(tier.stretch(u, v), view.stretch(u, v), "({u}, {v})");
                    assert_eq!(tier.degree(u), view.degree(u), "{u}");
                    let got = tier.path(u, v);
                    let fresh = view.path(u, v);
                    assert_eq!(got.is_some(), fresh.is_some(), "({u}, {v})");
                    if let (Some(g), Some(f)) = (got, fresh) {
                        assert_eq!(g.len(), f.len(), "paths must be equally short");
                        assert_eq!(g.first(), Some(&u));
                        assert_eq!(g.last(), Some(&v));
                        for pair in g.windows(2) {
                            assert!(view.image().has_edge(pair[0], pair[1]));
                        }
                    }
                }
            }
        }
        let stats = tier.stats();
        assert!(stats.hits > 0 && stats.misses > 0, "{stats:?}");
        assert_eq!(stats.dropped, 0, "the frozen tier never drops: {stats:?}");
        assert_eq!(stats.flushes, 0, "every write was noted: {stats:?}");
    }

    #[test]
    fn frozen_tier_relaxes_warm_ghost_vectors_on_bridging_inserts() {
        let mut fg = ForgivingGraph::from_graph(&generators::cycle(24)).unwrap();
        let mut tier = FrozenQueryCache::new(8);
        tier.publish(&fg.view());
        // Warm a ghost landmark at node 0, then bridge two nodes sitting
        // at distances 5 and 9 from it: the fold's bound through the
        // near end (6) undercuts the far end's current 9, so the pruned
        // relaxation must mark the insert active and pull the far side
        // of the cycle in through the new shortcut.
        assert!(tier.stretch(n(0), n(12)).is_some());
        let event = NetworkEvent::insert([n(5), n(15)]);
        let outcome = fg.apply_event(&event).unwrap();
        tier.note_event(&fg.view(), &event, &outcome);
        tier.publish(&fg.view());
        let stats = tier.stats();
        assert!(
            stats.repaired > 0,
            "the warm ghost vector must be relaxed in place: {stats:?}"
        );
        let view = fg.view();
        for v in 0..view.ghost().nodes_ever() as u32 {
            assert_eq!(tier.distance(n(0), n(v)), view.distance(n(0), n(v)), "{v}");
            assert_eq!(tier.stretch(n(0), n(v)), view.stretch(n(0), n(v)), "{v}");
        }
    }

    #[test]
    fn frozen_tier_publish_resyncs_ghost_on_unnoted_writes() {
        let mut fg = ForgivingGraph::from_graph(&generators::cycle(10)).unwrap();
        let mut tier = FrozenQueryCache::new(8);
        tier.publish(&fg.view());
        // Warm a ghost landmark, then advance the writer behind the
        // tier's back.
        assert!(tier.stretch(n(0), n(5)).is_some());
        let _ = fg.insert(&[n(2), n(8)]).unwrap();
        let _ = fg.delete(n(4)).unwrap();
        tier.publish(&fg.view());
        let view = fg.view();
        assert_eq!(tier.stats().flushes, 1, "the stale ghost state flushed");
        for u in 0..view.ghost().nodes_ever() as u32 {
            for v in 0..view.ghost().nodes_ever() as u32 {
                let (u, v) = (n(u), n(v));
                assert_eq!(tier.distance(u, v), view.distance(u, v), "({u}, {v})");
                assert_eq!(tier.stretch(u, v), view.stretch(u, v), "({u}, {v})");
            }
        }
    }

    #[test]
    fn frozen_tier_before_first_publish_answers_nothing() {
        let fg = ForgivingGraph::from_graph(&generators::cycle(6)).unwrap();
        let mut tier = FrozenQueryCache::new(4);
        assert_eq!(tier.epoch(), None);
        assert_eq!(tier.distance(n(0), n(1)), None);
        assert_eq!(tier.degree(n(0)), None);
        assert!(tier.is_empty());
        tier.publish(&fg.view());
        assert_eq!(tier.distance(n(0), n(3)), Some(3));
        assert_eq!(tier.len(), 1);
    }

    #[test]
    fn eviction_accounting_is_exact_at_the_capacity_boundary() {
        // Distinct sources on a cycle, so every query sources a new
        // vector and the store crosses the capacity boundary repeatedly.
        let fg = ForgivingGraph::from_graph(&generators::cycle(12)).unwrap();
        let view = fg.view();
        for capacity in [1usize, 2, 3] {
            let mut cache = QueryCache::new(capacity);
            let sources = 6u32;
            for s in 0..sources {
                let _ = cache.distance(&view, n(s), n((s + 6) % 12));
                assert!(
                    cache.len() <= capacity,
                    "capacity {capacity}: {} vectors after {s}",
                    cache.len()
                );
            }
            let stats = cache.stats();
            assert_eq!(stats.misses, u64::from(sources), "capacity {capacity}");
            // Each overflow evicts exactly one vector (the store holds at
            // most `capacity`, so `len + 1 - capacity` is always 1).
            assert_eq!(
                stats.evicted,
                u64::from(sources) - capacity as u64,
                "capacity {capacity}"
            );
            assert_eq!(cache.len(), capacity);
            // A repeat of the most recent source hits without evicting.
            let evicted_before = stats.evicted;
            let _ = cache.distance(&view, n(sources - 1), n(0));
            assert_eq!(cache.stats().hits, 1);
            assert_eq!(cache.stats().evicted, evicted_before);
        }
    }
}

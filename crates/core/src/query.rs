//! The read-side query API: [`QueryOps`] over any [`GraphView`], and the
//! incrementally invalidated [`QueryCache`] for mixed read/write
//! workloads.
//!
//! The paper frames the Forgiving Graph as a *data structure answering
//! distance queries between repairs* — this module is that API surface.
//! [`QueryOps`] is blanket-implemented for every [`GraphView`], so any
//! view obtained from a [`SelfHealer`](crate::SelfHealer) (engine,
//! distributed protocol, baselines) answers:
//!
//! * [`distance`](QueryOps::distance) / [`path`](QueryOps::path) — exact
//!   shortest hops on the healed image, by the bidirectional BFS kernel
//!   in [`fg_graph::traversal`];
//! * [`neighbors`](QueryOps::neighbors) / [`degree`](QueryOps::degree) /
//!   [`same_component`](QueryOps::same_component) — local and
//!   connectivity reads;
//! * [`stretch`](QueryOps::stretch) — the paper's success metric for one
//!   pair: image distance over distance in the remembered ideal graph
//!   `G'`, via the single shared ratio convention [`stretch_ratio`]
//!   (the same definition `fg_metrics`' aggregate measurements consume).
//!
//! [`QueryCache`] is the serving layer for read-heavy workloads: it
//! memoizes full single-source distance vectors ("landmarks") over both
//! graphs and answers repeated queries in O(1)/O(path) instead of one
//! BFS per query. Crucially it is **incrementally invalidated by the
//! typed reports of the write path** ([`NetworkEvent`] +
//! [`HealOutcome`]) rather than rebuilt per query — see
//! [`QueryCache::note_event`] for the exact soundness rules, and
//! DESIGN.md §10 for the proofs.

use crate::api::{BatchReport, HealOutcome};
use crate::event::NetworkEvent;
use crate::view::GraphView;
use fg_graph::traversal::{self, DistanceVec};
use fg_graph::{Graph, NodeId};
use std::collections::VecDeque;

/// The single stretch-ratio convention, shared by [`QueryOps::stretch`]
/// and `fg_metrics`' aggregate stretch measurements:
///
/// * both distances known → `image / max(1, ghost)`;
/// * connected in `G'` but not in the image → `∞` (a healing failure);
/// * disconnected in `G'` → `None` (legitimately disconnected; the pair
///   is not measured).
pub fn stretch_ratio(ghost: Option<u32>, image: Option<u32>) -> Option<f64> {
    match (ghost, image) {
        (Some(g), Some(i)) => Some(f64::from(i) / f64::from(g.max(1))),
        (Some(_), None) => Some(f64::INFINITY),
        (None, _) => None,
    }
}

/// Read operations over a snapshot view, blanket-implemented for every
/// [`GraphView`].
///
/// All answers are **exact** (never approximations) and refer to the
/// view's epoch. Pairwise operations return `None` when an endpoint is
/// not live in the image.
///
/// # Examples
///
/// ```
/// use fg_core::query::QueryOps;
/// use fg_core::{ForgivingGraph, SelfHealer};
/// use fg_graph::{generators, NodeId};
///
/// let mut fg = ForgivingGraph::from_graph(&generators::cycle(8))?;
/// fg.delete(NodeId::new(3))?;
/// let view = fg.view();
/// let (u, v) = (NodeId::new(2), NodeId::new(4));
/// let d = view.distance(u, v).unwrap();
/// let path = view.path(u, v).unwrap();
/// assert_eq!(path.len() as u32, d + 1);
/// assert!(view.same_component(u, v));
/// // Stretch compares the healed route against ghost distance 2
/// // (through the deleted node) — the repair may even shortcut it.
/// assert_eq!(view.stretch(u, v), Some(f64::from(d) / 2.0));
/// assert_eq!(view.degree(NodeId::new(3)), None); // dead nodes answer None
/// # Ok::<(), fg_core::EngineError>(())
/// ```
pub trait QueryOps: GraphView {
    /// Whether `u` is live in the image at this view's epoch.
    fn alive(&self, u: NodeId) -> bool {
        self.image().contains(u)
    }

    /// `u`'s degree in the healed image; `None` when `u` is not live.
    fn degree(&self, u: NodeId) -> Option<usize> {
        self.alive(u).then(|| self.image().degree(u))
    }

    /// `u`'s image neighbours in increasing id order (empty when dead).
    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        self.image().neighbor_vec(u)
    }

    /// Exact shortest-path hops between `u` and `v` in the healed image
    /// (bidirectional BFS); `None` when either is dead or the pair is
    /// disconnected.
    fn distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        traversal::bidirectional_distance(self.image(), u, v)
    }

    /// A shortest image path from `u` to `v` inclusive of both
    /// endpoints: exactly `distance(u, v) + 1` nodes, consecutive nodes
    /// adjacent.
    fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        traversal::shortest_path(self.image(), u, v)
    }

    /// Whether `u` and `v` are live and mutually reachable in the image.
    fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.distance(u, v).is_some()
    }

    /// The pair's network stretch: image distance over distance in the
    /// remembered ideal graph `G'` (whose paths may pass through deleted
    /// nodes), per [`stretch_ratio`]. `None` when an endpoint is dead or
    /// the pair is disconnected even in `G'`.
    fn stretch(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if !self.alive(u) || !self.alive(v) {
            return None;
        }
        let ghost = traversal::bidirectional_distance(self.ghost(), u, v);
        let image = traversal::bidirectional_distance(self.image(), u, v);
        stretch_ratio(ghost, image)
    }
}

impl<T: GraphView + ?Sized> QueryOps for T {}

/// Counters describing what a [`QueryCache`] did — exposed for bench
/// reports and the differential suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a cached distance vector.
    pub hits: u64,
    /// Queries that had to run a fresh BFS (which then populated the
    /// cache).
    pub misses: u64,
    /// Vectors kept current *in place* across a write batch by the
    /// seeded relaxation (instead of being dropped and recomputed).
    pub repaired: u64,
    /// Vectors dropped by an invalidating write (a deletion whose victim
    /// the vector's source could reach).
    pub dropped: u64,
    /// Vectors evicted by the capacity bound (least-recently-used).
    pub evicted: u64,
    /// Full flushes forced by an epoch mismatch (writes the cache was
    /// not told about).
    pub flushes: u64,
}

/// One cached landmark: a source node, its full distance vector over one
/// graph, and the merge-dirty flag (see [`QueryCache`]'s invalidation
/// rules).
#[derive(Debug, Clone)]
struct Landmark {
    src: NodeId,
    vec: DistanceVec,
    /// Set while an un-relaxed insert may have extended this source's
    /// reachable set beyond what `vec`'s `Some`/`None` pattern shows
    /// (a component merge); cleared by the end-of-batch relaxation.
    merge_dirty: bool,
}

/// One side's landmark store: full single-source distance vectors over
/// one graph. Hits move to the front with an order-preserving shift
/// (O(capacity) pointer moves on a ≤-hundreds-entry store — noise next
/// to the vector lookup), so eviction from the back is
/// least-recently-used.
#[derive(Debug, Clone, Default)]
struct VectorStore {
    entries: Vec<Landmark>,
}

impl VectorStore {
    fn clear(&mut self) {
        self.entries.clear();
    }

    /// Index of the entry sourced at `a` or (failing that) `b`.
    fn find(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let mut fallback = None;
        for (i, e) in self.entries.iter().enumerate() {
            if e.src == a {
                return Some(i);
            }
            if e.src == b {
                fallback = Some(i);
            }
        }
        fallback
    }

    /// The entry for `a` or `b`, computing (and caching) a fresh BFS
    /// from `a` on a miss.
    fn fetch(
        &mut self,
        g: &Graph,
        a: NodeId,
        b: NodeId,
        capacity: usize,
        stats: &mut CacheStats,
    ) -> &Landmark {
        if let Some(i) = self.find(a, b) {
            stats.hits += 1;
            // Move-to-front preserves the recency order of the rest, so
            // the back really is least-recently-used.
            let e = self.entries.remove(i);
            self.entries.insert(0, e);
            return &self.entries[0];
        }
        stats.misses += 1;
        if self.entries.len() >= capacity {
            stats.evicted += (self.entries.len() + 1 - capacity) as u64;
            self.entries.truncate(capacity - 1);
        }
        self.entries.insert(
            0,
            Landmark {
                src: a,
                vec: traversal::bfs_distances(g, a),
                merge_dirty: false,
            },
        );
        &self.entries[0]
    }
}

/// Folds one insertion into a landmark without repairing distances yet:
/// the new node's slot gets its best upper bound through the attachment
/// edges (`min over reachable neighbours + 1`), and the merge-dirty flag
/// is raised when the insert touches both reachable and unreachable
/// neighbours — the one case where the source's reachable set may grow
/// beyond what the un-relaxed vector shows.
fn fold_insert(e: &mut Landmark, node: NodeId, neighbors: &[NodeId]) {
    // Kept vectors always cover exactly the pre-event node set, so the
    // new node's slot is `vec.len()`.
    debug_assert_eq!(e.vec.len(), node.index());
    let mut best: Option<u32> = None;
    let mut unreachable = false;
    for a in neighbors {
        match e.vec.get(a.index()).copied().flatten() {
            Some(d) => best = Some(best.map_or(d + 1, |b: u32| b.min(d + 1))),
            None => unreachable = true,
        }
    }
    if best.is_some() && unreachable {
        e.merge_dirty = true;
    }
    e.vec.push(best);
}

/// Exact post-insert repair of a distance vector: with only node
/// insertions applied since the vector was valid, distances can only
/// shrink, and every shortened (or newly connected) path passes through
/// an inserted node — so a relaxation seeded at the new nodes and run to
/// fixpoint over the *current* graph restores exactness. Nodes are
/// re-queued whenever they improve, so out-of-order improvements (chains
/// of new nodes, component merges) converge to true shortest distances.
fn relax_from_new_nodes(g: &Graph, vec: &mut DistanceVec, seeds: &[NodeId]) {
    let mut queue: VecDeque<NodeId> = seeds
        .iter()
        .copied()
        .filter(|w| vec[w.index()].is_some())
        .collect();
    while let Some(x) = queue.pop_front() {
        let Some(dx) = vec[x.index()] else { continue };
        for y in g.neighbors(x) {
            let cand = dx + 1;
            if vec[y.index()].is_none_or(|old| old > cand) {
                vec[y.index()] = Some(cand);
                queue.push_back(y);
            }
        }
    }
}

/// A landmark/pivot cache over a healer's views: memoized single-source
/// distance vectors for the image and the ghost, answering
/// [`distance`](QueryCache::distance) / [`path`](QueryCache::path) /
/// [`stretch`](QueryCache::stretch) /
/// [`same_component`](QueryCache::same_component) **exactly** — every
/// answer equals the corresponding fresh [`QueryOps`] answer, which the
/// query differential suite asserts along the adversarial traces.
///
/// # Incremental invalidation
///
/// The cache is kept sound by feeding it the write path's own typed
/// outcomes ([`note_event`](QueryCache::note_event) /
/// [`note_batch`](QueryCache::note_batch)) instead of rebuilding per
/// query. Per batch, each kept vector folds the events in order and is
/// then repaired in place; the rules (soundness arguments in DESIGN.md
/// §10):
///
/// * **Insertions never invalidate.** New edges are all incident to the
///   new node, so distances only shrink, and every shortened or newly
///   connected path passes through an inserted node — a relaxation
///   seeded at the batch's new nodes, run to fixpoint against the
///   post-batch graph (`relax_from_new_nodes`), restores exactness.
/// * **Deletion**: a vector is dropped iff its source could reach the
///   victim (or a pending component merge makes reachability uncertain
///   — the merge-dirty flag). Repairs only ever touch the victim's
///   component (every participant is a ghost-neighbour of the victim,
///   kept connected by the healing invariant), so unreachable sources
///   are unaffected.
/// * **Ghost vectors survive everything** (`G'` is insert-only, so only
///   the insert relaxation applies) — which is what makes cached
///   [`stretch`](QueryCache::stretch) cheap under churn.
///
/// If the underlying healer advanced without the cache being told (the
/// view's epoch disagrees with the cache's), every entry is flushed —
/// stale answers are structurally impossible, not just unlikely.
///
/// # Examples
///
/// ```
/// use fg_core::query::{QueryCache, QueryOps};
/// use fg_core::{ForgivingGraph, NetworkEvent, SelfHealer};
/// use fg_graph::{generators, NodeId};
///
/// let mut fg = ForgivingGraph::from_graph(&generators::cycle(16))?;
/// let mut cache = QueryCache::new(32);
/// let (u, v) = (NodeId::new(1), NodeId::new(9));
/// assert_eq!(cache.distance(&fg.view(), u, v), Some(8));
/// assert_eq!(cache.distance(&fg.view(), u, NodeId::new(2)), Some(1));
/// assert_eq!(cache.stats().misses, 1); // one BFS served both queries
///
/// // Writes invalidate incrementally through their typed outcomes.
/// let event = NetworkEvent::delete(NodeId::new(5));
/// let outcome = fg.apply_event(&event)?;
/// cache.note_event(&fg.view(), &event, &outcome);
/// assert_eq!(cache.distance(&fg.view(), u, v), fg.view().distance(u, v));
/// # Ok::<(), fg_core::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QueryCache {
    capacity: usize,
    /// The epoch the cache's entries are valid at, once it has seen a
    /// view.
    synced: Option<u64>,
    image: VectorStore,
    ghost: VectorStore,
    stats: CacheStats,
}

impl QueryCache {
    /// A cache holding up to `capacity` distance vectors per graph side
    /// (least-recently-used eviction).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero. A zero-capacity cache cannot hold
    /// even the vector it just computed, so every lookup would silently
    /// degrade to a full BFS while still reporting cache statistics;
    /// callers that want no caching should use the uncached
    /// [`QueryOps`] API instead of constructing a cache.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "QueryCache capacity must be at least 1: a zero-capacity cache cannot \
             hold any landmark vector (use the uncached QueryOps API instead)"
        );
        QueryCache {
            capacity,
            synced: None,
            image: VectorStore::default(),
            ghost: VectorStore::default(),
            stats: CacheStats::default(),
        }
    }

    /// What the cache has done so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Cached distance vectors currently held, summed across the image
    /// and ghost sides (each side is bounded by the capacity
    /// separately).
    pub fn len(&self) -> usize {
        self.image.entries.len() + self.ghost.entries.len()
    }

    /// Whether the cache holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached vector (stats are kept).
    pub fn flush(&mut self) {
        self.image.clear();
        self.ghost.clear();
        self.synced = None;
    }

    /// Reconciles the cache with `view`'s epoch: on a mismatch (a write
    /// the cache was not told about) everything is flushed, so answers
    /// can never be stale.
    fn sync(&mut self, view: &(impl GraphView + ?Sized)) {
        let epoch = view.epoch();
        if self.synced != Some(epoch) {
            if self.synced.is_some() {
                self.stats.flushes += 1;
            }
            self.image.clear();
            self.ghost.clear();
            self.synced = Some(epoch);
        }
    }

    /// Applies one write's invalidation rules (see the type docs) and
    /// advances the cache's epoch by one. `view` is the healer's state
    /// *after* the event was applied.
    pub fn note_event(
        &mut self,
        view: &(impl GraphView + ?Sized),
        event: &NetworkEvent,
        outcome: &HealOutcome,
    ) {
        self.note_all(
            view,
            std::slice::from_ref(event),
            std::slice::from_ref(outcome),
        );
    }

    /// [`QueryCache::note_event`] over a whole ingestion batch: each
    /// event pairs with its outcome from the batch report, deletions
    /// fold their drop rules in order, and one relaxation pass per kept
    /// vector repairs it against the post-batch `view`.
    pub fn note_batch(
        &mut self,
        view: &(impl GraphView + ?Sized),
        events: &[NetworkEvent],
        report: &BatchReport,
    ) {
        self.note_all(view, events, &report.outcomes);
    }

    fn note_all(
        &mut self,
        view: &(impl GraphView + ?Sized),
        events: &[NetworkEvent],
        outcomes: &[HealOutcome],
    ) {
        let target = view.epoch();
        let consistent = events.len() == outcomes.len()
            && match self.synced {
                None => true,
                Some(e) => e + events.len() as u64 == target,
            };
        if !consistent {
            // The caller skipped events (or paired the wrong outcomes):
            // folding would corrupt the vectors, so flush instead.
            if !self.image.entries.is_empty() || !self.ghost.entries.is_empty() {
                self.stats.flushes += 1;
            }
            self.image.clear();
            self.ghost.clear();
            self.synced = Some(target);
            return;
        }

        // The batch's inserted nodes — the relaxation seeds.
        let seeds: Vec<NodeId> = outcomes.iter().filter_map(HealOutcome::node).collect();

        // Image side: fold inserts (slot extension) and deletions (drop
        // rules) in order, then repair survivors against the new image.
        let stats = &mut self.stats;
        self.image.entries.retain_mut(|e| {
            for (event, outcome) in events.iter().zip(outcomes) {
                match (event, outcome) {
                    (NetworkEvent::Insert { neighbors }, HealOutcome::Inserted { node, .. }) => {
                        fold_insert(e, *node, neighbors);
                    }
                    (NetworkEvent::Delete { node }, HealOutcome::Repaired { .. }) => {
                        if e.merge_dirty || e.vec[node.index()].is_some() {
                            stats.dropped += 1;
                            return false;
                        }
                    }
                    // Mismatched pair: the consistency check above makes
                    // this unreachable, but drop soundly regardless.
                    _ => {
                        stats.dropped += 1;
                        return false;
                    }
                }
            }
            true
        });
        // Ghost side: `G'` is insert-only, so deletions are no-ops and
        // every vector survives.
        for (event, outcome) in events.iter().zip(outcomes) {
            if let (NetworkEvent::Insert { neighbors }, HealOutcome::Inserted { node, .. }) =
                (event, outcome)
            {
                for e in &mut self.ghost.entries {
                    fold_insert(e, *node, neighbors);
                }
            }
        }
        if !seeds.is_empty() {
            for e in &mut self.image.entries {
                relax_from_new_nodes(view.image(), &mut e.vec, &seeds);
                e.merge_dirty = false;
                stats.repaired += 1;
            }
            for e in &mut self.ghost.entries {
                relax_from_new_nodes(view.ghost(), &mut e.vec, &seeds);
                e.merge_dirty = false;
                stats.repaired += 1;
            }
        }
        self.synced = Some(target);
    }

    /// Cached [`QueryOps::distance`]: exact, O(1) after the source (or
    /// target) vector is resident.
    pub fn distance(
        &mut self,
        view: &(impl GraphView + ?Sized),
        u: NodeId,
        v: NodeId,
    ) -> Option<u32> {
        self.sync(view);
        let image = view.image();
        if !image.contains(u) || !image.contains(v) {
            return None;
        }
        Self::lookup(&mut self.image, image, u, v, self.capacity, &mut self.stats)
    }

    /// The one landmark lookup: fetch the vector sourced at `u` or `v`
    /// (computing from `u` on a miss) and read the other endpoint's
    /// distance.
    fn lookup(
        store: &mut VectorStore,
        g: &Graph,
        u: NodeId,
        v: NodeId,
        capacity: usize,
        stats: &mut CacheStats,
    ) -> Option<u32> {
        let lm = store.fetch(g, u, v, capacity, stats);
        let other = if lm.src == u { v } else { u };
        lm.vec[other.index()]
    }

    /// Cached [`QueryOps::path`]: the hop count comes from a cached
    /// vector; the concrete shortest path is recovered by descending the
    /// distance gradient through the image adjacency.
    pub fn path(
        &mut self,
        view: &(impl GraphView + ?Sized),
        u: NodeId,
        v: NodeId,
    ) -> Option<Vec<NodeId>> {
        self.sync(view);
        let image = view.image();
        if !image.contains(u) || !image.contains(v) {
            return None;
        }
        if u == v {
            return Some(vec![u]);
        }
        let lm = self
            .image
            .fetch(image, u, v, self.capacity, &mut self.stats);
        let (source, far) = (lm.src, if lm.src == u { v } else { u });
        let vec = &lm.vec;
        let mut hops = vec[far.index()]?;
        // Walk downhill from `far` to the vector's source: every node at
        // distance d > 0 has a neighbour at distance d - 1.
        let mut down = Vec::with_capacity(hops as usize + 1);
        let mut cur = far;
        down.push(cur);
        while hops > 0 {
            cur = image
                .neighbors(cur)
                .find(|w| vec[w.index()] == Some(hops - 1))
                .expect("distance gradients descend to their source");
            down.push(cur);
            hops -= 1;
        }
        debug_assert_eq!(down.last(), Some(&source));
        if source == u {
            down.reverse();
        }
        Some(down)
    }

    /// Cached [`QueryOps::same_component`].
    pub fn same_component(
        &mut self,
        view: &(impl GraphView + ?Sized),
        u: NodeId,
        v: NodeId,
    ) -> bool {
        self.distance(view, u, v).is_some()
    }

    /// Cached [`QueryOps::stretch`] — image distance from the image-side
    /// store, `G'` distance from the ghost-side store (which deletions
    /// never invalidate).
    pub fn stretch(
        &mut self,
        view: &(impl GraphView + ?Sized),
        u: NodeId,
        v: NodeId,
    ) -> Option<f64> {
        self.sync(view);
        if !view.image().contains(u) || !view.image().contains(v) {
            return None;
        }
        let image_d = Self::lookup(
            &mut self.image,
            view.image(),
            u,
            v,
            self.capacity,
            &mut self.stats,
        );
        let ghost_d = Self::lookup(
            &mut self.ghost,
            view.ghost(),
            u,
            v,
            self.capacity,
            &mut self.stats,
        );
        stretch_ratio(ghost_d, image_d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ForgivingGraph, SelfHealer};
    use fg_graph::generators;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn stretch_ratio_convention() {
        assert_eq!(stretch_ratio(Some(2), Some(3)), Some(1.5));
        assert_eq!(stretch_ratio(Some(0), Some(0)), Some(0.0));
        assert_eq!(stretch_ratio(Some(4), None), Some(f64::INFINITY));
        assert_eq!(stretch_ratio(None, Some(3)), None);
        assert_eq!(stretch_ratio(None, None), None);
    }

    #[test]
    fn query_ops_answers_match_ground_truth() {
        let mut fg = ForgivingGraph::from_graph(&generators::cycle(10)).unwrap();
        let _ = fg.delete(n(4)).unwrap();
        let view = fg.view();
        // 3 and 5 were cycle-adjacent to the victim; the repair keeps
        // them connected within the stretch bound.
        let d = view.distance(n(3), n(5)).unwrap();
        let path = view.path(n(3), n(5)).unwrap();
        assert_eq!(path.len() as u32, d + 1);
        for pair in path.windows(2) {
            assert!(view.image().has_edge(pair[0], pair[1]));
        }
        assert!(view.same_component(n(3), n(5)));
        // Ghost distance is 2 (through the dead node).
        assert_eq!(view.stretch(n(3), n(5)), Some(f64::from(d) / 2.0));
        assert_eq!(view.distance(n(3), n(4)), None);
        assert_eq!(view.stretch(n(4), n(5)), None);
        assert_eq!(view.degree(n(4)), None);
        assert_eq!(view.neighbors(n(4)), Vec::<NodeId>::new());
        assert!(view.degree(n(3)).unwrap() >= 2);
    }

    #[test]
    fn cache_answers_equal_fresh_answers_under_churn() {
        let mut fg =
            ForgivingGraph::from_graph(&generators::connected_erdos_renyi(24, 0.12, 5)).unwrap();
        let mut cache = QueryCache::new(8);
        let events = [
            NetworkEvent::insert([n(3)]),
            NetworkEvent::delete(n(7)),
            NetworkEvent::insert([n(1), n(2)]),
            NetworkEvent::delete(n(0)),
            NetworkEvent::insert([n(24)]),
        ];
        for event in events {
            let outcome = fg.apply_event(&event).unwrap();
            cache.note_event(&fg.view(), &event, &outcome);
            let view = fg.view();
            for u in 0..view.ghost().nodes_ever() as u32 {
                for v in 0..view.ghost().nodes_ever() as u32 {
                    let (u, v) = (n(u), n(v));
                    assert_eq!(cache.distance(&view, u, v), view.distance(u, v));
                    assert_eq!(cache.stretch(&view, u, v), view.stretch(u, v));
                    let cached = cache.path(&view, u, v);
                    let fresh = view.path(u, v);
                    assert_eq!(cached.is_some(), fresh.is_some());
                    if let (Some(c), Some(f)) = (cached, fresh) {
                        assert_eq!(c.len(), f.len(), "paths must be equally short");
                        assert_eq!(c.first(), Some(&u));
                        assert_eq!(c.last(), Some(&v));
                        for pair in c.windows(2) {
                            assert!(view.image().has_edge(pair[0], pair[1]));
                        }
                    }
                }
            }
        }
        let stats = cache.stats();
        assert!(
            stats.hits > stats.misses,
            "repeat sources must hit: {stats:?}"
        );
    }

    #[test]
    fn inserts_repair_vectors_in_place() {
        let mut fg = ForgivingGraph::from_graph(&generators::path(6)).unwrap();
        let mut cache = QueryCache::new(4);
        assert_eq!(cache.distance(&fg.view(), n(0), n(5)), Some(5));
        assert_eq!(cache.stats().misses, 1);
        // A leaf insert extends the vector...
        let event = NetworkEvent::insert([n(5)]);
        let outcome = fg.apply_event(&event).unwrap();
        cache.note_event(&fg.view(), &event, &outcome);
        assert_eq!(cache.distance(&fg.view(), n(0), n(6)), Some(6));
        // ...and a shortcut insert (node 7 bridging 0 and 5) relaxes
        // every stale distance instead of dropping the vector.
        let event = NetworkEvent::insert([n(0), n(5)]);
        let outcome = fg.apply_event(&event).unwrap();
        cache.note_event(&fg.view(), &event, &outcome);
        assert_eq!(cache.distance(&fg.view(), n(0), n(5)), Some(2));
        assert_eq!(cache.distance(&fg.view(), n(0), n(6)), Some(3));
        assert_eq!(cache.distance(&fg.view(), n(0), n(3)), Some(3));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "no vector was ever recomputed");
        assert!(stats.repaired >= 2);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn merging_inserts_restore_cross_component_distances() {
        // Two disjoint paths; the cached vector learns the far side the
        // moment an insert bridges them.
        let mut g = fg_graph::Graph::with_nodes(6);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(3), n(4)).unwrap();
        g.add_edge(n(4), n(5)).unwrap();
        let mut fg = ForgivingGraph::from_graph(&g).unwrap();
        let mut cache = QueryCache::new(4);
        assert_eq!(cache.distance(&fg.view(), n(0), n(5)), None);
        let event = NetworkEvent::insert([n(2), n(3)]);
        let outcome = fg.apply_event(&event).unwrap();
        cache.note_event(&fg.view(), &event, &outcome);
        // 0-1-2-6-3-4-5.
        assert_eq!(cache.distance(&fg.view(), n(0), n(5)), Some(6));
        assert_eq!(cache.distance(&fg.view(), n(0), n(6)), Some(3));
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn unnoted_writes_force_a_flush_not_a_stale_answer() {
        let mut fg = ForgivingGraph::from_graph(&generators::cycle(8)).unwrap();
        let mut cache = QueryCache::new(4);
        assert_eq!(cache.distance(&fg.view(), n(0), n(4)), Some(4));
        // Mutate without telling the cache.
        let _ = fg.delete(n(2)).unwrap();
        let fresh = fg.view().distance(n(0), n(4));
        assert_eq!(cache.distance(&fg.view(), n(0), n(4)), fresh);
        assert_eq!(cache.stats().flushes, 1);
    }

    #[test]
    fn capacity_is_enforced_fifo() {
        let fg = ForgivingGraph::from_graph(&generators::cycle(8)).unwrap();
        let mut cache = QueryCache::new(2);
        let view = fg.view();
        for s in 0..4u32 {
            let _ = cache.distance(&view, n(s), n((s + 1) % 8));
        }
        assert!(cache.len() <= 2);
        assert!(cache.stats().evicted >= 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = QueryCache::new(0);
    }

    #[test]
    fn eviction_accounting_is_exact_at_the_capacity_boundary() {
        // Distinct sources on a cycle, so every query sources a new
        // vector and the store crosses the capacity boundary repeatedly.
        let fg = ForgivingGraph::from_graph(&generators::cycle(12)).unwrap();
        let view = fg.view();
        for capacity in [1usize, 2, 3] {
            let mut cache = QueryCache::new(capacity);
            let sources = 6u32;
            for s in 0..sources {
                let _ = cache.distance(&view, n(s), n((s + 6) % 12));
                assert!(
                    cache.len() <= capacity,
                    "capacity {capacity}: {} vectors after {s}",
                    cache.len()
                );
            }
            let stats = cache.stats();
            assert_eq!(stats.misses, u64::from(sources), "capacity {capacity}");
            // Each overflow evicts exactly one vector (the store holds at
            // most `capacity`, so `len + 1 - capacity` is always 1).
            assert_eq!(
                stats.evicted,
                u64::from(sources) - capacity as u64,
                "capacity {capacity}"
            );
            assert_eq!(cache.len(), capacity);
            // A repeat of the most recent source hits without evicting.
            let evicted_before = stats.evicted;
            let _ = cache.distance(&view, n(sources - 1), n(0));
            assert_eq!(cache.stats().hits, 1);
            assert_eq!(cache.stats().evicted, evicted_before);
        }
    }
}

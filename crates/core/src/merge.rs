//! The repair merge: `BT_v` choreography, Strip, and plan execution
//! (paper Algorithms A.4, A.7–A.9).
//!
//! After a deletion shatters the neighbourhood into fragments, the
//! *anchors* — the surviving virtual nodes that were adjacent to the
//! victim's nodes, plus the fresh leaves of the victim's live neighbours —
//! form the balanced binary tree `BT_v` (heap-shaped over the sorted
//! anchor keys). Bottom-up, every `BT_v` node merges its bucket (its
//! fragment's primary-root forest, held by the fragment's smallest
//! anchor) with its children's merged-and-restripped hafts. The merge
//! blueprint itself is the pure [`crate::plan`] computation, shared with
//! the distributed protocol.

use crate::api::HealerObserver;
use crate::engine::ForgivingGraph;
use crate::plan::{plan_compute_haft, WireTree};
use crate::slot::VKey;

impl ForgivingGraph {
    /// Merges the anchor buckets through the balanced tree `BT_v`;
    /// returns the final reconstruction-tree root (if any tree at all
    /// participated) and the number of bottom-up rounds (`BT_v`'s height).
    pub(crate) fn btv_merge<O: HealerObserver + ?Sized>(
        &mut self,
        buckets: Vec<Vec<WireTree>>,
        obs: &mut O,
    ) -> (Option<VKey>, u32) {
        let count = buckets.len();
        if count == 0 {
            return (None, 0);
        }
        let rounds = usize::BITS - 1 - count.leading_zeros();
        let mut buckets: Vec<Option<Vec<WireTree>>> = buckets.into_iter().map(Some).collect();
        let root = self.btv_node_merge(&mut buckets, 0, obs);
        (root, rounds)
    }

    /// Merges `BT_v` node `i`: its own bucket plus its children's merged
    /// and restripped hafts (Algorithm A.4 / `Haft_Merge`). Empty groups
    /// (all-red fragments) dissolve to `None`.
    fn btv_node_merge<O: HealerObserver + ?Sized>(
        &mut self,
        buckets: &mut Vec<Option<Vec<WireTree>>>,
        i: usize,
        obs: &mut O,
    ) -> Option<VKey> {
        let mut trees = buckets[i].take().expect("each BT_v node merges once");
        for child in [2 * i + 1, 2 * i + 2] {
            if child < buckets.len() {
                if let Some(sub) = self.btv_node_merge(buckets, child, obs) {
                    trees.extend(self.strip_root(sub, obs));
                }
            }
        }
        if trees.is_empty() {
            return None;
        }
        Some(self.compute_haft(trees, obs))
    }

    /// Strip (§4.1.1): frees the spine connectors of the haft rooted at
    /// `root` and returns its complete trees, ready to merge again.
    pub(crate) fn strip_root<O: HealerObserver + ?Sized>(
        &mut self,
        root: VKey,
        obs: &mut O,
    ) -> Vec<WireTree> {
        // Walk the right spine collecting parts, then free the spine
        // *before* computing representatives: an emitted tree's free leaf
        // may be exactly the one a spine connector was occupying.
        let mut spine = Vec::new();
        let mut parts = Vec::new();
        let mut cur = root;
        loop {
            if self.forest.node(cur).is_complete() {
                parts.push(cur);
                break;
            }
            let node = self.forest.node(cur);
            let (left, right) = (
                node.left.expect("spine nodes are internal"),
                node.right.expect("spine nodes are internal"),
            );
            self.detach_edge(cur, left, obs);
            self.detach_edge(cur, right, obs);
            spine.push(cur);
            parts.push(left);
            cur = right;
        }
        for key in spine {
            debug_assert!(key.is_helper(), "spine connectors are helpers");
            self.forest.remove_isolated(key);
            self.stats.helpers_freed += 1;
        }
        parts
            .into_iter()
            .map(|root| self.describe_tree(root))
            .collect()
    }

    /// Builds the wire description of a complete tree rooted at `root`.
    pub(crate) fn describe_tree(&mut self, root: VKey) -> WireTree {
        let (rep, cached) = self.forest.free_leaf_of(root);
        if !cached {
            self.stats.rep_fallbacks += 1;
        }
        WireTree {
            root,
            size: self.forest.node(root).leaves,
            height: self.forest.node(root).height,
            rep,
            rep_parent: self.forest.node(rep.real()).parent,
        }
    }

    /// Executes `ComputeHaft` over a non-empty forest: plans with the
    /// shared pure planner, then applies every join to the forest and the
    /// image. Returns the new root.
    pub(crate) fn compute_haft<O: HealerObserver + ?Sized>(
        &mut self,
        trees: Vec<WireTree>,
        obs: &mut O,
    ) -> VKey {
        let plan = plan_compute_haft(trees, self.policy);
        for step in &plan.joins {
            let key = self
                .forest
                .create_helper(step.slot, step.left, step.right, step.rep);
            self.image.inc(step.slot.owner, step.left.owner());
            self.image.inc(step.slot.owner, step.right.owner());
            self.stats.helpers_created += 1;
            self.stats.edges_added += 2;
            obs.on_repair_edge(step.slot.owner, step.left.owner(), true);
            obs.on_repair_edge(step.slot.owner, step.right.owner(), true);
            debug_assert_eq!(key, step.slot.helper());
        }
        plan.output.root
    }
}
